//! Quickstart: simulate AlexNet on the bit-parallel baseline (DPNN) and on
//! Loom, using the paper's published precision profiles, and print the
//! speedup and energy-efficiency summary.
//!
//! Run with: `cargo run --release -p loom-core --example quickstart`

use loom_core::experiment::{evaluate_network, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_sim::engine::AcceleratorKind;
use loom_core::loom_sim::LoomVariant;
use loom_core::report::{fmt_ratio, TextTable};

fn main() {
    let network = zoo::alexnet();
    println!("Network: {network}");

    let eval = evaluate_network(&network, &ExperimentSettings::default());
    println!(
        "DPNN baseline: {} cycles per frame ({} conv, {} fully-connected)\n",
        eval.dpnn.total_cycles(),
        eval.dpnn.conv_cycles(),
        eval.dpnn.fc_cycles()
    );

    let mut table = TextTable::new(vec![
        "Accelerator",
        "Conv speedup",
        "FC speedup",
        "All speedup",
        "All efficiency",
    ]);
    for kind in [
        AcceleratorKind::Stripes,
        AcceleratorKind::DStripes,
        AcceleratorKind::Loom(LoomVariant::Lm1b),
        AcceleratorKind::Loom(LoomVariant::Lm2b),
        AcceleratorKind::Loom(LoomVariant::Lm4b),
    ] {
        let r = eval.result_for(kind).expect("all accelerators evaluated");
        table.row(vec![
            kind.to_string(),
            fmt_ratio(r.conv_speedup),
            fmt_ratio(r.fc_speedup),
            fmt_ratio(r.all_speedup),
            fmt_ratio(r.all_efficiency),
        ]);
    }
    println!("{}", table.render());
    println!("(Compare with Table 2 / Figure 4 of the paper; see EXPERIMENTS.md.)");
}
