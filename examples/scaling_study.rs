//! Figure-5-style scaling study: how Loom's advantage over an
//! equally-provisioned bit-parallel engine changes with the accelerator size,
//! and where Dynamic Stripes catches up.
//!
//! Run with: `cargo run --release -p loom-core --example scaling_study`

use loom_core::scaling::{figure5, weight_memory_bytes};

fn main() {
    let fig = figure5();
    println!("{}", fig.render());
    println!("Observations:");
    let first = &fig.points[0];
    let last = fig.points.last().expect("sweep is non-empty");
    println!(
        "- Loom-1b outperforms DPNN at every design point ({:.2}x at {} MACs/cycle down to {:.2}x at {}).",
        first.loom_all, first.config, last.loom_all, last.config
    );
    println!(
        "- The relative advantage over Dynamic Stripes shrinks from {:.2}x to {:.2}x as under-utilisation grows.",
        first.loom_conv / first.dstripes_conv,
        last.loom_conv / last.dstripes_conv
    );
    println!(
        "- Weight memory provisioning grows from {} KB to {} KB across the sweep.",
        weight_memory_bytes(first.config) / 1024,
        weight_memory_bytes(last.config) / 1024
    );
}
