//! The Section 2 worked example, cycle by cycle: a 2×2 grid of two-lane
//! bit-serial subunits processing a fully-connected layer with 2-bit weights
//! and activations — two activations, four filters, five cycles.
//!
//! Since PR 3 the `Sip` holds its weight registers as a packed plane word, so
//! every `cycle()` below is internally one `AND` + `count_ones()` — the same
//! kernel the fast functional engine uses. The coda at the end replays the
//! example through `BitplaneBlock`/`packed_inner_product` directly to show the
//! two views are the same computation.
//!
//! Run with: `cargo run --release -p loom-core --example paper_walkthrough`

use loom_core::loom_model::fixed::{bit_of, Precision};
use loom_core::loom_sim::loom::{packed_inner_product, BitplaneBlock, Sip};

fn main() {
    // Two 2-bit input activations and four filters of two 2-bit weights each
    // (unsigned, as in the figure).
    let activations = [2i32, 3]; // a0, a1
    let filters = [[1i32, 2], [3, 1], [2, 2], [1, 3]]; // w^0, w^1, w^2, w^3
    println!("Activations: a0={} a1={}", activations[0], activations[1]);
    for (k, f) in filters.iter().enumerate() {
        println!("Filter {k}: w{k}0={} w{k}1={}", f[0], f[1]);
    }
    println!();

    // One subunit per (column, row): column 0 handles filters 0-1, column 1
    // handles filters 2-3, exactly as Figure 1 draws it.
    let mut sips: Vec<Sip> = (0..4).map(|_| Sip::new(2)).collect();
    let act_bits = |bit: u8| -> Vec<u8> { activations.iter().map(|&a| bit_of(a, bit)).collect() };
    let w_bits =
        |k: usize, bit: u8| -> Vec<u8> { filters[k].iter().map(|&w| bit_of(w, bit)).collect() };

    // Cycle 1: left column loads the LSBs of filters 0 and 1 and multiplies by
    // the LSBs of a0 and a1.
    println!("Cycle 1: left column loads LSB of filters 0/1, multiplies by LSB of a0/a1");
    sips[0].load_weight_bits(&w_bits(0, 0));
    sips[1].load_weight_bits(&w_bits(1, 0));
    sips[0].cycle(&act_bits(0), 0, false);
    sips[1].cycle(&act_bits(0), 0, false);

    // Cycle 2: left column multiplies the same weight bits by the MSBs of the
    // activations; right column loads the LSBs of filters 2/3 and multiplies by
    // the activation LSBs.
    println!("Cycle 2: left column x MSB of activations; right column loads LSB of filters 2/3");
    sips[0].cycle(&act_bits(1), 1, false);
    sips[1].cycle(&act_bits(1), 1, false);
    sips[0].commit_weight_bit(0, false);
    sips[1].commit_weight_bit(0, false);
    sips[2].load_weight_bits(&w_bits(2, 0));
    sips[3].load_weight_bits(&w_bits(3, 0));
    sips[2].cycle(&act_bits(0), 0, false);
    sips[3].cycle(&act_bits(0), 0, false);

    // Cycle 3: left column loads the weight MSBs; right column reuses its
    // weights against the activation MSBs.
    println!("Cycle 3: left column loads MSB of filters 0/1; right column x MSB of activations");
    sips[0].load_weight_bits(&w_bits(0, 1));
    sips[1].load_weight_bits(&w_bits(1, 1));
    sips[0].cycle(&act_bits(0), 0, false);
    sips[1].cycle(&act_bits(0), 0, false);
    sips[2].cycle(&act_bits(1), 1, false);
    sips[3].cycle(&act_bits(1), 1, false);
    sips[2].commit_weight_bit(0, false);
    sips[3].commit_weight_bit(0, false);

    // Cycle 4: left column finishes o0/o1; right column loads the weight MSBs.
    println!("Cycle 4: left column finishes o0/o1; right column loads MSB of filters 2/3");
    sips[0].cycle(&act_bits(1), 1, false);
    sips[1].cycle(&act_bits(1), 1, false);
    sips[0].commit_weight_bit(1, false);
    sips[1].commit_weight_bit(1, false);
    sips[2].load_weight_bits(&w_bits(2, 1));
    sips[3].load_weight_bits(&w_bits(3, 1));
    sips[2].cycle(&act_bits(0), 0, false);
    sips[3].cycle(&act_bits(0), 0, false);

    // Cycle 5: right column finishes o2/o3.
    println!("Cycle 5: right column finishes o2/o3\n");
    sips[2].cycle(&act_bits(1), 1, false);
    sips[3].cycle(&act_bits(1), 1, false);
    sips[2].commit_weight_bit(1, false);
    sips[3].commit_weight_bit(1, false);

    for (k, sip) in sips.iter().enumerate() {
        let expected: i64 = filters[k]
            .iter()
            .zip(activations.iter())
            .map(|(&w, &a)| i64::from(w) * i64::from(a))
            .sum();
        println!("o{k} = {} (expected {expected})", sip.output());
        assert_eq!(sip.output(), expected, "bit-serial result must match");
    }
    println!("\n5 cycles for 32 1-bit products — matching Section 2 of the paper.");

    // The packed view of the very same computation: transpose each operand
    // pair into bit planes once, then every (weight-bit, activation-bit) step
    // is one AND + popcount word operation.
    println!("\nPacked view: one AND + popcount per (weight bit, activation bit) plane pair");
    let p2 = Precision::new(2).unwrap();
    let a_block = BitplaneBlock::pack(&activations);
    println!(
        "activation planes: bit0={:02b} bit1={:02b} (lanes a0,a1)",
        a_block.plane(0),
        a_block.plane(1)
    );
    for (k, (f, sip)) in filters.iter().zip(sips.iter()).enumerate() {
        let w_block = BitplaneBlock::pack(f);
        let o = packed_inner_product(&w_block, &a_block, p2, p2, false, false);
        assert_eq!(o, sip.output(), "packed result must match the cycle replay");
        println!(
            "o{k} = {o} from weight planes bit0={:02b} bit1={:02b}",
            w_block.plane(0),
            w_block.plane(1)
        );
    }
}
