//! Precision exploration on a custom network: derive per-layer precisions with
//! the profiler (the Judd et al. method with an output-fidelity proxy), then
//! see how much speedup each profile buys on Loom — the accuracy vs
//! performance/energy trade-off of §4.3.
//!
//! Run with: `cargo run --release -p loom-core --example precision_explorer`

use loom_core::loom_model::inference::NetworkParams;
use loom_core::loom_model::layer::{ConvSpec, FcSpec, PoolSpec};
use loom_core::loom_model::network::NetworkBuilder;
use loom_core::loom_model::synthetic::{synthetic_activations, ValueDistribution};
use loom_core::loom_model::tensor::{Shape3, Tensor3};
use loom_core::loom_model::Precision;
use loom_core::loom_precision::profiler::{profile_network, ProfilerConfig};
use loom_core::loom_precision::trace::{GroupPrecisionSource, LayerPrecisionSpec};
use loom_core::loom_sim::engine::{AcceleratorKind, PrecisionAssignment, Simulator};
use loom_core::loom_sim::LoomVariant;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small edge-vision network (the kind of embedded workload Loom
    // targets). Filter counts are sized for the 128-row Loom grid: the
    // paper's headline configuration assumes layers with at least 128 filters.
    let net = NetworkBuilder::new("edge-vision")
        .conv("conv1", ConvSpec::simple(3, 32, 32, 128, 3))
        .max_pool("pool1", PoolSpec::new(128, 30, 30, 2, 2))
        .conv("conv2", ConvSpec::simple(128, 15, 15, 128, 3))
        .max_pool("pool2", PoolSpec::new(128, 13, 13, 2, 2))
        .conv("conv3", ConvSpec::simple(128, 6, 6, 256, 3))
        .fully_connected("fc1", FcSpec::new(256 * 4 * 4, 10))
        .build()
        .expect("network is valid");
    let params = NetworkParams::synthetic(&net, &[Precision::new(9).unwrap()], 3);
    let mut rng = StdRng::seed_from_u64(17);
    let inputs: Vec<Tensor3> = (0..2)
        .map(|_| {
            Tensor3::from_vec(
                Shape3::new(3, 32, 32),
                synthetic_activations(
                    &mut rng,
                    3 * 32 * 32,
                    Precision::new(8).unwrap(),
                    ValueDistribution::activations(),
                ),
            )
            .expect("shape matches")
        })
        .collect();

    let sim = Simulator::baseline_128();
    let dpnn = sim.simulate(
        AcceleratorKind::Dpnn,
        &net,
        &PrecisionAssignment::full_precision(&net),
    );
    println!(
        "{net}\nDPNN baseline: {} cycles/frame\n",
        dpnn.total_cycles()
    );

    for (label, config) in [
        ("no accuracy loss (100%)", ProfilerConfig::lossless()),
        ("1% relative loss (99%)", ProfilerConfig::relaxed()),
    ] {
        let derived = profile_network(&net, &params, &inputs, config);
        let acts: Vec<String> = derived
            .activation_precisions
            .iter()
            .map(|p| p.bits().to_string())
            .collect();
        let specs: Vec<LayerPrecisionSpec> = derived
            .activation_precisions
            .iter()
            .map(|&a| LayerPrecisionSpec {
                activation: a,
                weight: derived.weight_precision,
                dynamic_activation: GroupPrecisionSource::Scaled { fraction: 0.8 },
                group_weight: GroupPrecisionSource::Nominal,
            })
            .collect();
        let assignment = PrecisionAssignment::new(specs);
        let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        println!(
            "{label}: activations {} bits, weights {} bits -> Loom-1b speedup {:.2}x (fidelity {:.4})",
            acts.join("-"),
            derived.weight_precision.bits(),
            lm.speedup_vs(&dpnn),
            derived.combined_fidelity
        );
    }
}
