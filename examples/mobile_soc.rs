//! The bandwidth-constrained mobile SoC scenario from the paper's
//! introduction: a single LPDDR4-4267 channel, a modest on-chip activation
//! memory, and a network that must hit a real-time frame rate. Shows how
//! Loom's packed storage cuts off-chip traffic and turns memory-bound layers
//! back into compute-bound ones.
//!
//! Run with: `cargo run --release -p loom-core --example mobile_soc`

use loom_core::experiment::{build_assignment, ExperimentSettings};
use loom_core::loom_mem::hierarchy::{MemoryConfig, MemorySystem};
use loom_core::loom_mem::traffic::StoragePrecision;
use loom_core::loom_model::zoo;
use loom_core::loom_sim::engine::{AcceleratorKind, Simulator};
use loom_core::loom_sim::LoomVariant;
use loom_core::report::TextTable;

fn main() {
    let network = zoo::vgg_m();
    let settings = ExperimentSettings::default();
    let assignment = build_assignment(&network, &settings);
    let sim = Simulator::baseline_128();

    let dpnn_mem = MemorySystem::with_lpddr4(MemoryConfig::dpnn_default());
    let loom_mem = MemorySystem::with_lpddr4(MemoryConfig::loom_default());

    let mut table = TextTable::new(vec![
        "Design",
        "Compute cycles",
        "Off-chip MB/frame",
        "Frame cycles",
        "fps",
    ]);
    for (kind, system) in [
        (AcceleratorKind::Dpnn, &dpnn_mem),
        (AcceleratorKind::Loom(LoomVariant::Lm1b), &loom_mem),
    ] {
        let run = sim.simulate(kind, &network, &assignment);
        let mut offchip_bits = 0u64;
        let mut frame_cycles = 0u64;
        for (layer_sim, layer) in run.layers.iter().zip(network.layers().iter()) {
            let usage = system.evaluate_layer(
                &layer.kind,
                StoragePrecision {
                    activation: layer_sim.storage.activation,
                    weight: layer_sim.storage.weight,
                },
            );
            offchip_bits += usage.offchip_bits;
            frame_cycles += layer_sim.cycles.max(usage.offchip_cycles);
        }
        table.row(vec![
            kind.to_string(),
            run.total_cycles().to_string(),
            format!("{:.1}", offchip_bits as f64 / 8.0 / 1e6),
            frame_cycles.to_string(),
            format!("{:.0}", 1e9 / frame_cycles as f64),
        ]);
    }
    println!(
        "Mobile SoC scenario: {} on a single LPDDR4-4267 channel\n",
        network.name()
    );
    println!("{}", table.render());
    println!("Loom both finishes the compute sooner and moves fewer bits per frame,");
    println!("which is exactly the combination the paper argues embedded SoCs need.");
}
