//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal harness exposing the subset of the Criterion API the `loom-bench`
//! benches use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass, then timed batches
//! until ~200 ms have elapsed, reporting the mean wall-clock time per
//! iteration — with none of Criterion's statistics, plots, or CLI. When run
//! under `cargo test` (Cargo passes `--test` to bench targets) each benchmark
//! executes a single iteration as a smoke test. Swap the workspace `criterion`
//! entry back to a crates.io version for real measurements.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark in measurement mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Entry point handed to benchmark functions; collects per-benchmark timings.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    /// Builds a harness. Measurement mode requires the `--bench` flag that
    /// `cargo bench` passes to `harness = false` targets; any other invocation
    /// (`cargo test --benches`, running the binary directly, or an explicit
    /// `--test`) runs each routine once as a smoke test.
    fn default() -> Self {
        let mut args = std::env::args();
        let measure = args.any(|a| a == "--bench") && !std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode: !measure,
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            mean: None,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A set of related benchmarks reported under a common name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group, parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            mean: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Finishes the group. (The real Criterion emits summary statistics here;
    /// this stand-in reports per-benchmark, so there is nothing left to do.)
    pub fn finish(self) {}
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    test_mode: bool,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine` and records the mean per-iteration
    /// wall-clock time. In test mode runs the routine exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up and batch-size calibration: grow the batch until one batch
        // takes at least ~1 ms, so Instant overhead stays negligible.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measurement: timed batches until the budget is spent.
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        while total < MEASURE_BUDGET {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean = Some(total / iters.max(1) as u32);
    }
}

fn report(name: &str, b: &Bencher) {
    match b.mean {
        Some(mean) => println!("bench: {name:<50} {:>12.1} ns/iter", mean.as_nanos() as f64),
        None if b.test_mode => println!("bench: {name:<50} ok (test mode)"),
        None => println!("bench: {name:<50} (no iter() call)"),
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u32;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| seen = x));
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
    }
}
