//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors a minimal, dependency-free implementation of exactly the
//! `rand` API surface the Loom reproduction uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64, so `seed_from_u64` gives reproducible streams.
//! * [`SeedableRng::seed_from_u64`] — the only constructor the repo uses.
//! * [`RngExt::random`] — uniform `f64` in `[0, 1)`, `bool`, and the integer
//!   primitives.
//! * [`RngExt::random_range`] — uniform sampling from `a..b` / `a..=b` integer
//!   ranges.
//!
//! The generator is *not* the same algorithm as the real `StdRng` (ChaCha12),
//! so seeded value streams differ from upstream `rand`; everything in this
//! repository that consumes randomness asserts statistical or structural
//! properties rather than exact streams, which this implementation satisfies.
//! Swap the workspace `rand` entry back to a crates.io version to use the real
//! thing.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. All higher-level sampling is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits (upper half of
    /// [`next_u64`](Self::next_u64), whose high bits are the strongest).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`RngExt::random`].
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use a high bit: low bits of some xorshift-family generators are
        // weaker, and this costs nothing.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((uniform_below(rng, span as u64) as $u) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full type range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((uniform_below(rng, span as u64) as $u) as $t)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The unit draw is in [0, 1), but narrowing to f32 or the
                // final multiply-add can round up to exactly `end`; redraw in
                // that (astronomically rare) case to keep the bound exclusive.
                loop {
                    let unit = f64::random(rng) as $t;
                    let v = self.start + unit * (self.end - self.start);
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Uniform integer in `[0, span)` by widening multiplication (Lemire's
/// nearly-divisionless method without the rejection step; the bias is at most
/// `span / 2^64`, far below anything observable here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Convenience sampling methods, implemented for every [`RngCore`].
///
/// This mirrors the post-0.9 `rand` extension-trait API (`random`,
/// `random_range`) that the repository's sources import.
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256++).
    ///
    /// Unlike upstream `rand`'s ChaCha12-based `StdRng` this is not
    /// cryptographically secure, but it is fast, passes BigCrush, and —
    /// the only property this repository relies on — produces an identical
    /// stream for an identical `seed_from_u64` seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation, so that low-entropy seeds (0, 1, 2, …) still
            // yield well-mixed initial states.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn random_range_inclusive_hits_bounds_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = rng.random_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn random_range_exclusive_never_hits_end() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v = rng.random_range(0u32..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bool_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(10);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4500..=5500).contains(&trues), "{trues} trues");
    }

    #[test]
    fn i64_inclusive_large_span() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(0i64..=(1i64 << 40));
            assert!((0..=(1i64 << 40)).contains(&v));
        }
    }
}
