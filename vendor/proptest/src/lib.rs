//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal property-testing harness exposing the subset of the proptest API
//! this repository uses: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), integer-range and [`any`] strategies,
//! [`prop::collection::vec`], and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros.
//!
//! Unlike the real proptest there is **no shrinking** and no persistent
//! failure file: each test runs a fixed number of deterministic cases (the
//! per-case RNG is seeded from the case index), and a failing case panics
//! with its case number so it can be reproduced by rerunning the test.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use rand::rngs::StdRng;
use rand::{Random, RngCore, SampleRange, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Builds a config that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property-test assertion (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

/// Generates values of a given type; implemented by ranges, [`any`], and the
/// combinators in [`prop`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

impl<T: Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        SampleRange::sample(self.clone(), rng)
    }
}

impl<T: Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        SampleRange::sample(self.clone(), rng)
    }
}

/// Strategy producing uniformly distributed values of the whole type; built by
/// [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns a strategy sampling the full range of `T` uniformly.
pub fn any<T: Random>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Random> Strategy for Any<T> {
    type Value = T;

    fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::random(rng)
    }
}

pub mod prop {
    //! Strategy combinators, namespaced as in the real proptest.

    pub mod collection {
        //! Strategies for collections.

        use crate::Strategy;
        use rand::{RngCore, SampleRange};
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a random length
        /// drawn from a range; built by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            length: Range<usize>,
        }

        /// Returns a strategy producing `Vec`s whose length is drawn from
        /// `length` and whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, length: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, length }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample_value<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                let len = SampleRange::sample(self.length.clone(), rng);
                (0..len).map(|_| self.element.sample_value(rng)).collect()
            }
        }
    }
}

/// Drives the cases of one property; used by the [`proptest!`] expansion.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner for `config`.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// Deterministic per-case RNG: depends only on the case index, so a
    /// failure report's case number fully reproduces the inputs.
    pub fn rng_for_case(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(
            0x5052_4F50_5445_5354 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Declares property tests. Mirrors the real proptest macro for the forms this
/// repository uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn property(x in 0u8..=16, seed in any::<u64>()) {
///         prop_assert!(x <= 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; expands each property function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::TestRunner::new($cfg);
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::Strategy::sample_value(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}: {}\n  inputs: {}",
                        stringify!($name),
                        case,
                        e.message(),
                        format!(concat!($(stringify!($arg), " = {:?}  ",)+), $(&$arg),+),
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with its inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the current case
/// (with both values reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed:\n  left: {left:?}\n right: {right:?}",
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body, failing the current case
/// (with both values reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both sides are {left:?}",
            )));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
///
/// The real proptest rejects the case and draws a replacement; this stand-in
/// simply ends the case successfully, which preserves soundness (no false
/// failures) at the cost of running slightly fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! One-stop imports, as in the real proptest.

    pub use crate::prop;
    pub use crate::{any, Any, ProptestConfig, Strategy, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u8..=16, y in 3usize..10, seed in any::<u64>()) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!((3..10).contains(&y));
            // Touch `seed` so the strategy is exercised.
            prop_assert!(seed == seed);
        }

        #[test]
        fn vectors_respect_length_and_element_ranges(v in prop::collection::vec(-5i32..=5, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| (-5..=5).contains(&x)));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let runner = TestRunner::new(ProptestConfig::with_cases(4));
        let a: u64 = any::<u64>().sample_value(&mut runner.rng_for_case(2));
        let b: u64 = any::<u64>().sample_value(&mut runner.rng_for_case(2));
        assert_eq!(a, b);
    }

    #[test]
    fn prop_assert_failure_is_reported() {
        fn failing() -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        }
        let err = failing().unwrap_err();
        assert!(err.message().contains("prop_assert_eq failed"));
    }
}
