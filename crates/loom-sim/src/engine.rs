//! The unified simulation front end: one entry point that runs any evaluated
//! accelerator over any network given a per-layer precision assignment.
//!
//! The engine itself contains no per-datapath logic: every datapath is an
//! implementation of [`crate::accelerator::Accelerator`], and the
//! [`Simulator`] dispatches through a [`Registry`] keyed by
//! [`AcceleratorKind`] (which stays the compact, serializable key the tables,
//! CSV export and energy model use).

use crate::accelerator::{Accelerator, Registry};
use crate::config::{EquivalentConfig, LoomVariant};
use crate::counts::NetworkSim;
use loom_model::network::Network;
use loom_precision::trace::{GroupPrecisionSource, LayerPrecisionSpec};
use std::fmt;

/// The accelerators the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceleratorKind {
    /// The bit-parallel DaDianNao-style baseline.
    Dpnn,
    /// Stripes: bit-serial activations with static per-layer precisions,
    /// convolutional layers only.
    Stripes,
    /// Dynamic Stripes: Stripes plus runtime per-group activation precisions.
    DStripes,
    /// Loom with the given bits-per-cycle variant.
    Loom(LoomVariant),
}

impl AcceleratorKind {
    /// All accelerators in the order Figure 4 plots them.
    pub fn all() -> Vec<AcceleratorKind> {
        vec![
            AcceleratorKind::Dpnn,
            AcceleratorKind::Stripes,
            AcceleratorKind::DStripes,
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            AcceleratorKind::Loom(LoomVariant::Lm2b),
            AcceleratorKind::Loom(LoomVariant::Lm4b),
        ]
    }
}

impl fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorKind::Dpnn => write!(f, "DPNN"),
            AcceleratorKind::Stripes => write!(f, "Stripes"),
            AcceleratorKind::DStripes => write!(f, "DStripes"),
            AcceleratorKind::Loom(v) => write!(f, "{v}"),
        }
    }
}

/// A per-network precision assignment: one [`LayerPrecisionSpec`] per *compute*
/// layer, in network order. Non-compute layers (pooling) need no entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionAssignment {
    specs: Vec<LayerPrecisionSpec>,
}

impl PrecisionAssignment {
    /// Creates an assignment from explicit per-compute-layer specs.
    pub fn new(specs: Vec<LayerPrecisionSpec>) -> Self {
        PrecisionAssignment { specs }
    }

    /// An assignment where every layer runs at the full 16 bits.
    pub fn full_precision(network: &Network) -> Self {
        PrecisionAssignment {
            specs: network
                .compute_layers()
                .map(|_| LayerPrecisionSpec::full_precision())
                .collect(),
        }
    }

    /// The spec for compute layer `index`, falling back to full precision.
    ///
    /// Returns a borrow — this is on the per-layer hot path of every sweep,
    /// and the spec holds per-group `Vec`s that must not be cloned per call.
    pub fn for_layer(&self, index: usize) -> &LayerPrecisionSpec {
        self.specs
            .get(index)
            .unwrap_or_else(|| LayerPrecisionSpec::full_precision_static())
    }

    /// Number of per-layer specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the assignment holds no specs.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The cycle-level simulator for one design point: a [`Registry`] of
/// accelerators plus the shared configuration.
#[derive(Debug)]
pub struct Simulator {
    config: EquivalentConfig,
    registry: Registry,
}

impl Simulator {
    /// Creates a simulator at the given equivalent compute bandwidth with the
    /// six built-in accelerators registered.
    pub fn new(config: EquivalentConfig) -> Self {
        Simulator {
            config,
            registry: Registry::with_defaults(config),
        }
    }

    /// Creates a simulator around a custom registry (e.g. with an
    /// experimental backend swapped in behind an existing kind).
    pub fn with_registry(registry: Registry) -> Self {
        Simulator {
            config: registry.config(),
            registry,
        }
    }

    /// The paper's headline 128 MAC-equivalent configuration.
    pub fn baseline_128() -> Self {
        Simulator::new(EquivalentConfig::BASELINE_128)
    }

    /// The design point this simulator models.
    pub fn config(&self) -> EquivalentConfig {
        self.config
    }

    /// The accelerator registry this simulator dispatches through.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry, for registering custom backends.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// The registered accelerator for `kind`.
    ///
    /// # Panics
    ///
    /// Panics if no accelerator is registered for `kind`.
    pub fn accelerator(&self, kind: AcceleratorKind) -> &dyn Accelerator {
        self.registry
            .get(kind)
            .unwrap_or_else(|| panic!("no accelerator registered for {kind}"))
    }

    /// Simulates `network` on `kind` under `assignment` and returns the
    /// per-layer cycle and traffic breakdown.
    pub fn simulate(
        &self,
        kind: AcceleratorKind,
        network: &Network,
        assignment: &PrecisionAssignment,
    ) -> NetworkSim {
        self.accelerator(kind).simulate_network(network, assignment)
    }
}

/// Builds the precision assignment the paper's headline experiments use for
/// `network`: per-layer profile precisions plus a `Scaled` dynamic activation
/// source with the given fraction, and optionally per-group effective weight
/// precisions (`group_weight_bits`, one entry per *conv* layer as in Table 3).
pub fn assignment_from_profile(
    network: &Network,
    profile: &loom_precision::NetworkProfile,
    dynamic_fraction: Option<f64>,
    group_weight_bits: Option<(&[f64], &[f64])>,
) -> PrecisionAssignment {
    let mut specs = Vec::new();
    let mut conv_idx = 0usize;
    let mut fc_idx = 0usize;
    for layer in network.compute_layers() {
        let spec = if layer.kind.is_conv() {
            let activation = profile.conv_activation(conv_idx);
            let weight = profile.conv_weight;
            let dynamic_activation = match dynamic_fraction {
                Some(fraction) => GroupPrecisionSource::Scaled { fraction },
                None => GroupPrecisionSource::Nominal,
            };
            let group_weight = match group_weight_bits {
                Some((conv_bits, _)) => conv_bits
                    .get(conv_idx)
                    .map(|&b| GroupPrecisionSource::AverageBits(b))
                    .unwrap_or(GroupPrecisionSource::Nominal),
                None => GroupPrecisionSource::Nominal,
            };
            conv_idx += 1;
            LayerPrecisionSpec {
                activation,
                weight,
                dynamic_activation,
                group_weight,
            }
        } else {
            let weight = profile.fc_weight(fc_idx);
            let group_weight = match group_weight_bits {
                Some((_, fc_bits)) => fc_bits
                    .get(fc_idx)
                    .map(|&b| GroupPrecisionSource::AverageBits(b))
                    .unwrap_or(GroupPrecisionSource::Nominal),
                None => GroupPrecisionSource::Nominal,
            };
            fc_idx += 1;
            LayerPrecisionSpec {
                activation: profile.fc_activation(),
                weight,
                dynamic_activation: GroupPrecisionSource::Nominal,
                group_weight,
            }
        };
        specs.push(spec);
    }
    PrecisionAssignment::new(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::zoo;
    use loom_precision::table1;
    use loom_precision::AccuracyTarget;

    fn alexnet_assignment(dynamic: Option<f64>) -> (loom_model::Network, PrecisionAssignment) {
        let net = zoo::alexnet();
        let profile = table1::profile("AlexNet", AccuracyTarget::Lossless).unwrap();
        let assignment = assignment_from_profile(&net, &profile, dynamic, None);
        (net, assignment)
    }

    #[test]
    fn dpnn_cycles_are_independent_of_precisions() {
        let (net, assignment) = alexnet_assignment(Some(0.8));
        let sim = Simulator::baseline_128();
        let with_profile = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let full = sim.simulate(
            AcceleratorKind::Dpnn,
            &net,
            &PrecisionAssignment::full_precision(&net),
        );
        assert_eq!(with_profile.total_cycles(), full.total_cycles());
    }

    #[test]
    fn alexnet_static_loom_speedups_match_ideal_formulas() {
        // With the static 100% profile (no dynamic detection), the MAC-weighted
        // ideal predicts ~3.4x for CVLs and ~1.66x for FCLs (see DESIGN.md);
        // the simulated tiling should land close to that.
        let (net, assignment) = alexnet_assignment(None);
        let sim = Simulator::baseline_128();
        let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        let conv = lm.conv_speedup_vs(&dpnn);
        let fc = lm.fc_speedup_vs(&dpnn);
        assert!((3.0..=3.8).contains(&conv), "conv speedup {conv}");
        assert!((1.5..=1.8).contains(&fc), "fc speedup {fc}");
    }

    #[test]
    fn dynamic_detection_only_helps_loom_convolutions() {
        let (net, static_assignment) = alexnet_assignment(None);
        let (_, dynamic_assignment) = alexnet_assignment(Some(0.8));
        let sim = Simulator::baseline_128();
        let lm_static = sim.simulate(
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            &net,
            &static_assignment,
        );
        let lm_dynamic = sim.simulate(
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            &net,
            &dynamic_assignment,
        );
        assert!(lm_dynamic.conv_cycles() < lm_static.conv_cycles());
        assert_eq!(lm_dynamic.fc_cycles(), lm_static.fc_cycles());
    }

    #[test]
    fn stripes_beats_dpnn_but_loses_to_loom_on_convs() {
        let (net, assignment) = alexnet_assignment(Some(0.8));
        let sim = Simulator::baseline_128();
        let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let stripes = sim.simulate(AcceleratorKind::Stripes, &net, &assignment);
        let dstripes = sim.simulate(AcceleratorKind::DStripes, &net, &assignment);
        let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        let s = stripes.conv_speedup_vs(&dpnn);
        let ds = dstripes.conv_speedup_vs(&dpnn);
        let l = lm.conv_speedup_vs(&dpnn);
        assert!(s > 1.5, "Stripes {s}");
        assert!(ds > s, "DStripes {ds} vs Stripes {s}");
        assert!(l > ds, "Loom {l} vs DStripes {ds}");
        // Stripes gains nothing on FCLs.
        assert_eq!(stripes.fc_cycles(), dpnn.fc_cycles());
    }

    #[test]
    fn loom_storage_is_packed_and_moves_fewer_bits() {
        let (net, assignment) = alexnet_assignment(Some(0.8));
        let sim = Simulator::baseline_128();
        let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
        let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
        assert!(lm.total_traffic().total_bits() < dpnn.total_traffic().total_bits());
    }

    #[test]
    fn accelerator_display_names() {
        assert_eq!(AcceleratorKind::Dpnn.to_string(), "DPNN");
        assert_eq!(
            AcceleratorKind::Loom(LoomVariant::Lm2b).to_string(),
            "Loom 2-bit"
        );
        assert_eq!(AcceleratorKind::all().len(), 6);
    }

    #[test]
    fn assignment_accessors() {
        let (net, assignment) = alexnet_assignment(None);
        assert_eq!(assignment.len(), net.compute_layers().count());
        assert!(!assignment.is_empty());
        // Out-of-range layers fall back to full precision, without cloning.
        assert_eq!(assignment.for_layer(999).activation.bits(), 16);
        let a = assignment.for_layer(999) as *const LayerPrecisionSpec;
        let b = assignment.for_layer(999) as *const LayerPrecisionSpec;
        assert_eq!(a, b, "fallback spec is a shared static, not a fresh clone");
    }

    #[test]
    fn simulator_exposes_its_registry() {
        let sim = Simulator::baseline_128();
        assert_eq!(sim.registry().len(), 6);
        assert_eq!(sim.accelerator(AcceleratorKind::Dpnn).name(), "DPNN");
        let mut custom = Simulator::with_registry(crate::accelerator::Registry::with_defaults(
            EquivalentConfig::BASELINE_128,
        ));
        custom.registry_mut().register(crate::accelerator::build(
            AcceleratorKind::Dpnn,
            EquivalentConfig::BASELINE_128,
        ));
        assert_eq!(custom.registry().len(), 6);
        assert_eq!(custom.config(), EquivalentConfig::BASELINE_128);
    }
}
