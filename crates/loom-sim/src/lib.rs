//! # loom-sim
//!
//! Cycle-level simulators for the Loom accelerator reproduction:
//!
//! * [`config`] — design points (equivalent peak compute bandwidth) and the
//!   DPNN / Loom geometries derived from them.
//! * [`dpnn`] — the bit-parallel DaDianNao-style baseline (§3.1).
//! * [`stripes`] — the Stripes and Dynamic-Stripes comparators.
//! * [`loom`] — the Loom engine: the bit-exact SIP functional model, a
//!   functional layer engine validated against the golden model, and the
//!   analytic convolutional / fully-connected schedules with dynamic
//!   activation precisions, per-group weight precisions, SIP cascading and
//!   the LM1b/LM2b/LM4b variants.
//! * [`datapath`] — functional (value-computing) images of every comparator
//!   datapath: bit-parallel DPNN, activation-serial Stripes, detecting
//!   DStripes, and the Loom engine behind one [`datapath::FunctionalDatapath`]
//!   seam, so any registered accelerator can run whole networks bit-exact
//!   against the golden model.
//! * [`accelerator`] — the [`accelerator::Accelerator`] trait every datapath
//!   implements, plus the [`accelerator::Registry`] the engine dispatches
//!   through (add a backend by implementing the trait and registering it;
//!   overriding `functional_datapath` buys conformance coverage for free).
//! * [`engine`] — the unified [`engine::Simulator`] front end.
//! * [`counts`] — per-layer / per-network cycle and traffic records.
//! * [`pool`] — the persistent work-stealing worker pool every parallel path
//!   (layer fan-out, batched inference, sweeps) shares, with cost-model task
//!   granularity chosen per layer by [`loom::cost`](crate::loom).
//!
//! # Example
//!
//! ```
//! use loom_sim::engine::{AcceleratorKind, PrecisionAssignment, Simulator, assignment_from_profile};
//! use loom_sim::config::LoomVariant;
//! use loom_precision::{table1, AccuracyTarget};
//! use loom_model::zoo;
//!
//! let net = zoo::alexnet();
//! let profile = table1::profile("AlexNet", AccuracyTarget::Lossless).unwrap();
//! let assignment = assignment_from_profile(&net, &profile, None, None);
//! let sim = Simulator::baseline_128();
//! let dpnn = sim.simulate(AcceleratorKind::Dpnn, &net, &assignment);
//! let lm = sim.simulate(AcceleratorKind::Loom(LoomVariant::Lm1b), &net, &assignment);
//! assert!(lm.speedup_vs(&dpnn) > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accelerator;
pub mod config;
pub mod counts;
pub mod datapath;
pub mod dpnn;
pub mod engine;
pub mod loom;
pub mod pool;
pub mod stripes;
pub mod validate;

pub use accelerator::{Accelerator, GeometrySummary, LayerContext, Registry};
pub use config::{EquivalentConfig, LoomVariant};
pub use counts::{LayerClass, LayerSim, NetworkSim};
pub use engine::{AcceleratorKind, PrecisionAssignment, Simulator};
