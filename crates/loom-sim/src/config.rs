//! Accelerator configurations and geometries.
//!
//! Every design point is characterised by its *equivalent peak compute
//! bandwidth*: the number of 16b×16b multiply-accumulate operations per cycle
//! an equally-provisioned bit-parallel engine would perform (the x-axis of
//! Figure 5; the headline configuration is 128). From that single number the
//! geometries of the baseline and of Loom follow:
//!
//! * **DPNN** — `N = 16` activation lanes broadcast to `k = macs/16` inner
//!   product units (16 lanes × 8 filters for the "128" configuration).
//! * **Loom** — `macs` filter rows × `16/b` window columns of SIPs, each SIP
//!   multiplying 16 one-bit activations by 16 one-bit weights per cycle, where
//!   `b` is the number of activation bits processed per cycle (1, 2 or 4 for
//!   the LM1b/LM2b/LM4b variants).

use std::fmt;

/// The number of activation bits Loom processes per cycle: the LM1b, LM2b and
/// LM4b variants of §3.2 ("Tuning the Performance, Area and Energy Trade-off").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoomVariant {
    /// One activation bit per cycle: best performance, largest area.
    Lm1b,
    /// Two activation bits per cycle: 8 SIP columns.
    Lm2b,
    /// Four activation bits per cycle: 4 SIP columns, best energy efficiency.
    Lm4b,
}

impl LoomVariant {
    /// Activation bits processed per cycle.
    pub fn bits_per_cycle(self) -> u8 {
        match self {
            LoomVariant::Lm1b => 1,
            LoomVariant::Lm2b => 2,
            LoomVariant::Lm4b => 4,
        }
    }

    /// All variants, in the order the paper's tables list them.
    pub fn all() -> [LoomVariant; 3] {
        [LoomVariant::Lm1b, LoomVariant::Lm2b, LoomVariant::Lm4b]
    }
}

impl fmt::Display for LoomVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoomVariant::Lm1b => write!(f, "Loom 1-bit"),
            LoomVariant::Lm2b => write!(f, "Loom 2-bit"),
            LoomVariant::Lm4b => write!(f, "Loom 4-bit"),
        }
    }
}

/// Error for invalid configuration parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    detail: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.detail)
    }
}

impl std::error::Error for ConfigError {}

/// A design point: equivalent peak compute bandwidth in 16b×16b MACs/cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EquivalentConfig {
    macs_per_cycle: usize,
}

impl EquivalentConfig {
    /// The paper's headline configuration: 128 MAC-equivalents per cycle.
    pub const BASELINE_128: EquivalentConfig = EquivalentConfig {
        macs_per_cycle: 128,
    };

    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error unless `macs_per_cycle` is a multiple of 16 and at
    /// least 16 (DPNN needs whole 16-lane inner-product units).
    pub fn new(macs_per_cycle: usize) -> Result<Self, ConfigError> {
        if macs_per_cycle < 16 || macs_per_cycle % 16 != 0 {
            return Err(ConfigError {
                detail: format!(
                    "equivalent MACs/cycle must be a positive multiple of 16, got {macs_per_cycle}"
                ),
            });
        }
        Ok(EquivalentConfig { macs_per_cycle })
    }

    /// The design points of the Figure 5 scaling study.
    pub fn scaling_sweep() -> Vec<EquivalentConfig> {
        [32, 64, 128, 256, 512]
            .into_iter()
            .map(|m| EquivalentConfig::new(m).expect("sweep points are valid"))
            .collect()
    }

    /// Equivalent MACs per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.macs_per_cycle
    }

    /// The DPNN geometry at this design point.
    pub fn dpnn(&self) -> DpnnGeometry {
        DpnnGeometry {
            lanes: 16,
            filters: self.macs_per_cycle / 16,
        }
    }

    /// The Loom geometry at this design point for a given variant.
    pub fn loom(&self, variant: LoomVariant) -> LoomGeometry {
        LoomGeometry {
            filter_rows: self.macs_per_cycle,
            window_columns: 16 / variant.bits_per_cycle() as usize,
            sip_lanes: 16,
            act_bits_per_cycle: variant.bits_per_cycle(),
        }
    }
}

impl fmt::Display for EquivalentConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.macs_per_cycle)
    }
}

/// Geometry of the bit-parallel baseline tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DpnnGeometry {
    /// Activation lanes broadcast to every inner-product unit (N).
    pub lanes: usize,
    /// Inner-product units, one filter each (k).
    pub filters: usize,
}

impl DpnnGeometry {
    /// Peak MACs per cycle.
    pub fn macs_per_cycle(&self) -> usize {
        self.lanes * self.filters
    }
}

/// Geometry of the Loom SIP grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoomGeometry {
    /// SIP rows; each row processes one filter (CVLs) or one output group
    /// (FCLs) and shares a 16-bit weight bus.
    pub filter_rows: usize,
    /// SIP columns; each column processes one window (CVLs) or one slice of
    /// outputs (FCLs) and shares a 16-bit activation bus.
    pub window_columns: usize,
    /// One-bit multiplications per SIP per cycle (weight registers per SIP).
    pub sip_lanes: usize,
    /// Activation bits processed per cycle (1, 2 or 4).
    pub act_bits_per_cycle: u8,
}

impl LoomGeometry {
    /// Total number of SIPs in the grid.
    pub fn total_sips(&self) -> usize {
        self.filter_rows * self.window_columns
    }

    /// Peak 1-bit products per cycle.
    pub fn bit_products_per_cycle(&self) -> usize {
        self.total_sips() * self.sip_lanes * self.act_bits_per_cycle as usize
    }

    /// Output activations processed concurrently in fully-connected mode (one
    /// per SIP).
    pub fn concurrent_fc_outputs(&self) -> usize {
        self.total_sips()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_config_matches_paper_geometry() {
        let cfg = EquivalentConfig::BASELINE_128;
        let dpnn = cfg.dpnn();
        assert_eq!(dpnn.lanes, 16);
        assert_eq!(dpnn.filters, 8);
        assert_eq!(dpnn.macs_per_cycle(), 128);
        let lm = cfg.loom(LoomVariant::Lm1b);
        assert_eq!(lm.filter_rows, 128);
        assert_eq!(lm.window_columns, 16);
        assert_eq!(lm.total_sips(), 2048);
        // 2048 SIPs × 16 lanes = 32768 1b products/cycle = 128 MACs × 256 bits
        // over 256 cycles: compute bandwidth matches DPNN (§3.2).
        assert_eq!(lm.bit_products_per_cycle(), 128 * 256);
    }

    #[test]
    fn variants_shrink_the_column_count() {
        let cfg = EquivalentConfig::BASELINE_128;
        assert_eq!(cfg.loom(LoomVariant::Lm2b).window_columns, 8);
        assert_eq!(cfg.loom(LoomVariant::Lm4b).window_columns, 4);
        // Peak bit bandwidth is identical across variants.
        for v in LoomVariant::all() {
            assert_eq!(cfg.loom(v).bit_products_per_cycle(), 128 * 256, "{v}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(EquivalentConfig::new(0).is_err());
        assert!(EquivalentConfig::new(8).is_err());
        assert!(EquivalentConfig::new(100).is_err());
        assert!(EquivalentConfig::new(512).is_ok());
    }

    #[test]
    fn scaling_sweep_matches_figure5_x_axis() {
        let sweep: Vec<usize> = EquivalentConfig::scaling_sweep()
            .iter()
            .map(|c| c.macs_per_cycle())
            .collect();
        assert_eq!(sweep, vec![32, 64, 128, 256, 512]);
    }

    #[test]
    fn variant_display_and_bits() {
        assert_eq!(LoomVariant::Lm1b.bits_per_cycle(), 1);
        assert_eq!(LoomVariant::Lm4b.to_string(), "Loom 4-bit");
        assert_eq!(LoomVariant::all().len(), 3);
    }
}
