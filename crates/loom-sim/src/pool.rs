//! The persistent work-stealing worker pool every parallel path in the
//! workspace shares.
//!
//! The previous substrate (`loom::parallel`) spawned scoped threads per layer
//! and parked results in per-job `Mutex<Option<R>>` slots; at thousands of
//! layer dispatches per network that pays thread spawn/join, allocator and
//! lock traffic on every layer. This module replaces it with:
//!
//! * **Persistent workers** — spawned once (lazily, growing up to the largest
//!   thread budget ever requested) and parked on a condvar between batches.
//!   The submitting thread always participates as worker 0, so a
//!   budget of 1 never touches another thread and the serial path is the
//!   parallel path.
//! * **Chase-Lev-style deques** — each participant owns a deque prefilled
//!   with its contiguous share of job indices; it pops from the bottom
//!   (ascending, cache-friendly) while idle participants steal from the top.
//!   The deques are fixed-capacity (every index is known up front), which
//!   removes the growth path of the full Chase-Lev algorithm; the pop/steal
//!   protocol is the classic one on `AtomicIsize` top/bottom with a `SeqCst`
//!   fence.
//! * **Write-once result slots** — results land in `UnsafeCell<Option>`
//!   slots indexed by job, with a single atomic countdown publishing
//!   completion. No per-job mutex, and a panicked batch drops the results
//!   its surviving jobs produced instead of leaking them.
//! * **Persistent scratch arenas** — every worker (and the caller thread)
//!   owns a `TypeId`-keyed scratch store. [`ordered_map_with`]'s `init` runs
//!   at most once per worker per state type *for the life of the worker*, so
//!   the pack arenas of the wide datapath survive across layers and batches
//!   instead of being rebuilt per call. The inline (1-thread) path uses the
//!   same store through a thread-local, so its `init` semantics are identical
//!   to the pooled path — pinned by a test below.
//!
//! **Determinism:** results are keyed by job index and merged in job order;
//! scratch state never influences a job's result (jobs must be pure functions
//! of their index); which worker runs which job is the only thing scheduling
//! changes. Every caller's outputs are therefore bit-identical at any thread
//! count, which the proptest suite in `tests/pool_invariance.rs` pins with
//! skewed task costs that force stealing.

use std::any::{Any, TypeId};
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Per-worker scratch storage, keyed by state type. One entry per
/// [`ordered_map_with`] state type, created on first use and kept for the
/// life of the worker — the arena path that lets pack buffers survive across
/// layers.
#[derive(Default)]
pub struct ScratchStore {
    entries: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ScratchStore {
    /// The worker's state of type `S`, created by `init` on first use.
    fn get_or_insert<S: Send + 'static>(&mut self, init: impl FnOnce() -> S) -> &mut S {
        self.entries
            .entry(TypeId::of::<S>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<S>()
            .expect("scratch entry keyed by its own TypeId")
    }
}

thread_local! {
    /// The submitting thread's scratch store: used by the inline path and by
    /// the caller's stint as worker 0, so both paths share one set of arenas
    /// with identical `init` semantics.
    static CALLER_SCRATCH: RefCell<ScratchStore> = RefCell::new(ScratchStore::default());
}

/// Runs `f` with the calling thread's persistent scratch store. The store is
/// moved out for the duration (and restored after) so a nested pool dispatch
/// on the same thread sees an independent store instead of a borrow panic.
/// The restore lives in a drop guard so it survives `f` unwinding — an
/// inline-path job panic (which nothing catches) must not cost the caller its
/// arenas, keeping inline panic behavior consistent with the pooled path.
fn with_caller_scratch<T>(f: impl FnOnce(&mut ScratchStore) -> T) -> T {
    struct Restore(Option<ScratchStore>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(store) = self.0.take() {
                CALLER_SCRATCH.with(|cell| cell.replace(store));
            }
        }
    }
    let mut guard = Restore(Some(CALLER_SCRATCH.with(|cell| cell.take())));
    f(guard.0.as_mut().expect("store held until drop"))
}

/// A fixed-capacity work-stealing deque of job indices. The buffer is filled
/// before the owning batch is published and never written again, so only
/// `top`/`bottom` need atomicity; the pop/steal protocol is Chase-Lev's.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    /// Job indices, owner end last: the owner pops ascending job order from
    /// the back while thieves steal descending from the front.
    buf: Vec<usize>,
}

impl Deque {
    fn prefilled(jobs: std::ops::Range<usize>) -> Self {
        Deque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(jobs.len() as isize),
            buf: jobs.rev().collect(),
        }
    }

    /// Owner-only: take a job from the bottom.
    fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let job = self.buf[b as usize];
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                return won.then_some(job);
            }
            Some(job)
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: take a job from the top. Returns `None` only when the deque
    /// was observed empty (CAS races retry internally).
    fn steal(&self) -> Option<usize> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let job = self.buf[t as usize];
            if self
                .top
                .compare_exchange_weak(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return Some(job);
            }
        }
    }
}

/// The type-erased job body: `(job index, worker scratch)`.
type Task<'a> = dyn Fn(usize, &mut ScratchStore) + Sync + 'a;

/// One submitted batch of jobs. Lives in an `Arc` shared by the submitter and
/// every participating worker; the job closure itself is a raw pointer into
/// the submitter's stack frame, valid because the submitter blocks until
/// `remaining` hits zero and a job is only executed before its decrement.
struct Batch {
    /// Borrowed job closure. SAFETY: dereferenced only while the job it runs
    /// has not yet been counted into `remaining`'s countdown, which the
    /// submitter waits out before returning.
    task: *const Task<'static>,
    /// One deque per participant slot (slot 0 is the submitter).
    deques: Vec<Deque>,
    /// Jobs not yet finished; the submitter returns when this hits zero.
    remaining: AtomicUsize,
    /// Helper slots handed out. Helpers beyond `deques.len() - 1` bounce.
    joiners: AtomicUsize,
    /// First panic payload raised by a job, re-raised on the submitter.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: `task` is only dereferenced under the liveness protocol documented
// on the field; everything else is Sync by construction.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims a helper slot, or `None` when the batch already has its full
    /// complement of participants.
    fn claim_helper_slot(&self) -> Option<usize> {
        let slot = self.joiners.fetch_add(1, Ordering::AcqRel) + 1;
        (slot < self.deques.len()).then_some(slot)
    }

    /// Runs jobs as participant `slot` until every deque is (observed) empty:
    /// drain the own deque bottom-up, then steal from the others.
    fn participate(&self, slot: usize, scratch: &mut ScratchStore) {
        let own = &self.deques[slot];
        loop {
            while let Some(job) = own.pop() {
                self.execute(job, scratch);
            }
            let n = self.deques.len();
            let mut stole = false;
            for k in 1..n {
                if let Some(job) = self.deques[(slot + k) % n].steal() {
                    self.execute(job, scratch);
                    stole = true;
                    break;
                }
            }
            if !stole {
                // Every deque observed empty; in-flight jobs belong to other
                // participants and are covered by `remaining`.
                return;
            }
        }
    }

    fn execute(&self, job: usize, scratch: &mut ScratchStore) {
        // SAFETY: this job has not yet decremented `remaining`, so the
        // submitter is still blocked in `run_erased` and the closure (and
        // everything it borrows) is alive.
        let task = unsafe { &*self.task };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(job, scratch))) {
            let mut first = self.panic.lock().expect("panic slot poisoned");
            first.get_or_insert(payload);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.done.lock().expect("done flag poisoned") = true;
            self.done_cv.notify_all();
        }
    }
}

/// Pool state guarded by one mutex: the open batches and how many persistent
/// helpers exist.
struct PoolState {
    /// Bumped on every submission so parked workers know to rescan.
    epoch: u64,
    /// Batches with unfinished work. Usually one; concurrent submitters (e.g.
    /// parallel test threads) simply coexist, each draining its own batch.
    open: Vec<Arc<Batch>>,
    /// Persistent helper threads spawned so far.
    helpers: usize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

/// The persistent work-stealing pool. One process-wide instance serves every
/// caller (see [`ordered_map`] / [`ordered_map_with`]); helper threads are
/// spawned lazily up to the largest budget ever requested and parked between
/// batches.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// An empty pool; helpers are spawned on demand by the first parallel
    /// submission.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    epoch: 0,
                    open: Vec::new(),
                    helpers: 0,
                }),
                work_cv: Condvar::new(),
            }),
        }
    }

    /// The process-wide shared pool.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(WorkerPool::new)
    }

    /// As [`ordered_map_with`], on this pool.
    pub fn ordered_map_with<S, R, I, F>(&self, threads: usize, jobs: usize, init: I, f: F) -> Vec<R>
    where
        S: Send + 'static,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
    {
        if threads <= 1 || jobs <= 1 {
            // Inline path: same thread-persistent scratch store as a pooled
            // worker, so `init` runs at most once per state type here too.
            return with_caller_scratch(|scratch| {
                (0..jobs)
                    .map(|i| f(scratch.get_or_insert(&init), i))
                    .collect()
            });
        }

        // `Option` rather than `MaybeUninit`: when a job panics, `run_erased`
        // re-raises only after every job has finished, so unwinding drops
        // this vector — and with it every already-written result — instead
        // of leaking them.
        let slots: Vec<UnsafeCell<Option<R>>> = (0..jobs).map(|_| UnsafeCell::new(None)).collect();
        struct Slots<'a, R>(&'a [UnsafeCell<Option<R>>]);
        // SAFETY: each slot is written by exactly one job (jobs are handed
        // out uniquely by the deques) and only read after all jobs finish.
        unsafe impl<R: Send> Sync for Slots<'_, R> {}
        impl<R> Slots<'_, R> {
            fn write(&self, job: usize, value: R) {
                // SAFETY: unique writer for this job index; see the impl above.
                unsafe { *self.0[job].get() = Some(value) };
            }
        }
        let slot_ref = Slots(&slots);

        let body = |job: usize, scratch: &mut ScratchStore| {
            let state = scratch.get_or_insert(&init);
            slot_ref.write(job, f(state, job));
        };
        self.run_erased(threads, jobs, &body);

        // All jobs completed without panic: every slot is populated.
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every job writes its slot"))
            .collect()
    }

    /// Submits `jobs` indices to `threads` participants (the caller plus
    /// helpers), blocks until all complete, and re-raises the first job
    /// panic. `threads >= 2` and `jobs >= 2` (the callers handle inline).
    fn run_erased(&self, threads: usize, jobs: usize, task: &Task<'_>) {
        let participants = threads.min(jobs);
        let deques = (0..participants)
            .map(|p| Deque::prefilled(jobs * p / participants..jobs * (p + 1) / participants))
            .collect();
        let batch = Arc::new(Batch {
            // SAFETY: lifetime-erased borrow; see the field's invariant.
            task: unsafe {
                std::mem::transmute::<&Task<'_>, &'static Task<'static>>(task)
                    as *const Task<'static>
            },
            deques,
            remaining: AtomicUsize::new(jobs),
            joiners: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.epoch += 1;
            state.open.push(batch.clone());
            let want = participants - 1;
            while state.helpers < want {
                let id = state.helpers;
                let shared = self.shared.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("loom-pool-{id}"))
                    .spawn(move || helper_loop(shared))
                    .is_ok();
                if !spawned {
                    // Thread exhaustion: the caller still completes the batch
                    // alone; just stop growing.
                    break;
                }
                state.helpers += 1;
            }
            self.shared.work_cv.notify_all();
        }

        // Participate as worker 0, then wait out any in-flight steals.
        with_caller_scratch(|scratch| batch.participate(0, scratch));
        {
            let mut done = batch.done.lock().expect("done flag poisoned");
            while !*done {
                done = batch.done_cv.wait(done).expect("done flag poisoned");
            }
        }

        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.open.retain(|open| !Arc::ptr_eq(open, &batch));
        }

        let payload = batch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// A persistent helper: park on the condvar, join whatever open batches have
/// a free participant slot, repeat.
fn helper_loop(shared: Arc<PoolShared>) {
    let mut scratch = ScratchStore::default();
    let mut seen_epoch = 0u64;
    loop {
        let batches: Vec<Arc<Batch>> = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.epoch != seen_epoch && !state.open.is_empty() {
                    seen_epoch = state.epoch;
                    break state.open.clone();
                }
                seen_epoch = state.epoch;
                state = shared.work_cv.wait(state).expect("pool state poisoned");
            }
        };
        for batch in batches {
            if let Some(slot) = batch.claim_helper_slot() {
                batch.participate(slot, &mut scratch);
            }
        }
    }
}

/// Runs `f(0..jobs)` across `threads` pool participants and returns the
/// results in job order. With one thread (or at most one job) the jobs run
/// inline on the caller, in order.
pub fn ordered_map<R, F>(threads: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    ordered_map_with(threads, jobs, || (), |(), i| f(i))
}

/// [`ordered_map`] with per-worker scratch state on the shared global pool:
/// each participating worker materialises an `S` via `init` *at most once per
/// worker lifetime* (the state persists across calls — the arena pattern) and
/// threads it mutably through each of its jobs. Results are returned in job
/// order; scratch must never influence a result, so determinism is unaffected
/// by which worker runs which job.
///
/// **Scratch is keyed by the type `S` alone, not by call site.** Two call
/// sites that pass the same `S` share each worker's instance, and only the
/// first of them ever runs its `init` on a given worker — so `init` must be
/// interchangeable across all call sites using that type. Callers that need
/// isolated state (or distinct `init` semantics) must mint a dedicated
/// newtype per use, as the layer engines do with `ConvArena`/`FcArena`.
pub fn ordered_map_with<S, R, I, F>(threads: usize, jobs: usize, init: I, f: F) -> Vec<R>
where
    S: Send + 'static,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    WorkerPool::global().ordered_map_with(threads, jobs, init, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ordered_map_is_order_preserving_and_thread_invariant() {
        let serial = ordered_map(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(ordered_map(threads, 40, |i| i * i), serial);
        }
        assert_eq!(serial, (0..40).map(|i| i * i).collect::<Vec<_>>());
        assert!(ordered_map(4, 0, |i| i).is_empty());
    }

    #[test]
    fn ordered_map_with_reuses_worker_state_deterministically() {
        // The scratch buffer grows per worker, but results only depend on the
        // job index — identical at every thread count.
        struct Grower(Vec<usize>);
        let run = |threads| {
            ordered_map_with(
                threads,
                25,
                || Grower(Vec::new()),
                |scratch: &mut Grower, i| {
                    scratch.0.push(i);
                    i + scratch.0.capacity().min(1) * 100
                },
            )
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }

    #[test]
    fn skewed_job_costs_still_merge_in_order() {
        // Front-loaded cost forces thieves to steal the tail; the output
        // order must not care.
        let work = |i: usize| {
            let spin = if i < 4 { 200_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        };
        let serial = ordered_map(1, 64, work);
        for threads in [2, 4, 8] {
            assert_eq!(ordered_map(threads, 64, work), serial, "{threads} threads");
        }
    }

    #[test]
    fn inline_and_pooled_paths_share_init_semantics() {
        // Satellite pin: `init` runs at most once per worker per state type,
        // on the inline path exactly like the pooled path — the 1-job and
        // 1-thread cases no longer rebuild worker state per call.
        struct InlineProbe;
        static INLINE_INITS: AtomicUsize = AtomicUsize::new(0);
        for _ in 0..3 {
            // Three rounds of two dispatches — including a 1-job call with a
            // parallel thread budget, the old asymmetric case — and still one
            // init total on this thread.
            ordered_map_with(
                4,
                1,
                || {
                    INLINE_INITS.fetch_add(1, Ordering::Relaxed);
                    InlineProbe
                },
                |_probe: &mut InlineProbe, i| i,
            );
            ordered_map_with(
                1,
                5,
                || {
                    INLINE_INITS.fetch_add(1, Ordering::Relaxed);
                    InlineProbe
                },
                |_probe: &mut InlineProbe, i| i,
            );
        }
        assert_eq!(INLINE_INITS.load(Ordering::Relaxed), 1);

        struct PooledProbe;
        static POOLED_INITS: AtomicUsize = AtomicUsize::new(0);
        let mut executors = std::collections::HashSet::new();
        for _ in 0..4 {
            let ids = ordered_map_with(
                4,
                64,
                || {
                    POOLED_INITS.fetch_add(1, Ordering::Relaxed);
                    PooledProbe
                },
                |_probe: &mut PooledProbe, _i| std::thread::current().id(),
            );
            executors.extend(ids);
        }
        // At most one init per distinct worker thread over all four batches —
        // the arenas survive across dispatches instead of being rebuilt.
        assert!(POOLED_INITS.load(Ordering::Relaxed) <= executors.len());
    }

    #[test]
    fn job_panics_propagate_to_the_submitter() {
        let outcome = std::panic::catch_unwind(|| {
            ordered_map(4, 16, |i| {
                if i == 7 {
                    panic!("job 7 exploded");
                }
                i
            })
        });
        let payload = outcome.expect_err("panic must propagate");
        let message = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(message, "job 7 exploded");
        // The pool survives a panicked batch.
        assert_eq!(ordered_map(4, 8, |i| i + 1), (1..9).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline_without_helpers() {
        let caller = std::thread::current().id();
        let ids = ordered_map(1, 6, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn panicked_batch_drops_completed_results() {
        // Jobs that finished before (or despite) a sibling's panic have
        // already written heap-owning results into the slots; re-raising the
        // panic must drop them, not leak them.
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        struct Counted(#[allow(dead_code)] Vec<u8>);
        impl Counted {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::SeqCst);
                Counted(vec![0u8; 64])
            }
        }
        impl Drop for Counted {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let outcome = std::panic::catch_unwind(|| {
            ordered_map(4, 32, |i| {
                if i == 13 {
                    panic!("job 13 exploded");
                }
                Counted::new()
            })
        });
        assert!(outcome.is_err(), "panic must propagate");
        // The submitter only unwinds after every job finished, so all 31
        // surviving results exist by now — and must all be dropped.
        assert_eq!(
            LIVE.load(Ordering::SeqCst),
            0,
            "panicked batch leaked results"
        );
    }

    #[test]
    fn inline_path_panic_preserves_caller_scratch() {
        // A panic on the inline path (nothing catches the job there) must not
        // cost the caller thread its persistent arenas: the next dispatch
        // still finds the state from before the panic, as on the pooled path.
        struct PanicProbe;
        static PANIC_PATH_INITS: AtomicUsize = AtomicUsize::new(0);
        let run = |poison: bool| {
            ordered_map_with(
                1,
                2,
                || {
                    PANIC_PATH_INITS.fetch_add(1, Ordering::SeqCst);
                    PanicProbe
                },
                move |_probe: &mut PanicProbe, i| {
                    if poison && i == 1 {
                        panic!("inline job exploded");
                    }
                    i
                },
            )
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(true)));
        assert!(outcome.is_err(), "panic must propagate");
        assert_eq!(run(false), vec![0, 1]);
        assert_eq!(
            PANIC_PATH_INITS.load(Ordering::SeqCst),
            1,
            "inline panic dropped the caller's scratch store"
        );
    }
}
