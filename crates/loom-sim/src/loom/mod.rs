//! The Loom bit-serial engine: functional SIP model, the packed
//! bitplane/popcount datapath, functional layer engine, and the analytic
//! schedules for convolutional and fully-connected layers.

pub mod functional;
pub mod packed;
pub mod schedule;
pub mod sip;

pub use functional::{FunctionalLoom, FunctionalRun, SipKernel};
pub use packed::{
    packed_inner_product, packed_inner_product_slices, BitplaneBlock, MagnitudeOr, MAX_LANES,
};
pub use schedule::{conv_schedule, fc_schedule, ScheduleResult};
pub use sip::{reference_inner_product, serial_inner_product, Sip};
