//! The Loom bit-serial engine: functional SIP model, the packed bitplane /
//! popcount datapaths (64-lane single-word and 256-lane SIMD-wide), the
//! functional layer engine and its batched whole-network driver, and the
//! analytic schedules for convolutional and fully-connected layers.

pub mod cost;
pub mod functional;
pub mod network;
pub mod packed;
pub mod schedule;
pub mod sip;
pub mod store;
pub mod wide;

pub use functional::{FunctionalLoom, FunctionalRun, PackStats, SipKernel};
pub use network::{NetworkEngine, NetworkRun, PackedModel};
pub use packed::{
    packed_inner_product, packed_inner_product_slices, BitplaneBlock, MagnitudeOr, MAX_LANES,
};
pub use schedule::{conv_schedule, fc_schedule, ScheduleResult};
pub use sip::{reference_inner_product, serial_inner_product, Sip};
pub use store::{stats as weight_store_stats, WeightStoreStats};
pub use wide::{
    active_kernel_tier, compressed_inner_product, cpu_features, wide_inner_product,
    wide_inner_product_slices, CompressedWideBlock, CpuFeatures, KernelTier, WideBitplaneBlock,
    KERNEL_TIERS, WIDE_LANES,
};
