//! The Loom bit-serial engine: functional SIP model, functional layer engine,
//! and the analytic schedules for convolutional and fully-connected layers.

pub mod functional;
pub mod schedule;
pub mod sip;

pub use functional::{FunctionalLoom, FunctionalRun};
pub use schedule::{conv_schedule, fc_schedule, ScheduleResult};
pub use sip::{reference_inner_product, serial_inner_product, Sip};
