//! Analytic cycle models of the Loom schedules (§3.2).
//!
//! * **Convolutional layers** — weight bits are loaded in parallel across a
//!   whole SIP row and reused over the activation bits of the 16 windows the
//!   columns hold, so a block of `columns` windows × `rows` filters × 16
//!   weights takes `Pw × ceil(Pa / b)` cycles. Dynamic per-group activation
//!   precisions shorten `Pa` block by block; per-group weight precisions
//!   (Table 3/4) shorten `Pw`.
//! * **Fully-connected layers** — every SIP owns one output activation; weight
//!   bits are loaded one column per cycle and reused over the `16/b` cycles
//!   the activation bits take, so a block of `rows × columns` outputs × 16
//!   inputs takes `Pw × 16/b` cycles. Activation precision does not affect
//!   performance. Layers with fewer outputs than SIPs use cascading: each
//!   output is sliced over several SIPs of a row and the partial sums are
//!   reduced over `slices` extra cycles.

use crate::config::LoomGeometry;
use loom_model::layer::{ConvSpec, FcSpec};
use loom_precision::trace::LayerPrecisionSpec;

/// Outcome of the analytic model for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleResult {
    /// Total cycles, including pipeline fill.
    pub cycles: u64,
    /// Spatial occupancy of the SIP grid (1.0 = every row and column holds
    /// useful work in every block).
    pub utilization: f64,
}

/// Quantizes a (possibly fractional) effective activation precision to the
/// variant's `b` bits-per-cycle granularity.
///
/// Integer precisions are rounded up exactly (`ceil(p / b) × b`, so an 8-bit
/// profile on LM4b costs the same as 5–8 bits, as the paper notes). Fractional
/// (statistically averaged) precisions use the expectation of that rounding,
/// `p + (b-1)/2`, capped at the exact rounding of the nominal precision.
pub fn quantize_activation_bits(effective: f64, nominal_bits: u8, b: u8) -> f64 {
    let b_f = f64::from(b);
    let cap = (f64::from(nominal_bits) / b_f).ceil() * b_f;
    if (effective.fract()).abs() < f64::EPSILON {
        ((effective / b_f).ceil() * b_f).min(cap)
    } else {
        (effective + (b_f - 1.0) / 2.0).min(cap)
    }
}

/// Cycles and utilisation for a convolutional layer.
pub fn conv_schedule(
    geometry: &LoomGeometry,
    spec: &ConvSpec,
    precision: &LayerPrecisionSpec,
) -> ScheduleResult {
    let cols = geometry.window_columns as u64;
    let rows = geometry.filter_rows as u64;
    let b = geometry.act_bits_per_cycle;
    let windows = spec.windows() as u64;
    let filters = spec.filters as u64;
    let wpf = spec.weights_per_filter() as u64;

    let window_groups = windows.div_ceil(cols);
    let filter_groups = filters.div_ceil(rows);
    let weight_chunks = wpf.div_ceil(geometry.sip_lanes as u64);

    let mut cycles = 0.0f64;
    let mut group_index = 0usize;
    for _wg in 0..window_groups {
        for chunk in 0..weight_chunks {
            let pa_eff = precision
                .dynamic_activation
                .effective_bits(precision.activation, group_index);
            group_index += 1;
            let pa_q = quantize_activation_bits(pa_eff, precision.activation.bits(), b);
            let pw_eff = precision
                .group_weight
                .effective_bits(precision.weight, chunk as usize);
            cycles += filter_groups as f64 * pw_eff * (pa_q / f64::from(b));
        }
    }
    // Pipeline fill: the first weight-bit plane must be loaded before compute
    // can start (one extra weight-load cycle per layer).
    let cycles = cycles.ceil() as u64 + 1;

    let spatial = (windows as f64 / (window_groups * cols) as f64)
        * (filters as f64 / (filter_groups * rows) as f64)
        * (wpf as f64 / (weight_chunks * geometry.sip_lanes as u64) as f64);
    ScheduleResult {
        cycles,
        utilization: spatial.min(1.0),
    }
}

/// Cycles and utilisation for a fully-connected layer.
///
/// `cascading` enables the few-output optimisation; the paper's Loom always
/// has it available, but disabling it lets tests quantify its benefit.
pub fn fc_schedule(
    geometry: &LoomGeometry,
    spec: &FcSpec,
    precision: &LayerPrecisionSpec,
    cascading: bool,
) -> ScheduleResult {
    let lanes = geometry.sip_lanes as u64;
    let b = u64::from(geometry.act_bits_per_cycle);
    let act_cycles_per_weight_bit = lanes.div_ceil(b);
    let concurrent = geometry.concurrent_fc_outputs() as u64;
    let outputs = spec.out_features as u64;
    let inputs = spec.in_features as u64;

    let slices = if cascading && outputs < concurrent {
        (concurrent / outputs)
            .min(geometry.window_columns as u64)
            .max(1)
    } else {
        1
    };
    let chunks = inputs.div_ceil(lanes);
    let chunks_per_slice = chunks.div_ceil(slices);
    let output_groups = (outputs * slices).div_ceil(concurrent);

    // Per-group weight precisions may be fractional (Table 3 averages).
    let groups_total = (output_groups * chunks_per_slice) as usize;
    let pw_eff = precision
        .group_weight
        .average_effective_bits(precision.weight, groups_total.max(1));

    let steady =
        output_groups as f64 * chunks_per_slice as f64 * pw_eff * act_cycles_per_weight_bit as f64;
    let fill = (geometry.window_columns as u64 - 1) * act_cycles_per_weight_bit;
    let reduction = slices - 1;
    let cycles = steady.ceil() as u64 + fill + reduction;

    let occupancy = (outputs * slices) as f64 / (output_groups * concurrent) as f64;
    ScheduleResult {
        cycles,
        utilization: occupancy.min(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EquivalentConfig, LoomVariant};
    use crate::dpnn;
    use loom_model::Precision;
    use loom_precision::trace::GroupPrecisionSource;

    fn geom(variant: LoomVariant) -> LoomGeometry {
        EquivalentConfig::BASELINE_128.loom(variant)
    }

    fn dpnn_geom() -> crate::config::DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    fn p(bits: u8) -> Precision {
        Precision::new(bits).unwrap()
    }

    /// A convolutional layer that tiles the 128-configuration perfectly.
    fn tiled_conv() -> ConvSpec {
        ConvSpec {
            in_channels: 64,
            in_height: 34,
            in_width: 34,
            filters: 128,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    #[test]
    fn conv_matches_dpnn_at_sixteen_bits() {
        // Paper invariant: with 16-bit activations and weights Loom matches the
        // bit-parallel engine's throughput (to within pipeline fill).
        let spec = tiled_conv();
        let lm = conv_schedule(
            &geom(LoomVariant::Lm1b),
            &spec,
            &LayerPrecisionSpec::full_precision(),
        );
        let base = dpnn::conv_cycles(&dpnn_geom(), &spec);
        let ratio = lm.cycles as f64 / base as f64;
        assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn conv_speedup_is_256_over_pa_times_pw() {
        let spec = tiled_conv();
        let prec = LayerPrecisionSpec::static_profile(p(8), p(8));
        let lm = conv_schedule(&geom(LoomVariant::Lm1b), &spec, &prec);
        let base = dpnn::conv_cycles(&dpnn_geom(), &spec);
        let speedup = base as f64 / lm.cycles as f64;
        assert!((3.9..=4.05).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn conv_dynamic_activation_reduces_cycles() {
        let spec = tiled_conv();
        let static_prec = LayerPrecisionSpec::static_profile(p(9), p(11));
        let mut dynamic_prec = static_prec.clone();
        dynamic_prec.dynamic_activation = GroupPrecisionSource::Scaled { fraction: 0.8 };
        let g = geom(LoomVariant::Lm1b);
        let s = conv_schedule(&g, &spec, &static_prec);
        let d = conv_schedule(&g, &spec, &dynamic_prec);
        assert!(d.cycles < s.cycles);
        let ratio = d.cycles as f64 / s.cycles as f64;
        assert!((0.78..=0.83).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn lm4b_gains_nothing_from_pa_5_vs_8() {
        // §3.2: "for LM4b reducing Pa from 8 to 5 bits produces no performance
        // benefit, whereas for LM1b it would improve performance by 1.6x".
        let spec = tiled_conv();
        let g4 = geom(LoomVariant::Lm4b);
        let at8 = conv_schedule(&g4, &spec, &LayerPrecisionSpec::static_profile(p(8), p(11)));
        let at5 = conv_schedule(&g4, &spec, &LayerPrecisionSpec::static_profile(p(5), p(11)));
        assert_eq!(at8.cycles, at5.cycles);
        let g1 = geom(LoomVariant::Lm1b);
        let at8_1 = conv_schedule(&g1, &spec, &LayerPrecisionSpec::static_profile(p(8), p(11)));
        let at5_1 = conv_schedule(&g1, &spec, &LayerPrecisionSpec::static_profile(p(5), p(11)));
        let gain = at8_1.cycles as f64 / at5_1.cycles as f64;
        assert!((1.55..=1.65).contains(&gain), "got {gain}");
    }

    #[test]
    fn conv_underutilizes_with_few_filters() {
        // 96 filters on a 128-row grid: Loom wastes a quarter of its rows while
        // DPNN (8 filters/cycle) stays fully utilised, so the speedup drops to
        // 192/(Pa*Pw) instead of 256/(Pa*Pw).
        let mut spec = tiled_conv();
        spec.filters = 96;
        let prec = LayerPrecisionSpec::static_profile(p(8), p(8));
        let lm = conv_schedule(&geom(LoomVariant::Lm1b), &spec, &prec);
        let base = dpnn::conv_cycles(&dpnn_geom(), &spec);
        let speedup = base as f64 / lm.cycles as f64;
        assert!((2.9..=3.05).contains(&speedup), "got {speedup}");
        assert!(lm.utilization < 0.8);
    }

    #[test]
    fn fc_matches_dpnn_at_sixteen_bit_weights() {
        let spec = FcSpec::new(4096, 4096);
        let lm = fc_schedule(
            &geom(LoomVariant::Lm1b),
            &spec,
            &LayerPrecisionSpec::full_precision(),
            true,
        );
        let base = dpnn::fc_cycles(&dpnn_geom(), &spec);
        let ratio = lm.cycles as f64 / base as f64;
        assert!((0.99..=1.01).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fc_speedup_is_16_over_pw() {
        let spec = FcSpec::new(4096, 4096);
        let prec = LayerPrecisionSpec::static_profile(Precision::FULL, p(8));
        let lm = fc_schedule(&geom(LoomVariant::Lm1b), &spec, &prec, true);
        let base = dpnn::fc_cycles(&dpnn_geom(), &spec);
        let speedup = base as f64 / lm.cycles as f64;
        assert!((1.95..=2.01).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn fc_activation_precision_does_not_matter() {
        let spec = FcSpec::new(4096, 4096);
        let g = geom(LoomVariant::Lm1b);
        let full_act = fc_schedule(
            &g,
            &spec,
            &LayerPrecisionSpec::static_profile(Precision::FULL, p(9)),
            true,
        );
        let low_act = fc_schedule(
            &g,
            &spec,
            &LayerPrecisionSpec::static_profile(p(5), p(9)),
            true,
        );
        assert_eq!(full_act.cycles, low_act.cycles);
    }

    #[test]
    fn fc_cascading_rescues_few_output_layers() {
        // GoogLeNet's 1024 -> 1000 classifier: without cascading Loom would be
        // slower than DPNN; with cascading it reaches the paper's ~2.25x.
        let spec = FcSpec::new(1024, 1000);
        let prec = LayerPrecisionSpec::static_profile(Precision::FULL, p(7));
        let g = geom(LoomVariant::Lm1b);
        let base = dpnn::fc_cycles(&dpnn_geom(), &spec);
        let with = fc_schedule(&g, &spec, &prec, true);
        let without = fc_schedule(&g, &spec, &prec, false);
        let speedup_with = base as f64 / with.cycles as f64;
        let speedup_without = base as f64 / without.cycles as f64;
        assert!(speedup_with > 2.0, "got {speedup_with}");
        assert!(speedup_without < 1.3, "got {speedup_without}");
        assert!(with.utilization > without.utilization);
    }

    #[test]
    fn fc_initiation_interval_shrinks_for_wider_variants() {
        // The fill term is what makes LM2b/LM4b occasionally faster than LM1b
        // on small FCLs (Table 2 discussion).
        let spec = FcSpec::new(256, 2048);
        let prec = LayerPrecisionSpec::static_profile(Precision::FULL, p(9));
        let c1 = fc_schedule(&geom(LoomVariant::Lm1b), &spec, &prec, true).cycles;
        let c2 = fc_schedule(&geom(LoomVariant::Lm2b), &spec, &prec, true).cycles;
        let c4 = fc_schedule(&geom(LoomVariant::Lm4b), &spec, &prec, true).cycles;
        assert!(c2 < c1);
        assert!(c4 < c2);
    }

    #[test]
    fn quantize_activation_bits_behaviour() {
        assert_eq!(quantize_activation_bits(5.0, 8, 1), 5.0);
        assert_eq!(quantize_activation_bits(5.0, 8, 2), 6.0);
        assert_eq!(quantize_activation_bits(5.0, 8, 4), 8.0);
        // Fractional averages get the expectation correction, capped at the
        // nominal rounding.
        assert!((quantize_activation_bits(6.4, 8, 2) - 6.9).abs() < 1e-9);
        assert_eq!(quantize_activation_bits(7.9, 8, 4), 8.0);
    }
}
