//! The process-wide pack-once weight store.
//!
//! Transposing and compressing a layer's weights into wide bit-plane blocks
//! is pure in the weights and the layer dimensions, yet before this store the
//! engine repeated it per `run_conv` call, per `NetworkEngine::prepack`, and
//! per conformance-harness backend. The store keys each packed container by
//! the layer's dimensions plus a double-FNV content hash of its weights, so a
//! network's filters are packed exactly once per process: `run_conv`, the
//! batched network engine, the datapath conformance harness and every
//! `loom-serve` catalog build share the same [`std::sync::Arc`]'d planes.
//!
//! Entries are evicted FIFO beyond a fixed cap so long-running processes
//! (test harnesses, soak benches cycling synthetic layers) cannot grow the
//! store without bound. [`stats`] exposes pack/hit counters, cumulative pack
//! cost and compression footprint, and the current resident size — the bench
//! binaries report them and CI gates on repack avoidance.

use crate::loom::functional::{FunctionalLoom, PackStats, PackedFcRows, WideFilterPlanes};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::Tensor4;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Maximum containers the store holds before FIFO eviction kicks in. Real
/// zoo networks hold well under this many compute layers; the cap only
/// bounds pathological churn (e.g. property tests generating fresh layers).
const MAX_ENTRIES: usize = 512;

/// Counters and footprints of the process-wide weight store.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightStoreStats {
    /// Convolution containers packed (store misses).
    pub conv_packs: u64,
    /// Convolution lookups served from the store.
    pub conv_hits: u64,
    /// Fully-connected containers packed (store misses).
    pub fc_packs: u64,
    /// Fully-connected lookups served from the store.
    pub fc_hits: u64,
    /// Containers evicted by the FIFO cap.
    pub evictions: u64,
    /// Containers currently resident.
    pub entries: u64,
    /// Approximate bytes currently resident.
    pub resident_bytes: u64,
    /// Cumulative pack cost and compression footprint over every pack.
    pub pack: PackStats,
}

impl WeightStoreStats {
    /// Total packs across layer kinds.
    pub fn packs(&self) -> u64 {
        self.conv_packs + self.fc_packs
    }

    /// Total hits across layer kinds.
    pub fn hits(&self) -> u64 {
        self.conv_hits + self.fc_hits
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Conv {
        shape: (usize, usize, usize, usize),
        hash: (u64, u64),
    },
    Fc {
        dims: (usize, usize),
        hash: (u64, u64),
    },
}

enum Entry {
    Conv(Arc<WideFilterPlanes>),
    Fc(Arc<PackedFcRows>),
}

impl Entry {
    fn resident_bytes(&self) -> u64 {
        match self {
            Entry::Conv(planes) => planes.approx_bytes() as u64,
            Entry::Fc(rows) => rows.approx_bytes() as u64,
        }
    }
}

/// FNV-1a over the weight values; two independent seeds give a 128-bit
/// content fingerprint, which together with the dimension key makes
/// accidental collisions vanishingly unlikely.
fn fnv1a(values: &[i32], seed: u64) -> u64 {
    let mut h = seed;
    for &v in values {
        for b in (v as u32).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn content_hash(values: &[i32]) -> (u64, u64) {
    (
        fnv1a(values, 0xcbf2_9ce4_8422_2325),
        fnv1a(values, 0x6c62_272e_07bb_0142),
    )
}

/// The store proper — kept as a plain struct so eviction can be unit-tested
/// on a local instance with a small cap.
struct Store {
    cap: usize,
    entries: HashMap<Key, Entry>,
    order: VecDeque<Key>,
    stats: WeightStoreStats,
}

impl Store {
    fn new(cap: usize) -> Self {
        Store {
            cap,
            entries: HashMap::new(),
            order: VecDeque::new(),
            stats: WeightStoreStats::default(),
        }
    }

    fn insert(&mut self, key: Key, entry: Entry) {
        self.stats.resident_bytes += entry.resident_bytes();
        self.order.push_back(key.clone());
        self.entries.insert(key, entry);
        while self.entries.len() > self.cap {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if let Some(evicted) = self.entries.remove(&oldest) {
                self.stats.resident_bytes -= evicted.resident_bytes();
                self.stats.evictions += 1;
            }
        }
        self.stats.entries = self.entries.len() as u64;
    }
}

fn global() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::new(MAX_ENTRIES)))
}

/// A convolution's packed, compressed filter planes — from the store when the
/// same (dimensions, weights) pair was packed before in this process, packed
/// and inserted otherwise.
pub(crate) fn conv_planes(spec: &ConvSpec, weights: &Tensor4) -> Arc<WideFilterPlanes> {
    let shape = weights.shape();
    let key = Key::Conv {
        shape: (shape.k, shape.c, shape.h, shape.w),
        hash: content_hash(weights.as_slice()),
    };
    {
        let mut store = global().lock().expect("weight store poisoned");
        if let Some(Entry::Conv(planes)) = store.entries.get(&key) {
            let planes = Arc::clone(planes);
            store.stats.conv_hits += 1;
            return planes;
        }
    }
    // Pack outside the lock: layer packs are milliseconds on big networks and
    // must not serialize unrelated threads behind the store mutex.
    let planes = Arc::new(FunctionalLoom::pack_wide_filters(spec, weights));
    let mut store = global().lock().expect("weight store poisoned");
    store.stats.conv_packs += 1;
    store.stats.pack.add(&planes.stats());
    if let Some(Entry::Conv(existing)) = store.entries.get(&key) {
        // Another thread packed the same layer concurrently; share theirs.
        return Arc::clone(existing);
    }
    store.insert(key, Entry::Conv(Arc::clone(&planes)));
    planes
}

/// A fully-connected layer's packed, compressed row transpose — from the
/// store when already packed this process, packed and inserted otherwise.
pub(crate) fn fc_rows(spec: &FcSpec, weights: &[i32]) -> Arc<PackedFcRows> {
    let key = Key::Fc {
        dims: (spec.in_features, spec.out_features),
        hash: content_hash(weights),
    };
    {
        let mut store = global().lock().expect("weight store poisoned");
        if let Some(Entry::Fc(rows)) = store.entries.get(&key) {
            let rows = Arc::clone(rows);
            store.stats.fc_hits += 1;
            return rows;
        }
    }
    let rows = Arc::new(PackedFcRows::pack(spec, weights));
    let mut store = global().lock().expect("weight store poisoned");
    store.stats.fc_packs += 1;
    store.stats.pack.add(&rows.stats());
    if let Some(Entry::Fc(existing)) = store.entries.get(&key) {
        return Arc::clone(existing);
    }
    store.insert(key, Entry::Fc(Arc::clone(&rows)));
    rows
}

/// A snapshot of the store's counters and footprints.
pub fn stats() -> WeightStoreStats {
    global().lock().expect("weight store poisoned").stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_weights(spec: &ConvSpec, salt: i32) -> Tensor4 {
        let n = spec.weight_shape().len();
        Tensor4::from_vec(
            spec.weight_shape(),
            (0..n as i32).map(|i| (i * 31 + salt) % 200 - 100).collect(),
        )
        .unwrap()
    }

    #[test]
    fn conv_lookups_share_one_packed_container() {
        let spec = ConvSpec::simple(3, 6, 6, 4, 3);
        // A salt no other test uses, so the entry is freshly packed here.
        let weights = conv_weights(&spec, 90001);
        let before = stats();
        let first = conv_planes(&spec, &weights);
        let second = conv_planes(&spec, &weights);
        assert!(Arc::ptr_eq(&first, &second), "second lookup must hit");
        let after = stats();
        assert!(after.conv_packs > before.conv_packs);
        assert!(after.conv_hits > before.conv_hits);
        assert!(after.pack.pack_nanos >= before.pack.pack_nanos);
        assert!(after.pack.dense_stream_bits > before.pack.dense_stream_bits);
        // Different weights are a different entry.
        let other = conv_planes(&spec, &conv_weights(&spec, 90002));
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn fc_lookups_share_one_packed_container() {
        let spec = FcSpec::new(40, 6);
        let weights: Vec<i32> = (0..240).map(|i| (i * 13 + 90011) % 101 - 50).collect();
        let first = fc_rows(&spec, &weights);
        let second = fc_rows(&spec, &weights);
        assert!(Arc::ptr_eq(&first, &second));
        let mut changed = weights.clone();
        changed[0] += 1;
        assert!(!Arc::ptr_eq(&first, &fc_rows(&spec, &changed)));
    }

    #[test]
    fn same_dims_different_content_do_not_collide() {
        let spec = ConvSpec::simple(2, 5, 5, 2, 3);
        let a = conv_planes(&spec, &conv_weights(&spec, 90021));
        let b = conv_planes(&spec, &conv_weights(&spec, 90022));
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn eviction_is_fifo_and_keeps_accounting_consistent() {
        // Exercised on a local instance so the global store's entries (shared
        // with concurrently running tests) are untouched.
        let mut store = Store::new(2);
        let spec = FcSpec::new(8, 2);
        for salt in 0..4 {
            let weights: Vec<i32> = (0..16).map(|i| i + salt).collect();
            let key = Key::Fc {
                dims: (spec.in_features, spec.out_features),
                hash: content_hash(&weights),
            };
            store.insert(
                key,
                Entry::Fc(Arc::new(PackedFcRows::pack(&spec, &weights))),
            );
        }
        assert_eq!(store.entries.len(), 2);
        assert_eq!(store.stats.entries, 2);
        assert_eq!(store.stats.evictions, 2);
        let resident: u64 = store.entries.values().map(Entry::resident_bytes).sum();
        assert_eq!(store.stats.resident_bytes, resident);
    }

    #[test]
    fn content_hash_is_order_sensitive() {
        assert_ne!(content_hash(&[1, 2, 3]), content_hash(&[3, 2, 1]));
        assert_ne!(content_hash(&[0]), content_hash(&[0, 0]));
    }
}
