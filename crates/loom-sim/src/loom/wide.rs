//! The SIMD-wide packed SIP datapath: 256 lanes per block, four plane words
//! wide.
//!
//! [`super::packed::BitplaneBlock`] holds one `u64` word per bit plane — at
//! the paper's 16-lane SIP geometry that leaves 48 of every 64 plane bits
//! idle. [`WideBitplaneBlock`] widens the block to [`WIDE_LANES`] (256) lanes
//! held as `[u64; 4]` plane words, so one AND + popcount evaluates sixteen
//! SIPs' worth of one-bit products at once. The arithmetic schedule is the
//! same weight-bit outer / activation-bit inner walk as
//! [`super::sip::serial_inner_product`], with the same two's-complement MSB
//! negations — only the order in which a plane pair's one-bit products are
//! summed changes, and integer addition is associative, so the result is
//! bit-identical to the serial model by construction (pinned by the property
//! suite in `tests/functional_equivalence.rs` across 1–256 lanes, ragged
//! tails, 1–16-bit precisions and all four signedness combinations).
//!
//! Five kernel tiers are dispatched at runtime on x86-64 (the fastest
//! detected tier is chosen once, into a process-wide [`KernelTier`]) and all
//! produce identical results:
//!
//! * **AVX-512 + `vpopcntdq`** — `_mm512_popcnt_epi64` counts a whole plane
//!   pair per instruction: two adjacent activation planes load with one
//!   512-bit read (the plane array is contiguous), AND against the broadcast
//!   weight plane, popcount per 64-bit lane, and `_mm512_sllv_epi64` applies
//!   each half's plane shift in-register.
//! * **AVX-512 (`avx512f` + `avx512bw`)** — the `vpshufb` nibble-lookup
//!   popcount at 512-bit width for parts without `vpopcntdq`: four
//!   activation planes fold into one `_mm512_sad_epu8` (two per load, byte
//!   counts combined as `c01 + 4·c23`), with per-half shifts applied by
//!   `_mm512_sllv_epi64`.
//! * **AVX2** — `_mm256_and_si256` + a `vpshufb` nibble-lookup popcount
//!   (`_mm256_sad_epu8` folds the byte counts into four lane sums that are
//!   shift-accumulated vector-wide, one horizontal reduction per weight bit).
//! * **`popcnt`** — four scalar `count_ones` per plane pair, compiled with
//!   the `popcnt` feature enabled.
//! * **portable** — the same loop on the baseline target, for non-x86 hosts.
//!
//! Packing is dispatched the same way: the AVX2 path transposes eight lanes
//! per `_mm256_movemask_ps` instead of one bit at a time, and both paths stop
//! extracting planes at the block's detected magnitude width (every higher
//! plane of a two's-complement value equals its sign, so those planes are
//! filled with the sign word directly).

use loom_mem::compress::{CompressedPlanes, PlaneRef, PLANE_LANES, PLANE_WORDS};
use loom_model::fixed::{Precision, MAX_PRECISION};

/// Lanes per [`WideBitplaneBlock`]: four 64-bit plane words.
pub const WIDE_LANES: usize = 256;

/// Plane words per block (`WIDE_LANES / 64`).
pub const WIDE_WORDS: usize = WIDE_LANES / 64;

// The compressed format in loom-mem and the wide block here must agree on
// block geometry for the zero-copy plane handoff below.
const _: () = assert!(WIDE_LANES == PLANE_LANES && WIDE_WORDS == PLANE_WORDS);

/// Up to 256 lanes of operands, transposed into `[u64; 4]` words per bit
/// plane.
///
/// Bit `i % 64` of word `i / 64` of [`plane_words`](Self::plane_words)`(b)`
/// is bit `b` of lane `i`'s two's-complement encoding;
/// [`sign_words`](Self::sign_words) marks the negative lanes. Lanes beyond
/// [`lanes`](Self::lanes) pack as zeros and contribute nothing to any inner
/// product, which is how ragged tails (`lanes % 64 != 0`) are handled.
///
/// # Examples
///
/// ```
/// use loom_sim::loom::{wide_inner_product, WideBitplaneBlock};
/// use loom_sim::loom::reference_inner_product;
/// use loom_model::fixed::required_precision;
///
/// let weights: Vec<i32> = (0..200).map(|i| (i % 17) - 8).collect();
/// let activations: Vec<i32> = (0..200).map(|i| (i % 23) - 11).collect();
/// let w = WideBitplaneBlock::pack(&weights);
/// let a = WideBitplaneBlock::pack(&activations);
/// let dot = wide_inner_product(
///     &w,
///     &a,
///     required_precision(&weights),
///     required_precision(&activations),
///     true,
///     true,
/// );
/// assert_eq!(dot, reference_inner_product(&weights, &activations));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideBitplaneBlock {
    lanes: usize,
    planes: [[u64; WIDE_WORDS]; MAX_PRECISION as usize],
    signs: [u64; WIDE_WORDS],
}

impl WideBitplaneBlock {
    /// A block holding no lanes (all planes zero).
    pub const EMPTY: WideBitplaneBlock = WideBitplaneBlock {
        lanes: 0,
        planes: [[0; WIDE_WORDS]; MAX_PRECISION as usize],
        signs: [0; WIDE_WORDS],
    };

    /// Transposes `values` into wide bit-plane form.
    ///
    /// As with the narrow block, operands must be representable in 16-bit
    /// two's complement.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > 256`.
    pub fn pack(values: &[i32]) -> Self {
        let mut block = Self::EMPTY;
        block.pack_into(values);
        block
    }

    /// Re-packs the block in place from `values`, reusing the storage — the
    /// arena path the conv/FC pipelines use to avoid per-window allocation.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > 256`.
    pub fn pack_into(&mut self, values: &[i32]) {
        assert!(
            values.len() <= WIDE_LANES,
            "a WideBitplaneBlock holds at most {WIDE_LANES} lanes, got {}",
            values.len()
        );
        *self = Self::EMPTY;
        self.lanes = values.len();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: the `avx2` feature was just detected at runtime.
                unsafe { pack_avx2(self, values) };
                return;
            }
        }
        pack_scalar(self, values);
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The four words holding bit `bit` of every lane.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn plane_words(&self, bit: u8) -> &[u64; WIDE_WORDS] {
        &self.planes[usize::from(bit)]
    }

    /// The four words marking the negative lanes.
    pub fn sign_words(&self) -> &[u64; WIDE_WORDS] {
        &self.signs
    }

    /// The magnitude view of plane `bit` (bit differs from the lane's sign),
    /// as consumed by the precision detectors.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn magnitude_words(&self, bit: u8) -> [u64; WIDE_WORDS] {
        let plane = &self.planes[usize::from(bit)];
        std::array::from_fn(|w| plane[w] ^ self.signs[w])
    }

    /// Whether every packed lane is zero (such a block contributes nothing to
    /// any inner product, so the engine skips it outright).
    pub fn is_zero(&self) -> bool {
        self.signs == [0; WIDE_WORDS] && self.planes.iter().all(|p| *p == [0; WIDE_WORDS])
    }

    /// The smallest precision covering every packed lane: signed
    /// two's-complement width when `signed`, magnitude bits otherwise. Equals
    /// [`loom_model::fixed::required_precision`] /
    /// [`loom_model::fixed::required_unsigned_precision`] over the same
    /// values. The engine computes inner products at this width — every
    /// skipped higher plane is either all zeros or pure sign extension, and
    /// the narrower schedule is exactly what the serial model produces at the
    /// same precision.
    pub fn detected_precision(&self, signed: bool) -> Precision {
        let highest = (0..MAX_PRECISION)
            .rev()
            .find(|&bit| self.magnitude_words(bit) != [0; WIDE_WORDS]);
        match highest {
            None => Precision::saturating(1),
            Some(bit) => Precision::saturating(bit + if signed { 2 } else { 1 }),
        }
    }

    /// Reconstructs the packed values (inverse of [`pack`](Self::pack) for
    /// operands representable in 16-bit two's complement).
    pub fn unpack(&self) -> Vec<i32> {
        (0..self.lanes)
            .map(|lane| {
                let (word, bit) = (lane / 64, lane % 64);
                let mut v: u32 = 0;
                for plane in 0..MAX_PRECISION {
                    v |= ((self.planes[usize::from(plane)][word] >> bit & 1) as u32) << plane;
                }
                if self.signs[word] >> bit & 1 == 1 {
                    v |= !0u32 << MAX_PRECISION;
                }
                v as i32
            })
            .collect()
    }
}

/// Slot marker: the plane is all zeros (elided, contributes nothing).
const SLOT_ZERO: u8 = 0xff;
/// Slot marker: the plane equals the sign plane (pure sign extension).
const SLOT_SIGN: u8 = 0xfe;

/// A [`WideBitplaneBlock`] stored in the sparse compressed format of
/// [`loom_mem::compress`]: all-zero planes are elided, pure-sign-extension
/// planes resolve to the shared sign plane, and only the remaining planes are
/// materialised. The wide kernels consume this form directly — an elided
/// plane is skipped in the weight-bit loop (its contribution is exactly
/// zero), and a sign-extension plane reads the sign words, so every inner
/// product is bit-identical to the dense path on every kernel tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedWideBlock {
    inner: CompressedPlanes,
    /// Per-bit resolution LUT: [`SLOT_ZERO`], [`SLOT_SIGN`], or an index
    /// into the stored-plane array — one branchless lookup per weight bit.
    slots: [u8; MAX_PRECISION as usize],
    zero: bool,
}

impl CompressedWideBlock {
    /// Compresses a dense block. Lossless: [`decompress`](Self::decompress)
    /// reproduces `block` exactly, including lanes and sign words.
    pub fn compress(block: &WideBitplaneBlock) -> Self {
        let inner = CompressedPlanes::from_dense(block.lanes, &block.planes, &block.signs);
        let mut slots = [SLOT_ZERO; MAX_PRECISION as usize];
        let mut next = 0u8;
        for (bit, slot) in slots.iter_mut().enumerate() {
            *slot = match inner.plane(bit as u8) {
                PlaneRef::Stored(_) => {
                    next += 1;
                    next - 1
                }
                PlaneRef::SignExtended => SLOT_SIGN,
                PlaneRef::Zero => SLOT_ZERO,
            };
        }
        CompressedWideBlock {
            inner,
            slots,
            zero: block.is_zero(),
        }
    }

    /// Reconstructs the dense block, bit-identical to what
    /// [`compress`](Self::compress) consumed.
    pub fn decompress(&self) -> WideBitplaneBlock {
        let (planes, signs) = self.inner.to_dense();
        WideBitplaneBlock {
            lanes: self.inner.lanes(),
            planes,
            signs,
        }
    }

    /// Resolves weight plane `wb`: `None` when the plane is all zeros (the
    /// kernels skip it outright), otherwise the four plane words.
    #[inline(always)]
    fn plane(&self, wb: usize) -> Option<&[u64; WIDE_WORDS]> {
        match self.slots[wb] {
            SLOT_ZERO => None,
            SLOT_SIGN => Some(self.inner.signs()),
            index => Some(&self.inner.stored_planes()[usize::from(index)]),
        }
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.inner.lanes()
    }

    /// Whether every packed lane is zero (same contract as
    /// [`WideBitplaneBlock::is_zero`], captured at compression time).
    pub fn is_zero(&self) -> bool {
        self.zero
    }

    /// The smallest precision covering every packed lane — identical to
    /// [`WideBitplaneBlock::detected_precision`] on the dense block, computed
    /// here from the compressed form (an elided zero plane's magnitude view
    /// is the sign plane; a sign-extension plane's is zero).
    pub fn detected_precision(&self, signed: bool) -> Precision {
        let signs = *self.inner.signs();
        let highest = (0..MAX_PRECISION).rev().find(|&bit| {
            let magnitude: [u64; WIDE_WORDS] = match self.plane(usize::from(bit)) {
                None => signs,
                Some(plane) => std::array::from_fn(|w| plane[w] ^ signs[w]),
            };
            magnitude != [0; WIDE_WORDS]
        });
        match highest {
            None => Precision::saturating(1),
            Some(bit) => Precision::saturating(bit + if signed { 2 } else { 1 }),
        }
    }

    /// The underlying compressed-plane storage (footprint accounting).
    pub fn planes(&self) -> &CompressedPlanes {
        &self.inner
    }

    /// Resident bytes of this block (headers + stored plane words).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<CompressedPlanes>()
            + self.inner.resident_bytes()
    }
}

/// The weight operand of the wide kernels: either a dense block or a
/// compressed one. Both resolve per-bit plane words through
/// [`plane`](Self::plane); the dense arm always yields a plane, the
/// compressed arm yields `None` for elided all-zero planes so the kernels
/// skip them.
#[derive(Clone, Copy)]
enum WeightPlanes<'a> {
    Dense(&'a WideBitplaneBlock),
    Compressed(&'a CompressedWideBlock),
}

impl<'a> WeightPlanes<'a> {
    #[inline(always)]
    fn plane(self, wb: usize) -> Option<&'a [u64; WIDE_WORDS]> {
        match self {
            WeightPlanes::Dense(block) => Some(&block.planes[wb]),
            WeightPlanes::Compressed(block) => block.plane(wb),
        }
    }
}

/// Plane extraction cutoff: the widest magnitude (sign-excluded) bit count of
/// any value in the slice. Every plane at or above the cutoff equals the sign
/// plane, so packers fill those planes from the sign words instead of
/// extracting them.
fn magnitude_cutoff(values: &[i32]) -> usize {
    let mut fold: u32 = 0;
    for &v in values {
        fold |= (v ^ (v >> 31)) as u32;
    }
    ((32 - fold.leading_zeros()) as usize).min(usize::from(MAX_PRECISION))
}

/// Portable bit-by-bit transpose.
fn pack_scalar(block: &mut WideBitplaneBlock, values: &[i32]) {
    let cutoff = magnitude_cutoff(values);
    for (lane, &v) in values.iter().enumerate() {
        let (word, bit) = (lane / 64, lane % 64);
        let u = v as u32;
        for plane in 0..cutoff {
            block.planes[plane][word] |= u64::from(u >> plane & 1) << bit;
        }
        block.signs[word] |= u64::from(v < 0) << bit;
    }
    for plane in cutoff..usize::from(MAX_PRECISION) {
        block.planes[plane] = block.signs;
    }
}

/// AVX2 transpose: eight lanes at a time via `_mm256_movemask_ps`, which
/// collects the sign bit of each 32-bit lane — shifting the target bit into
/// the sign position turns one movemask into eight transposed plane bits.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack_avx2(block: &mut WideBitplaneBlock, values: &[i32]) {
    use std::arch::x86_64::*;
    let cutoff = magnitude_cutoff(values);
    let mut chunk = 0usize;
    while chunk * 8 < values.len() {
        let base = chunk * 8;
        let v = if base + 8 <= values.len() {
            _mm256_loadu_si256(values.as_ptr().add(base).cast())
        } else {
            // Ragged tail: zero lanes pack as zeros, contributing nothing.
            let mut tail = [0i32; 8];
            tail[..values.len() - base].copy_from_slice(&values[base..]);
            _mm256_loadu_si256(tail.as_ptr().cast())
        };
        let (word, bit) = (base / 64, base % 64);
        block.signs[word] |= u64::from(_mm256_movemask_ps(_mm256_castsi256_ps(v)) as u32) << bit;
        for plane in 0..cutoff {
            let shifted = _mm256_sll_epi32(v, _mm_cvtsi32_si128((31 - plane) as i32));
            let bits = _mm256_movemask_ps(_mm256_castsi256_ps(shifted)) as u32;
            block.planes[plane][word] |= u64::from(bits) << bit;
        }
        chunk += 1;
    }
    for plane in cutoff..usize::from(MAX_PRECISION) {
        block.planes[plane] = block.signs;
    }
}

/// The wide plane-pair loop shared by the portable and `popcnt` entry points:
/// the exact schedule of the narrow block's `product_core`, with each plane
/// pair evaluated as four AND + popcount word operations.
#[inline(always)]
fn wide_product_core(
    w: WeightPlanes<'_>,
    a: &WideBitplaneBlock,
    pw: usize,
    pa: usize,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    let pa_msb = pa - 1;
    let mut or_register = 0i64;
    for wb in 0..pw {
        // An elided all-zero weight plane contributes zero to every
        // accumulator (including the negated weight-MSB plane: -0 = 0), so
        // skipping it preserves bit-exactness at any precision pair.
        let Some(wp) = w.plane(wb) else { continue };
        let mut acc1 = 0i64;
        for (ab, ap) in a.planes[..pa].iter().enumerate() {
            let count = (wp[0] & ap[0]).count_ones()
                + (wp[1] & ap[1]).count_ones()
                + (wp[2] & ap[2]).count_ones()
                + (wp[3] & ap[3]).count_ones();
            acc1 += i64::from(count) << ab;
        }
        if activations_signed {
            let ap = &a.planes[pa_msb];
            let count = (wp[0] & ap[0]).count_ones()
                + (wp[1] & ap[1]).count_ones()
                + (wp[2] & ap[2]).count_ones()
                + (wp[3] & ap[3]).count_ones();
            acc1 -= i64::from(count) << (pa_msb + 1);
        }
        if weights_signed && wb == pw - 1 {
            acc1 = -acc1;
        }
        or_register += acc1 << wb;
    }
    or_register
}

/// [`wide_product_core`] compiled with the `popcnt` instruction enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn wide_product_popcnt(
    w: WeightPlanes<'_>,
    a: &WideBitplaneBlock,
    pw: usize,
    pa: usize,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    wide_product_core(w, a, pw, pa, weights_signed, activations_signed)
}

/// Sums the four `u64` lanes of an AVX2 register.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn hsum_epi64(v: std::arch::x86_64::__m256i) -> i64 {
    use std::arch::x86_64::*;
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256::<1>(v);
    let sum = _mm_add_epi64(lo, hi);
    _mm_cvtsi128_si64(_mm_add_epi64(sum, _mm_unpackhi_epi64(sum, sum)))
}

/// AVX2 kernel: one 256-bit AND per plane pair, `vpshufb` nibble-lookup
/// popcount, and `_mm256_sad_epu8` byte folding. The four per-lane sums are
/// shift-accumulated vector-wide across activation planes *and* weight bits,
/// so a whole product pays only a handful of horizontal reductions at the
/// end (one per MSB-negation class).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn wide_product_avx2(
    w: WeightPlanes<'_>,
    a: &WideBitplaneBlock,
    pw: usize,
    pa: usize,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    use std::arch::x86_64::*;
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low_mask = _mm256_set1_epi8(0x0f);
    let zero = _mm256_setzero_si256();
    // Nibble-lookup popcount of `wp & ap` as per-byte counts (each ≤ 8). The
    // weight plane is pre-split into nibble halves once per weight bit
    // (`wp_lo` has high nibbles zeroed, so `wp_lo & ap` *is* the AND's low
    // nibbles), leaving one AND + shift + AND + two lookups per pair.
    macro_rules! pair_counts {
        ($wp_lo:expr, $wp_hi:expr, $ap:expr) => {{
            let ap = _mm256_loadu_si256($ap.as_ptr().cast());
            let lo = _mm256_and_si256($wp_lo, ap);
            let hi = _mm256_and_si256($wp_hi, _mm256_srli_epi32::<4>(ap));
            _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi))
        }};
    }
    let mut shifts = [_mm_setzero_si128(); MAX_PRECISION as usize];
    for (bit, shift) in shifts.iter_mut().enumerate() {
        *shift = _mm_cvtsi32_si128(bit as i32);
    }
    let pa_msb = pa - 1;
    // Everything accumulates in u64 vector lanes until one horizontal
    // reduction per accumulator at the very end; the weight-MSB plane (which
    // two's complement subtracts) and the activation-MSB corrections keep
    // their own accumulators so the negations apply after the reduction. The
    // bounds are comfortable: a lane's per-weight-bit sum is at most
    // 4 groups × 960 ≪ 2^13, shifted by ≤ 15 and summed over ≤ 16 weight
    // bits — under 2^42.
    let mut body = zero;
    let mut body_msb = zero;
    let mut wmsb = zero;
    let mut wmsb_msb = zero;
    let w_last = if weights_signed { pw - 1 } else { pw };
    for wb in 0..pw {
        // Elided all-zero weight planes contribute nothing to any
        // accumulator, so they are skipped before the load.
        let Some(plane) = w.plane(wb) else { continue };
        let wp = _mm256_loadu_si256(plane.as_ptr().cast());
        let wp_lo = _mm256_and_si256(wp, low_mask);
        let wp_hi = _mm256_and_si256(_mm256_srli_epi32::<4>(wp), low_mask);
        let mut acc = zero;
        let mut ab = 0usize;
        // Four activation planes share one `sad`: their byte counts combine
        // as c0 + 2·c1 + 4·c2 + 8·c3 (≤ 120, well inside a byte), so the
        // shift-accumulate collapses to one fold per four planes.
        while ab + 3 < pa {
            let c0 = pair_counts!(wp_lo, wp_hi, a.planes[ab]);
            let c1 = pair_counts!(wp_lo, wp_hi, a.planes[ab + 1]);
            let c2 = pair_counts!(wp_lo, wp_hi, a.planes[ab + 2]);
            let c3 = pair_counts!(wp_lo, wp_hi, a.planes[ab + 3]);
            let t = _mm256_add_epi8(_mm256_add_epi8(c3, c3), c2);
            let t = _mm256_add_epi8(_mm256_add_epi8(t, t), c1);
            let t = _mm256_add_epi8(_mm256_add_epi8(t, t), c0);
            let sums = _mm256_sad_epu8(t, zero);
            acc = _mm256_add_epi64(acc, _mm256_sll_epi64(sums, shifts[ab]));
            ab += 4;
        }
        while ab < pa {
            let sums = _mm256_sad_epu8(pair_counts!(wp_lo, wp_hi, a.planes[ab]), zero);
            acc = _mm256_add_epi64(acc, _mm256_sll_epi64(sums, shifts[ab]));
            ab += 1;
        }
        let acc = _mm256_sll_epi64(acc, shifts[wb]);
        if wb < w_last {
            body = _mm256_add_epi64(body, acc);
        } else {
            wmsb = _mm256_add_epi64(wmsb, acc);
        }
        if activations_signed {
            // The MSB activation plane is subtracted, not added: remove it
            // twice, exactly as the scalar cores do (recomputed here so the
            // hot loop stays branch-free).
            let msb = _mm256_sll_epi64(
                _mm256_sad_epu8(pair_counts!(wp_lo, wp_hi, a.planes[pa_msb]), zero),
                shifts[wb],
            );
            if wb < w_last {
                body_msb = _mm256_add_epi64(body_msb, msb);
            } else {
                wmsb_msb = _mm256_add_epi64(wmsb_msb, msb);
            }
        }
    }
    let mut positive = hsum_epi64(body);
    let mut negated = hsum_epi64(wmsb);
    if activations_signed {
        positive -= hsum_epi64(body_msb) << (pa_msb + 1);
        negated -= hsum_epi64(wmsb_msb) << (pa_msb + 1);
    }
    positive - negated
}

/// Broadcasts a 256-bit weight plane into both halves of a zmm register, so
/// one 512-bit AND pairs it against two adjacent activation planes at once.
/// (`_mm512_inserti64x4` needs only `avx512f`, unlike `_mm512_broadcast_i64x4`
/// which pulls in `avx512dq`.)
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn broadcast_plane_512(plane: &[u64; WIDE_WORDS]) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    let wp = _mm256_loadu_si256(plane.as_ptr().cast());
    _mm512_inserti64x4(_mm512_castsi256_si512(wp), wp, 1)
}

/// Loads activation planes `ab` and `ab + 1` with one 512-bit read. The
/// `planes` array is contiguous (`[[u64; 4]; 16]`), so adjacent planes are
/// adjacent in memory; the caller guarantees `ab + 1 < MAX_PRECISION`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn load_plane_pair_512(block: &WideBitplaneBlock, ab: usize) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    debug_assert!(ab + 1 < usize::from(MAX_PRECISION));
    _mm512_loadu_si512(
        block
            .planes
            .as_ptr()
            .cast::<u64>()
            .add(ab * WIDE_WORDS)
            .cast(),
    )
}

/// Loads activation plane `ab` into the low half of a zmm register, upper
/// half zeroed (odd-`pa` tails and the MSB correction plane).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn load_plane_single_512(
    block: &WideBitplaneBlock,
    ab: usize,
) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    _mm512_maskz_loadu_epi64(
        0x0f,
        block
            .planes
            .as_ptr()
            .cast::<u64>()
            .add(ab * WIDE_WORDS)
            .cast(),
    )
}

/// Per-pair shift vector for [`_mm512_sllv_epi64`]: lanes 0–3 shift by `ab`
/// (the first plane of the pair), lanes 4–7 by `ab + 1`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[inline]
unsafe fn pair_shifts_512(ab: usize) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    let lo = ab as i64;
    _mm512_setr_epi64(lo, lo, lo, lo, lo + 1, lo + 1, lo + 1, lo + 1)
}

/// AVX-512 `vpshufb` kernel (`avx512f` + `avx512bw`): the AVX2 nibble-lookup
/// popcount at double width. Each 512-bit load covers two adjacent activation
/// planes; two loads (four planes) combine their byte counts as `c01 + 4·c23`
/// (≤ 40 per byte) before one `_mm512_sad_epu8`, and `_mm512_sllv_epi64`
/// applies each half's activation-plane shift so the accumulator structure —
/// `body` / `wmsb` plus the two activation-MSB correctors — matches
/// [`wide_product_avx2`] exactly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn wide_product_avx512(
    w: WeightPlanes<'_>,
    a: &WideBitplaneBlock,
    pw: usize,
    pa: usize,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    use std::arch::x86_64::*;
    #[rustfmt::skip]
    let lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    ));
    let low_mask = _mm512_set1_epi8(0x0f);
    let zero = _mm512_setzero_si512();
    // Byte-wise popcount of `wp & ap`, both nibble halves (same scheme as the
    // AVX2 kernel: `wp_lo` has high nibbles zeroed, so `wp_lo & ap` is the
    // AND's low nibbles).
    macro_rules! pair_counts {
        ($wp_lo:expr, $wp_hi:expr, $ap:expr) => {{
            let ap = $ap;
            let lo = _mm512_and_si512($wp_lo, ap);
            let hi = _mm512_and_si512($wp_hi, _mm512_srli_epi32::<4>(ap));
            _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo), _mm512_shuffle_epi8(lut, hi))
        }};
    }
    let mut wb_shifts = [_mm_setzero_si128(); MAX_PRECISION as usize];
    for (bit, shift) in wb_shifts.iter_mut().enumerate() {
        *shift = _mm_cvtsi32_si128(bit as i32);
    }
    let pa_msb = pa - 1;
    // Same overflow headroom argument as the AVX2 kernel: a sad lane sums
    // eight bytes of ≤ 40 (< 2^9), shifted by ≤ 15 and summed over ≤ 16
    // weight bits shifted by ≤ 15 — comfortably inside i64.
    let mut body = zero;
    let mut body_msb = zero;
    let mut wmsb = zero;
    let mut wmsb_msb = zero;
    let w_last = if weights_signed { pw - 1 } else { pw };
    for wb in 0..pw {
        // Elided all-zero weight planes are skipped before the broadcast.
        let Some(plane) = w.plane(wb) else { continue };
        let wz = broadcast_plane_512(plane);
        let wp_lo = _mm512_and_si512(wz, low_mask);
        let wp_hi = _mm512_and_si512(_mm512_srli_epi32::<4>(wz), low_mask);
        let mut acc = zero;
        let mut ab = 0usize;
        while ab + 3 < pa {
            let c01 = pair_counts!(wp_lo, wp_hi, load_plane_pair_512(a, ab));
            let c23 = pair_counts!(wp_lo, wp_hi, load_plane_pair_512(a, ab + 2));
            // c01 + 4·c23: half 0 carries planes ab and ab+2, half 1 carries
            // ab+1 and ab+3, each +2 plane folded in at byte level.
            let c23x2 = _mm512_add_epi8(c23, c23);
            let t = _mm512_add_epi8(c01, _mm512_add_epi8(c23x2, c23x2));
            let sums = _mm512_sad_epu8(t, zero);
            acc = _mm512_add_epi64(acc, _mm512_sllv_epi64(sums, pair_shifts_512(ab)));
            ab += 4;
        }
        while ab < pa {
            let (ap, step) = if ab + 1 < pa {
                (load_plane_pair_512(a, ab), 2)
            } else {
                (load_plane_single_512(a, ab), 1)
            };
            let sums = _mm512_sad_epu8(pair_counts!(wp_lo, wp_hi, ap), zero);
            acc = _mm512_add_epi64(acc, _mm512_sllv_epi64(sums, pair_shifts_512(ab)));
            ab += step;
        }
        let acc = _mm512_sll_epi64(acc, wb_shifts[wb]);
        if wb < w_last {
            body = _mm512_add_epi64(body, acc);
        } else {
            wmsb = _mm512_add_epi64(wmsb, acc);
        }
        if activations_signed {
            let msb = _mm512_sll_epi64(
                _mm512_sad_epu8(
                    pair_counts!(wp_lo, wp_hi, load_plane_single_512(a, pa_msb)),
                    zero,
                ),
                wb_shifts[wb],
            );
            if wb < w_last {
                body_msb = _mm512_add_epi64(body_msb, msb);
            } else {
                wmsb_msb = _mm512_add_epi64(wmsb_msb, msb);
            }
        }
    }
    let mut positive = _mm512_reduce_add_epi64(body);
    let mut negated = _mm512_reduce_add_epi64(wmsb);
    if activations_signed {
        positive -= _mm512_reduce_add_epi64(body_msb) << (pa_msb + 1);
        negated -= _mm512_reduce_add_epi64(wmsb_msb) << (pa_msb + 1);
    }
    positive - negated
}

/// AVX-512 `vpopcntdq` kernel: `_mm512_popcnt_epi64` counts each 64-bit lane
/// of the AND directly — no nibble lookup, no byte folding. Two activation
/// planes per load, per-half plane shifts via `_mm512_sllv_epi64`, and the
/// same four accumulators as the other vector kernels. Kept as a separate
/// function (not a const-generic switch) so `avx512vpopcntdq` codegen never
/// reaches parts that only detect `avx512f`/`avx512bw`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn wide_product_avx512_vpopcnt(
    w: WeightPlanes<'_>,
    a: &WideBitplaneBlock,
    pw: usize,
    pa: usize,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    use std::arch::x86_64::*;
    let zero = _mm512_setzero_si512();
    let mut wb_shifts = [_mm_setzero_si128(); MAX_PRECISION as usize];
    for (bit, shift) in wb_shifts.iter_mut().enumerate() {
        *shift = _mm_cvtsi32_si128(bit as i32);
    }
    let pa_msb = pa - 1;
    let mut body = zero;
    let mut body_msb = zero;
    let mut wmsb = zero;
    let mut wmsb_msb = zero;
    let w_last = if weights_signed { pw - 1 } else { pw };
    for wb in 0..pw {
        // Elided all-zero weight planes are skipped before the broadcast.
        let Some(plane) = w.plane(wb) else { continue };
        let wz = broadcast_plane_512(plane);
        let mut acc = zero;
        let mut ab = 0usize;
        while ab < pa {
            let (ap, step) = if ab + 1 < pa {
                (load_plane_pair_512(a, ab), 2)
            } else {
                (load_plane_single_512(a, ab), 1)
            };
            let counts = _mm512_popcnt_epi64(_mm512_and_si512(wz, ap));
            acc = _mm512_add_epi64(acc, _mm512_sllv_epi64(counts, pair_shifts_512(ab)));
            ab += step;
        }
        let acc = _mm512_sll_epi64(acc, wb_shifts[wb]);
        if wb < w_last {
            body = _mm512_add_epi64(body, acc);
        } else {
            wmsb = _mm512_add_epi64(wmsb, acc);
        }
        if activations_signed {
            let counts =
                _mm512_popcnt_epi64(_mm512_and_si512(wz, load_plane_single_512(a, pa_msb)));
            let msb = _mm512_sll_epi64(counts, wb_shifts[wb]);
            if wb < w_last {
                body_msb = _mm512_add_epi64(body_msb, msb);
            } else {
                wmsb_msb = _mm512_add_epi64(wmsb_msb, msb);
            }
        }
    }
    let mut positive = _mm512_reduce_add_epi64(body);
    let mut negated = _mm512_reduce_add_epi64(wmsb);
    if activations_signed {
        positive -= _mm512_reduce_add_epi64(body_msb) << (pa_msb + 1);
        negated -= _mm512_reduce_add_epi64(wmsb_msb) << (pa_msb + 1);
    }
    positive - negated
}

/// The kernel tiers [`wide_inner_product`] dispatches across, slowest to
/// fastest. All tiers compute bit-identical results; the fastest detected one
/// is selected once per process ([`active_kernel_tier`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelTier {
    /// The plain Rust plane-pair loop; always available.
    Portable,
    /// [`Portable`](Self::Portable) compiled with scalar `popcnt` enabled.
    Popcnt,
    /// 256-bit `vpshufb` nibble-lookup popcount.
    Avx2,
    /// 512-bit `vpshufb` nibble-lookup popcount (`avx512f` + `avx512bw`).
    Avx512,
    /// 512-bit `vpopcntdq` per-lane popcount (`avx512f` + `avx512vpopcntdq`).
    Avx512Vpopcnt,
}

/// Every tier, slowest to fastest (the order dispatch prefers, reversed).
pub const KERNEL_TIERS: [KernelTier; 5] = [
    KernelTier::Portable,
    KernelTier::Popcnt,
    KernelTier::Avx2,
    KernelTier::Avx512,
    KernelTier::Avx512Vpopcnt,
];

impl KernelTier {
    /// Stable lower-case name (used in bench JSON and logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Portable => "portable",
            KernelTier::Popcnt => "popcnt",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
            KernelTier::Avx512Vpopcnt => "avx512-vpopcnt",
        }
    }

    /// Whether the running CPU supports this tier.
    pub fn detected(self) -> bool {
        match self {
            KernelTier::Portable => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Popcnt => std::arch::is_x86_feature_detected!("popcnt"),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512Vpopcnt => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// The tier [`wide_inner_product`] uses on this machine: the fastest detected
/// one, chosen once per process.
pub fn active_kernel_tier() -> KernelTier {
    static TIER: std::sync::OnceLock<KernelTier> = std::sync::OnceLock::new();
    *TIER.get_or_init(|| {
        KERNEL_TIERS
            .into_iter()
            .rev()
            .find(|tier| tier.detected())
            .unwrap_or(KernelTier::Portable)
    })
}

/// Runtime-detected CPU features relevant to the wide kernels, for bench
/// provenance reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct CpuFeatures {
    pub popcnt: bool,
    pub avx2: bool,
    pub avx512f: bool,
    pub avx512bw: bool,
    pub avx512vpopcntdq: bool,
}

/// Detects the wide-kernel CPU features on the running machine (all `false`
/// off x86-64).
pub fn cpu_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            popcnt: std::arch::is_x86_feature_detected!("popcnt"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
            avx512f: std::arch::is_x86_feature_detected!("avx512f"),
            avx512bw: std::arch::is_x86_feature_detected!("avx512bw"),
            avx512vpopcntdq: std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            popcnt: false,
            avx2: false,
            avx512f: false,
            avx512bw: false,
            avx512vpopcntdq: false,
        }
    }
}

/// Computes the inner product of two wide blocks exactly the way
/// [`super::sip::serial_inner_product`] does — the same weight-bit outer /
/// activation-bit inner schedule, the same MSB negations — with each plane
/// pair evaluated 256 lanes at a time. Dispatches once per process to the
/// fastest detected [`KernelTier`] — AVX-512 (`vpopcntdq` or `vpshufb`),
/// AVX2, the `popcnt`-enabled scalar kernel, or the portable loop; all
/// tiers are bit-identical.
///
/// The blocks may have different lane counts: missing lanes pack as zero
/// planes and contribute nothing.
pub fn wide_inner_product(
    weights: &WideBitplaneBlock,
    activations: &WideBitplaneBlock,
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    dispatch_product(
        WeightPlanes::Dense(weights),
        activations,
        pw,
        pa,
        weights_signed,
        activations_signed,
    )
}

/// [`wide_inner_product`] with the weight operand in compressed form: the
/// kernels read the stored planes in place (no re-densifying) and skip
/// elided all-zero planes in the weight-bit loop. Bit-identical to the dense
/// path on every kernel tier at any precision pair and signedness.
pub fn compressed_inner_product(
    weights: &CompressedWideBlock,
    activations: &WideBitplaneBlock,
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    dispatch_product(
        WeightPlanes::Compressed(weights),
        activations,
        pw,
        pa,
        weights_signed,
        activations_signed,
    )
}

/// Dispatches one inner product to the fastest detected kernel tier.
fn dispatch_product(
    weights: WeightPlanes<'_>,
    activations: &WideBitplaneBlock,
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    let (pw, pa) = (usize::from(pw.bits()), usize::from(pa.bits()));
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY (each arm): `active_kernel_tier` only selects tiers whose
        // features were detected on this CPU.
        match active_kernel_tier() {
            KernelTier::Avx512Vpopcnt => {
                return unsafe {
                    wide_product_avx512_vpopcnt(
                        weights,
                        activations,
                        pw,
                        pa,
                        weights_signed,
                        activations_signed,
                    )
                };
            }
            KernelTier::Avx512 => {
                return unsafe {
                    wide_product_avx512(
                        weights,
                        activations,
                        pw,
                        pa,
                        weights_signed,
                        activations_signed,
                    )
                };
            }
            KernelTier::Avx2 => {
                return unsafe {
                    wide_product_avx2(
                        weights,
                        activations,
                        pw,
                        pa,
                        weights_signed,
                        activations_signed,
                    )
                };
            }
            KernelTier::Popcnt => {
                return unsafe {
                    wide_product_popcnt(
                        weights,
                        activations,
                        pw,
                        pa,
                        weights_signed,
                        activations_signed,
                    )
                };
            }
            KernelTier::Portable => {}
        }
    }
    wide_product_core(
        weights,
        activations,
        pw,
        pa,
        weights_signed,
        activations_signed,
    )
}

/// Convenience wrapper: packs both slices and takes their
/// [`wide_inner_product`]. Use the block form to amortise packing when an
/// operand is reused.
///
/// # Panics
///
/// Panics if the slices have different lengths or more than 256 lanes.
pub fn wide_inner_product_slices(
    weights: &[i32],
    activations: &[i32],
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    assert_eq!(
        weights.len(),
        activations.len(),
        "weights and activations must pair up lane by lane"
    );
    wide_inner_product(
        &WideBitplaneBlock::pack(weights),
        &WideBitplaneBlock::pack(activations),
        pw,
        pa,
        weights_signed,
        activations_signed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loom::packed::BitplaneBlock;
    use crate::loom::sip::{reference_inner_product, serial_inner_product};
    use loom_model::fixed::{required_precision, required_unsigned_precision};

    fn ragged_values(n: usize) -> Vec<i32> {
        (0..n).map(|i| (i as i32 * 977) % 30000 - 15000).collect()
    }

    #[test]
    fn pack_roundtrips_across_word_boundaries() {
        for lanes in [0, 1, 63, 64, 65, 127, 128, 200, 255, 256] {
            let values = ragged_values(lanes);
            let block = WideBitplaneBlock::pack(&values);
            assert_eq!(block.lanes(), lanes);
            assert_eq!(block.unpack(), values, "{lanes} lanes");
        }
    }

    #[test]
    #[should_panic(expected = "at most 256 lanes")]
    fn pack_rejects_more_than_256_lanes() {
        WideBitplaneBlock::pack(&[0; 257]);
    }

    #[test]
    fn scalar_pack_matches_dispatched_pack() {
        for lanes in [1, 7, 64, 100, 256] {
            let values = ragged_values(lanes);
            let dispatched = WideBitplaneBlock::pack(&values);
            let mut scalar = WideBitplaneBlock::EMPTY;
            scalar.lanes = values.len();
            pack_scalar(&mut scalar, &values);
            assert_eq!(dispatched, scalar, "{lanes} lanes");
        }
    }

    #[test]
    fn wide_planes_match_narrow_blocks() {
        let values = ragged_values(256);
        let wide = WideBitplaneBlock::pack(&values);
        for word in 0..WIDE_WORDS {
            let narrow = BitplaneBlock::pack(&values[word * 64..(word + 1) * 64]);
            for bit in 0..MAX_PRECISION {
                assert_eq!(wide.plane_words(bit)[word], narrow.plane(bit), "bit {bit}");
            }
            assert_eq!(wide.sign_words()[word], narrow.sign_mask());
        }
    }

    #[test]
    fn wide_product_matches_serial_and_reference_on_ragged_lanes() {
        for lanes in [1, 16, 63, 64, 65, 130, 256] {
            let weights: Vec<i32> = (0..lanes).map(|i| (i as i32 % 255) - 127).collect();
            let activations: Vec<i32> = (0..lanes).map(|i| (i as i32 * 7) % 256).collect();
            let pw = required_precision(&weights);
            let pa = required_unsigned_precision(&activations);
            let wide = wide_inner_product_slices(&weights, &activations, pw, pa, true, false);
            assert_eq!(
                wide,
                serial_inner_product(&weights, &activations, pw, pa, true, false),
                "{lanes} lanes"
            );
            assert_eq!(wide, reference_inner_product(&weights, &activations));
        }
    }

    #[test]
    fn kernel_tiers_agree_where_detected() {
        let weights = ragged_values(256);
        let activations: Vec<i32> = ragged_values(256).iter().map(|v| v / 3).collect();
        let w = WideBitplaneBlock::pack(&weights);
        let a = WideBitplaneBlock::pack(&activations);
        let (pw, pa) = (16usize, 16usize);
        let wd = WeightPlanes::Dense(&w);
        let portable = wide_product_core(wd, &a, pw, pa, true, true);
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("popcnt") {
                // SAFETY: feature detected above.
                assert_eq!(portable, unsafe {
                    wide_product_popcnt(wd, &a, pw, pa, true, true)
                });
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature detected above.
                assert_eq!(portable, unsafe {
                    wide_product_avx2(wd, &a, pw, pa, true, true)
                });
            }
            if KernelTier::Avx512.detected() {
                // SAFETY: tier features detected above.
                assert_eq!(portable, unsafe {
                    wide_product_avx512(wd, &a, pw, pa, true, true)
                });
            }
            if KernelTier::Avx512Vpopcnt.detected() {
                // SAFETY: tier features detected above.
                assert_eq!(portable, unsafe {
                    wide_product_avx512_vpopcnt(wd, &a, pw, pa, true, true)
                });
            }
        }
        assert_eq!(portable, reference_inner_product(&weights, &activations));
    }

    #[test]
    fn avx512_tiers_match_portable_across_precisions_and_signedness() {
        // Sweeps every (pw, pa) pair so both the plane-pair remainder (odd
        // pa) and the four-plane fast path of the AVX-512 kernels are hit,
        // under all four signedness combinations.
        #[cfg(target_arch = "x86_64")]
        for lanes in [1, 63, 130, 256] {
            let weights = ragged_values(lanes);
            let activations: Vec<i32> = ragged_values(lanes).iter().map(|v| v / 5).collect();
            let w = WideBitplaneBlock::pack(&weights);
            let a = WideBitplaneBlock::pack(&activations);
            for pw in 1..=16usize {
                for pa in 1..=16usize {
                    for (ws, as_) in [(true, true), (true, false), (false, true), (false, false)] {
                        let wd = WeightPlanes::Dense(&w);
                        let portable = wide_product_core(wd, &a, pw, pa, ws, as_);
                        if KernelTier::Avx512.detected() {
                            // SAFETY: tier features detected above.
                            let got = unsafe { wide_product_avx512(wd, &a, pw, pa, ws, as_) };
                            assert_eq!(portable, got, "avx512 {lanes} lanes pw={pw} pa={pa}");
                        }
                        if KernelTier::Avx512Vpopcnt.detected() {
                            // SAFETY: tier features detected above.
                            let got =
                                unsafe { wide_product_avx512_vpopcnt(wd, &a, pw, pa, ws, as_) };
                            assert_eq!(portable, got, "vpopcnt {lanes} lanes pw={pw} pa={pa}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn active_tier_is_detected_and_fastest() {
        let active = active_kernel_tier();
        assert!(active.detected());
        for tier in KERNEL_TIERS {
            if tier > active {
                assert!(
                    !tier.detected(),
                    "{} beats active {}",
                    tier.name(),
                    active.name()
                );
            }
        }
        // The tier names are stable identifiers for the bench JSON.
        let names: Vec<_> = KERNEL_TIERS.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            ["portable", "popcnt", "avx2", "avx512", "avx512-vpopcnt"]
        );
        let features = cpu_features();
        // The portable tier never depends on features; vector tiers imply
        // their feature bits.
        assert!(KernelTier::Portable.detected());
        assert_eq!(KernelTier::Avx2.detected(), features.avx2);
        assert_eq!(
            KernelTier::Avx512.detected(),
            features.avx512f && features.avx512bw
        );
        assert_eq!(
            KernelTier::Avx512Vpopcnt.detected(),
            features.avx512f && features.avx512vpopcntdq
        );
    }

    #[test]
    fn mismatched_lane_counts_treat_missing_lanes_as_zero() {
        let weights = WideBitplaneBlock::pack(&ragged_values(200));
        let activations = WideBitplaneBlock::pack(&ragged_values(70));
        let expected = reference_inner_product(&ragged_values(200)[..70], &ragged_values(70));
        assert_eq!(
            wide_inner_product(
                &weights,
                &activations,
                Precision::FULL,
                Precision::FULL,
                true,
                true
            ),
            expected
        );
    }

    #[test]
    fn detected_precision_matches_vec_detectors() {
        for lanes in [1, 5, 64, 77, 256] {
            let values = ragged_values(lanes);
            let block = WideBitplaneBlock::pack(&values);
            assert_eq!(block.detected_precision(true), required_precision(&values));
            let magnitudes: Vec<i32> = values.iter().map(|v| v.abs() & 0x7fff).collect();
            let block = WideBitplaneBlock::pack(&magnitudes);
            assert_eq!(
                block.detected_precision(false),
                required_unsigned_precision(&magnitudes)
            );
        }
    }

    #[test]
    fn zero_blocks_are_flagged() {
        assert!(WideBitplaneBlock::pack(&[0; 100]).is_zero());
        assert!(WideBitplaneBlock::EMPTY.is_zero());
        assert!(!WideBitplaneBlock::pack(&[0, 0, 1]).is_zero());
        assert!(!WideBitplaneBlock::pack(&[-1]).is_zero());
    }

    #[test]
    fn compressed_block_round_trips_exactly() {
        for lanes in [0, 1, 63, 64, 65, 130, 255, 256] {
            let values = ragged_values(lanes);
            let dense = WideBitplaneBlock::pack(&values);
            let compressed = CompressedWideBlock::compress(&dense);
            assert_eq!(compressed.decompress(), dense, "{lanes} lanes");
            assert_eq!(compressed.lanes(), lanes);
            assert_eq!(compressed.is_zero(), dense.is_zero());
            for signed in [true, false] {
                assert_eq!(
                    compressed.detected_precision(signed),
                    dense.detected_precision(signed),
                    "{lanes} lanes signed={signed}"
                );
            }
        }
    }

    #[test]
    fn compressed_block_elides_adversarial_planes() {
        // All-even weights: plane 0 is all zeros and must be elided.
        let evens: Vec<i32> = (0..256).map(|i| (i % 40) * 2 - 38).collect();
        let dense = WideBitplaneBlock::pack(&evens);
        let c = CompressedWideBlock::compress(&dense);
        assert_eq!(c.plane(0), None);
        assert_eq!(c.decompress(), dense);
        // All -1: every plane is pure sign extension — nothing is stored.
        let dense = WideBitplaneBlock::pack(&[-1; 256]);
        let c = CompressedWideBlock::compress(&dense);
        assert_eq!(c.planes().stored_planes().len(), 0);
        assert_eq!(c.decompress(), dense);
        // All zero: nothing stored, block flagged zero.
        let c = CompressedWideBlock::compress(&WideBitplaneBlock::pack(&[0; 100]));
        assert!(c.is_zero());
        assert_eq!(c.planes().stored_planes().len(), 0);
    }

    #[test]
    fn compressed_product_matches_dense_across_tiers_and_precisions() {
        // The compressed weight path must be bit-identical to the dense path
        // on every kernel, at every (pw, pa) pair (so both the elided-plane
        // skip and the sign-extension resolution are exercised below, at, and
        // above the detected width), under all four signedness combinations.
        for lanes in [1, 63, 130, 256] {
            let weights = ragged_values(lanes);
            let activations: Vec<i32> = ragged_values(lanes).iter().map(|v| v / 5).collect();
            let w = WideBitplaneBlock::pack(&weights);
            let c = CompressedWideBlock::compress(&w);
            let a = WideBitplaneBlock::pack(&activations);
            for pw in 1..=16usize {
                for pa in 1..=16usize {
                    for (ws, as_) in [(true, true), (true, false), (false, true), (false, false)] {
                        let dense = wide_product_core(WeightPlanes::Dense(&w), &a, pw, pa, ws, as_);
                        let compressed = WeightPlanes::Compressed(&c);
                        assert_eq!(
                            dense,
                            wide_product_core(compressed, &a, pw, pa, ws, as_),
                            "portable {lanes} lanes pw={pw} pa={pa}"
                        );
                        #[cfg(target_arch = "x86_64")]
                        {
                            if std::arch::is_x86_feature_detected!("popcnt") {
                                // SAFETY: feature detected above.
                                let got =
                                    unsafe { wide_product_popcnt(compressed, &a, pw, pa, ws, as_) };
                                assert_eq!(dense, got, "popcnt {lanes} lanes pw={pw} pa={pa}");
                            }
                            if std::arch::is_x86_feature_detected!("avx2") {
                                // SAFETY: feature detected above.
                                let got =
                                    unsafe { wide_product_avx2(compressed, &a, pw, pa, ws, as_) };
                                assert_eq!(dense, got, "avx2 {lanes} lanes pw={pw} pa={pa}");
                            }
                            if KernelTier::Avx512.detected() {
                                // SAFETY: tier features detected above.
                                let got =
                                    unsafe { wide_product_avx512(compressed, &a, pw, pa, ws, as_) };
                                assert_eq!(dense, got, "avx512 {lanes} lanes pw={pw} pa={pa}");
                            }
                            if KernelTier::Avx512Vpopcnt.detected() {
                                // SAFETY: tier features detected above.
                                let got = unsafe {
                                    wide_product_avx512_vpopcnt(compressed, &a, pw, pa, ws, as_)
                                };
                                assert_eq!(dense, got, "vpopcnt {lanes} lanes pw={pw} pa={pa}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn compressed_inner_product_matches_dispatched_dense() {
        let weights = ragged_values(256);
        let activations: Vec<i32> = ragged_values(256).iter().map(|v| v / 3).collect();
        let w = WideBitplaneBlock::pack(&weights);
        let c = CompressedWideBlock::compress(&w);
        let a = WideBitplaneBlock::pack(&activations);
        let pw = required_precision(&weights);
        let pa = required_precision(&activations);
        assert_eq!(
            compressed_inner_product(&c, &a, pw, pa, true, true),
            wide_inner_product(&w, &a, pw, pa, true, true),
        );
        assert_eq!(
            compressed_inner_product(&c, &a, pw, pa, true, true),
            reference_inner_product(&weights, &activations),
        );
    }

    #[test]
    fn magnitude_words_fold_like_the_narrow_detector() {
        let values = vec![3, -100, 0, 17, -1];
        let wide = WideBitplaneBlock::pack(&values);
        let narrow = BitplaneBlock::pack(&values);
        for bit in 0..MAX_PRECISION {
            assert_eq!(wide.magnitude_words(bit)[0], narrow.magnitude_plane(bit));
        }
    }
}
