//! Scoped-thread worker queue for the functional engine, mirroring the
//! sweep runner's pattern (`loom_core::sweep::SweepRunner::parallel_map`):
//! workers pull job indices from a shared atomic counter and write results
//! into per-job slots, so the output order — and therefore every merged
//! result — is deterministic regardless of thread count or scheduling.
//!
//! [`ordered_map_with`] additionally gives every worker a private scratch
//! state built once per worker (the pack arenas of the wide datapath), so a
//! worker's jobs reuse the same buffers without any cross-thread sharing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..jobs)` across `threads` scoped workers and returns the results
/// in job order. With one thread (or at most one job) the jobs run inline, in
/// order — the serial and parallel paths are the same code.
pub(crate) fn ordered_map<R, F>(threads: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    ordered_map_with(threads, jobs, || (), |(), i| f(i))
}

/// [`ordered_map`] with per-worker scratch state: every worker calls `init`
/// once and threads the resulting state mutably through each of its jobs.
/// Results are still returned in job order; the state never influences which
/// job lands on which worker, so determinism is unaffected.
pub(crate) fn ordered_map_with<S, R, I, F>(threads: usize, jobs: usize, init: I, f: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    if threads <= 1 || jobs <= 1 {
        let mut state = init();
        return (0..jobs).map(|i| f(&mut state, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let result = f(&mut state, i);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_is_order_preserving_and_thread_invariant() {
        let serial = ordered_map(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(ordered_map(threads, 40, |i| i * i), serial);
        }
        assert_eq!(serial, (0..40).map(|i| i * i).collect::<Vec<_>>());
        assert!(ordered_map(4, 0, |i| i).is_empty());
    }

    #[test]
    fn ordered_map_with_reuses_worker_state_deterministically() {
        // The scratch buffer grows per worker, but results only depend on the
        // job index — identical at every thread count.
        let run = |threads| {
            ordered_map_with(threads, 25, Vec::<usize>::new, |scratch, i| {
                scratch.push(i);
                i + scratch.capacity().min(1) * 100
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "{threads} threads");
        }
    }
}
