//! Scoped-thread worker queue for the functional engine, mirroring the
//! sweep runner's pattern (`loom_core::sweep::SweepRunner::parallel_map`):
//! workers pull job indices from a shared atomic counter and write results
//! into per-job slots, so the output order — and therefore every merged
//! result — is deterministic regardless of thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..jobs)` across `threads` scoped workers and returns the results
/// in job order. With one thread (or at most one job) the jobs run inline, in
/// order — the serial and parallel paths are the same code.
pub(crate) fn ordered_map<R, F>(threads: usize, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job slot filled by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_is_order_preserving_and_thread_invariant() {
        let serial = ordered_map(1, 40, |i| i * i);
        for threads in [2, 4, 8] {
            assert_eq!(ordered_map(threads, 40, |i| i * i), serial);
        }
        assert_eq!(serial, (0..40).map(|i| i * i).collect::<Vec<_>>());
        assert!(ordered_map(4, 0, |i| i).is_empty());
    }
}
