//! A functional (value-producing) Loom engine.
//!
//! The analytic cycle models in [`crate::loom::schedule`] answer "how long
//! does it take"; this module answers "does the bit-serial machine actually
//! compute the right numbers". It maps convolutional and fully-connected
//! layers onto a grid of [`Sip`](crate::loom::sip)-equivalent units exactly as
//! §3.2 describes — filters along rows, windows (CVL) or output slices (FCL)
//! along columns, 16 weights per SIP — executes them bit-serially, and returns
//! both the computed outputs and the cycles spent, with optional dynamic
//! per-group activation precision detection.
//!
//! The inner products are evaluated by a selectable [`SipKernel`]: the packed
//! AND+popcount datapath of [`crate::loom::packed`] by default, or the
//! didactic one-bit-at-a-time loop of [`crate::loom::sip`]. Both are
//! bit-identical; window patches and weight chunks are transposed into
//! [`BitplaneBlock`]s once per tile and reused across every filter either way.
//!
//! Outputs are checked against the golden model from `loom-model`; cycles are
//! checked against the analytic schedules.

use crate::config::LoomGeometry;
use crate::loom::packed::{packed_inner_product, BitplaneBlock, MagnitudeOr};
use crate::loom::parallel;
use crate::loom::sip::serial_inner_product;
use loom_model::fixed::Precision;
use loom_model::im2col::{window_patch, WindowPatch};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

/// Which software implementation of the SIP kernel the engine evaluates inner
/// products with. Both are bit-exact; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SipKernel {
    /// One bit × one lane at a time, exactly as
    /// [`serial_inner_product`] walks Figure 3 — didactic and cycle-faithful,
    /// but orders of magnitude slower.
    BitSerial,
    /// Word-wide AND + popcount over packed bit planes
    /// ([`packed_inner_product`]) — bit-identical to the serial kernel by
    /// construction, and the default.
    #[default]
    Packed,
}

/// Result of running a layer through the functional engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalRun {
    /// Output accumulators in the same layout as the golden model
    /// (filter-major for convolutions, output index order for FCLs).
    pub outputs: Vec<i64>,
    /// Cycles the bit-serial execution took.
    pub cycles: u64,
    /// Number of activation groups whose precision was reduced below the
    /// nominal activation precision by dynamic detection.
    pub reduced_groups: u64,
}

/// The functional Loom engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalLoom {
    geometry: LoomGeometry,
    /// Whether per-group activation precisions are detected at runtime.
    pub dynamic_precision: bool,
    /// Which SIP kernel evaluates the inner products.
    pub kernel: SipKernel,
    /// Worker threads convolutional window groups are fanned across.
    threads: usize,
}

impl FunctionalLoom {
    /// Creates an engine with the given geometry, dynamic precision detection
    /// enabled (the paper's default), the packed SIP kernel, and one worker
    /// thread.
    pub fn new(geometry: LoomGeometry) -> Self {
        FunctionalLoom {
            geometry,
            dynamic_precision: true,
            kernel: SipKernel::default(),
            threads: 1,
        }
    }

    /// Fans each convolution's window groups across `threads` scoped workers
    /// (clamped to at least 1). Results are bit-identical at any thread
    /// count: window groups write disjoint output ranges and the cycle and
    /// reduced-group counters are merged in group order. Fully-connected
    /// layers stay serial — the batched network engine parallelises across
    /// batch items instead, which covers FCL-heavy networks.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads convolutional window groups are fanned across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Disables runtime precision detection (profile precisions only).
    pub fn without_dynamic_precision(mut self) -> Self {
        self.dynamic_precision = false;
        self
    }

    /// Selects the SIP kernel (the legacy bit-serial loop or the packed
    /// AND+popcount datapath). Results are identical either way; the
    /// functional benchmark and CI use this to cross-check the two.
    pub fn with_kernel(mut self, kernel: SipKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The engine geometry.
    pub fn geometry(&self) -> LoomGeometry {
        self.geometry
    }

    /// Runs a convolutional layer bit-serially.
    ///
    /// `pa`/`pw` are the layer's profile precisions; activations are treated as
    /// signed two's-complement (the engine's negation block handles both
    /// operand signs, and post-ReLU data simply never exercises the negative
    /// range).
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not match the spec, or if the geometry's
    /// `sip_lanes` exceeds [`crate::loom::packed::MAX_LANES`] (the packed
    /// datapath holds a SIP's lanes in one plane word; the real design uses
    /// 16).
    pub fn run_conv(
        &self,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
        pa: Precision,
        pw: Precision,
    ) -> FunctionalRun {
        assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
        assert_eq!(
            weights.shape(),
            spec.weight_shape(),
            "weight shape mismatch"
        );
        let cols = self.geometry.window_columns;
        let rows = self.geometry.filter_rows;
        let lanes = self.geometry.sip_lanes;
        let b = u64::from(self.geometry.act_bits_per_cycle);

        let out_w = spec.out_width();
        let windows = spec.windows();
        // Post-ReLU activations are non-negative and processed as unsigned
        // magnitudes; the signed path (two's-complement MSB negation) is used
        // whenever the input actually contains negative values.
        let activations_signed = input.as_slice().iter().any(|&v| v < 0);
        let group_in = spec.in_channels / spec.groups;
        let group_out = spec.filters / spec.groups;
        let wpf = spec.weights_per_filter();
        let chunks = wpf.div_ceil(lanes);

        let packed_kernel = self.kernel == SipKernel::Packed;
        // The precision detector reads packed activation planes even on the
        // bit-serial kernel, so both kernels detect identically.
        let packed_detection = self.dynamic_precision && spec.groups == 1;

        // Transpose every filter's weight chunks into bit planes once for the
        // whole layer; the blocks are reused across every window group. (The
        // filter slice and each per-group patch both have `wpf` values, so the
        // chunk grid tiles them identically.) The bit-serial kernel reads the
        // raw slices instead and skips the transpose.
        let packed_filters: Vec<Vec<BitplaneBlock>> = if packed_kernel {
            (0..spec.filters)
                .map(|k| {
                    let filter = weights.filter(k);
                    (0..chunks)
                        .map(|chunk| {
                            let base = chunk * lanes;
                            let count = lanes.min(wpf - base);
                            BitplaneBlock::pack(&filter[base..base + count])
                        })
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };

        // Window groups along the columns, filter groups along the rows. Each
        // group is an independent job: it owns a disjoint slice of the output
        // windows, so the groups fan across the worker pool and merge into
        // the final layout in group order — bit-identical at any thread
        // count.
        let ctx = ConvContext {
            engine: self,
            spec,
            input,
            weights,
            pa,
            pw,
            activations_signed,
            cols,
            rows,
            lanes,
            b,
            out_w,
            windows,
            group_in,
            group_out,
            wpf,
            chunks,
            packed_kernel,
            packed_detection,
            packed_filters,
        };
        let group_count = windows.div_ceil(cols);
        let groups =
            parallel::ordered_map(self.threads, group_count, |g| ctx.window_group(g * cols));

        let mut outputs = vec![0i64; spec.filters * windows];
        let mut cycles = 0u64;
        let mut reduced_groups = 0u64;
        for group in groups {
            cycles += group.cycles;
            reduced_groups += group.reduced_groups;
            for k in 0..spec.filters {
                let dst = k * windows + group.window_base;
                outputs[dst..dst + group.window_count].copy_from_slice(
                    &group.outputs[k * group.window_count..][..group.window_count],
                );
            }
        }
        FunctionalRun {
            outputs,
            cycles,
            reduced_groups,
        }
    }

    /// Runs a fully-connected layer bit-serially. Every SIP is assigned one
    /// output activation; with fewer than `rows × columns` outputs the engine
    /// cascades, slicing each output's inputs across multiple SIPs on the same
    /// row and reducing the partial sums at the end (§3.2 "Processing Layers
    /// with Few Outputs").
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the spec, or if the geometry's
    /// `sip_lanes` exceeds [`crate::loom::packed::MAX_LANES`].
    pub fn run_fc(
        &self,
        spec: &FcSpec,
        input: &[i32],
        weights: &[i32],
        pw: Precision,
    ) -> FunctionalRun {
        assert_eq!(input.len(), spec.in_features, "input length mismatch");
        assert_eq!(
            weights.len(),
            spec.in_features * spec.out_features,
            "weight length mismatch"
        );
        let lanes = self.geometry.sip_lanes;
        let b = u64::from(self.geometry.act_bits_per_cycle);
        let concurrent = self.geometry.concurrent_fc_outputs();
        let act_cycles_per_weight_bit = (lanes as u64).div_ceil(b);

        // Cascading: slice each output over `slices` SIPs when outputs are few.
        let slices = if spec.out_features < concurrent {
            (concurrent / spec.out_features)
                .min(self.geometry.window_columns)
                .max(1)
        } else {
            1
        };
        let chunks = spec.in_features.div_ceil(lanes);
        let chunks_per_slice = chunks.div_ceil(slices);
        let output_groups = (spec.out_features * slices).div_ceil(concurrent) as u64;

        // Transpose the input activation chunks once; every output row's inner
        // product reuses the same packed planes. The bit-serial kernel reads
        // the raw slices instead.
        let packed_input: Vec<BitplaneBlock> = if self.kernel == SipKernel::Packed {
            (0..chunks)
                .map(|chunk| {
                    let base = chunk * lanes;
                    let count = lanes.min(spec.in_features - base);
                    BitplaneBlock::pack(&input[base..base + count])
                })
                .collect()
        } else {
            Vec::new()
        };

        let mut outputs = vec![0i64; spec.out_features];
        for (k, out) in outputs.iter_mut().enumerate() {
            let row = &weights[k * spec.in_features..(k + 1) * spec.in_features];
            for chunk in 0..chunks {
                let base = chunk * lanes;
                let count = lanes.min(spec.in_features - base);
                *out += match self.kernel {
                    SipKernel::Packed => packed_inner_product(
                        &BitplaneBlock::pack(&row[base..base + count]),
                        &packed_input[chunk],
                        pw,
                        Precision::FULL,
                        true,
                        true,
                    ),
                    SipKernel::BitSerial => serial_inner_product(
                        &row[base..base + count],
                        &input[base..base + count],
                        pw,
                        Precision::FULL,
                        true,
                        true,
                    ),
                };
            }
        }

        // Steady-state cycles plus the pipeline fill (staggered weight loading
        // across columns) and the cascade reduction cycles.
        let steady =
            output_groups * chunks_per_slice as u64 * pw.bits_u64() * act_cycles_per_weight_bit;
        let fill = (self.geometry.window_columns as u64 - 1) * act_cycles_per_weight_bit;
        let reduction = slices as u64 - 1;
        FunctionalRun {
            outputs,
            cycles: steady + fill + reduction,
            reduced_groups: 0,
        }
    }
}

/// Everything a convolutional window-group job needs, shared read-only
/// across the worker pool.
struct ConvContext<'a> {
    engine: &'a FunctionalLoom,
    spec: &'a ConvSpec,
    input: &'a Tensor3,
    weights: &'a Tensor4,
    pa: Precision,
    pw: Precision,
    activations_signed: bool,
    cols: usize,
    rows: usize,
    lanes: usize,
    b: u64,
    out_w: usize,
    windows: usize,
    group_in: usize,
    group_out: usize,
    wpf: usize,
    chunks: usize,
    packed_kernel: bool,
    packed_detection: bool,
    /// Every filter's weight chunks, transposed once for the whole layer.
    packed_filters: Vec<Vec<BitplaneBlock>>,
}

/// One window group's finished partial results: the outputs for its disjoint
/// window range (filter-major, `filters x window_count`) plus its cycle and
/// reduced-group contributions.
struct WindowGroupRun {
    window_base: usize,
    window_count: usize,
    outputs: Vec<i64>,
    cycles: u64,
    reduced_groups: u64,
}

impl ConvContext<'_> {
    /// Runs the window group starting at `window_base` — the body of the
    /// engine's original serial loop, writing into a group-local output
    /// buffer instead of the layer-wide one.
    fn window_group(&self, window_base: usize) -> WindowGroupRun {
        let spec = self.spec;
        let window_count = self.cols.min(self.windows - window_base);
        let mut outputs = vec![0i64; spec.filters * window_count];
        let mut cycles = 0u64;
        let mut reduced_groups = 0u64;

        // Extract each window's patch once per (window, filter group) —
        // every filter of a group reads the same channel slice, so the
        // extraction must not sit in the filter loop.
        let patches: Vec<Vec<WindowPatch>> = (0..window_count)
            .map(|i| {
                let w = window_base + i;
                let (oy, ox) = (w / self.out_w, w % self.out_w);
                (0..spec.groups)
                    .map(|g| {
                        window_patch(spec, self.input, oy, ox, g * self.group_in, self.group_in)
                    })
                    .collect()
            })
            .collect();

        for chunk in 0..self.chunks {
            let lane_base = chunk * self.lanes;
            let lane_count = self.lanes.min(self.wpf - lane_base);
            // Transpose this chunk of every (window, group) patch once;
            // the blocks are reused by every filter of the group and by
            // the precision detector below. Skipped when neither needs
            // them (bit-serial kernel with detection off or grouped).
            let packed_acts: Vec<Vec<BitplaneBlock>> =
                if self.packed_kernel || self.packed_detection {
                    patches
                        .iter()
                        .map(|per_group| {
                            per_group
                                .iter()
                                .map(|patch| {
                                    BitplaneBlock::pack(&patch[lane_base..lane_base + lane_count])
                                })
                                .collect()
                        })
                        .collect()
                } else {
                    Vec::new()
                };

            // Dynamic precision: detect over all activations this group of
            // SIP columns consumes concurrently (up to cols x 16 values),
            // as an OR fold over the already-packed planes. Grouped
            // convolutions interleave channel ranges per filter group, so
            // detection is skipped for them (a conservative
            // simplification; AlexNet's grouped layers still benefit from
            // their static profile precisions).
            let effective_pa = if self.packed_detection {
                let mut fold = MagnitudeOr::new();
                for per_group in &packed_acts {
                    fold.absorb(&per_group[0]);
                }
                let detected = fold
                    .detected_precision(self.activations_signed)
                    .min(self.pa);
                if detected < self.pa {
                    reduced_groups += 1;
                }
                detected
            } else {
                self.pa
            };

            // The block occupies the SIP array for Pw x ceil(Pa / b) cycles
            // regardless of how many filter rows exist, but covers at most
            // `rows` filters at a time.
            let filter_groups = spec.filters.div_ceil(self.rows) as u64;
            cycles += filter_groups
                * self.pw.bits_u64()
                * (u64::from(effective_pa.bits())).div_ceil(self.b);

            // Compute the partial products this block contributes.
            for k in 0..spec.filters {
                let group = k / self.group_out;
                for col in 0..window_count {
                    let dot = match self.engine.kernel {
                        SipKernel::Packed => packed_inner_product(
                            &self.packed_filters[k][chunk],
                            &packed_acts[col][group],
                            self.pw,
                            effective_pa,
                            true,
                            self.activations_signed,
                        ),
                        SipKernel::BitSerial => serial_inner_product(
                            &self.weights.filter(k)[lane_base..lane_base + lane_count],
                            &patches[col][group][lane_base..lane_base + lane_count],
                            self.pw,
                            effective_pa,
                            true,
                            self.activations_signed,
                        ),
                    };
                    outputs[k * window_count + col] += dot;
                }
            }
        }
        WindowGroupRun {
            window_base,
            window_count,
            outputs,
            cycles,
            reduced_groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EquivalentConfig, LoomVariant};
    use loom_model::reference::{conv_forward, fc_forward};
    use loom_model::synthetic::{synthetic_activations, synthetic_weights, ValueDistribution};
    use loom_model::tensor::Shape4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_geometry() -> LoomGeometry {
        // A scaled-down grid keeps the functional tests fast while exercising
        // the same tiling logic: 8 filter rows × 4 window columns × 4 lanes.
        LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 4,
            act_bits_per_cycle: 1,
        }
    }

    #[test]
    fn conv_outputs_match_reference() {
        let spec = ConvSpec {
            in_channels: 3,
            in_height: 6,
            in_width: 6,
            filters: 10,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let pa = Precision::new(7).unwrap();
        let pw = Precision::new(6).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let engine = FunctionalLoom::new(small_geometry());
        let run = engine.run_conv(&spec, &input, &weights, pa, pw);
        assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
        assert!(run.cycles > 0);
    }

    #[test]
    fn conv_dynamic_precision_is_lossless_and_faster() {
        let spec = ConvSpec::simple(4, 8, 8, 6, 3);
        let mut rng = StdRng::seed_from_u64(33);
        let pa = Precision::new(9).unwrap();
        let pw = Precision::new(7).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let geometry = small_geometry();
        let with_dynamic = FunctionalLoom::new(geometry).run_conv(&spec, &input, &weights, pa, pw);
        let without = FunctionalLoom::new(geometry)
            .without_dynamic_precision()
            .run_conv(&spec, &input, &weights, pa, pw);
        // Same outputs (lossless), fewer or equal cycles, some groups reduced.
        assert_eq!(with_dynamic.outputs, without.outputs);
        assert!(with_dynamic.cycles <= without.cycles);
        assert!(with_dynamic.reduced_groups > 0);
        assert_eq!(without.reduced_groups, 0);
    }

    #[test]
    fn grouped_conv_outputs_match_reference() {
        let spec = ConvSpec {
            in_channels: 4,
            in_height: 5,
            in_width: 5,
            filters: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let mut rng = StdRng::seed_from_u64(55);
        let pa = Precision::new(6).unwrap();
        let pw = Precision::new(5).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            Shape4::new(6, 2, 3, 3),
            synthetic_weights(&mut rng, 6 * 2 * 9, pw, ValueDistribution::weights()),
        )
        .unwrap();
        let engine = FunctionalLoom::new(small_geometry()).without_dynamic_precision();
        let run = engine.run_conv(&spec, &input, &weights, pa, pw);
        assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
    }

    #[test]
    fn fc_outputs_match_reference() {
        let spec = FcSpec::new(40, 12);
        let mut rng = StdRng::seed_from_u64(77);
        let pw = Precision::new(8).unwrap();
        let input = synthetic_activations(
            &mut rng,
            40,
            Precision::new(10).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(&mut rng, 40 * 12, pw, ValueDistribution::weights());
        let engine = FunctionalLoom::new(small_geometry());
        let run = engine.run_fc(&spec, &input, &weights, pw);
        assert_eq!(run.outputs, fc_forward(&spec, &input, &weights));
        assert!(run.cycles > 0);
    }

    #[test]
    fn fc_cycles_shrink_with_weight_precision() {
        let spec = FcSpec::new(64, 64);
        let mut rng = StdRng::seed_from_u64(78);
        let input = synthetic_activations(
            &mut rng,
            64,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(
            &mut rng,
            64 * 64,
            Precision::new(4).unwrap(),
            ValueDistribution::weights(),
        );
        let engine = FunctionalLoom::new(small_geometry());
        let narrow = engine.run_fc(&spec, &input, &weights, Precision::new(4).unwrap());
        let wide = engine.run_fc(&spec, &input, &weights, Precision::FULL);
        assert_eq!(narrow.outputs, wide.outputs);
        assert!(narrow.cycles < wide.cycles);
    }

    #[test]
    fn full_scale_geometry_paper_quantum() {
        // With the real 128-row × 16-column grid, a 256-input × 2048-output FC
        // slice at Pw = 16 takes 16 × 16 = 256 cycles of steady state per input
        // chunk — matching DPNN as §3.2 requires.
        let geometry = EquivalentConfig::BASELINE_128.loom(LoomVariant::Lm1b);
        let engine = FunctionalLoom::new(geometry);
        let spec = FcSpec::new(16, 2048);
        let input = vec![1i32; 16];
        let weights = vec![1i32; 16 * 2048];
        let run = engine.run_fc(&spec, &input, &weights, Precision::FULL);
        let fill = (16 - 1) * 16;
        assert_eq!(run.cycles, 256 + fill);
        assert!(run.outputs.iter().all(|&o| o == 16));
    }
}
