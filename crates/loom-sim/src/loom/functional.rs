//! A functional (value-producing) Loom engine.
//!
//! The analytic cycle models in [`crate::loom::schedule`] answer "how long
//! does it take"; this module answers "does the bit-serial machine actually
//! compute the right numbers". It maps convolutional and fully-connected
//! layers onto a grid of [`Sip`](crate::loom::sip)-equivalent units exactly as
//! §3.2 describes — filters along rows, windows (CVL) or output slices (FCL)
//! along columns, 16 weights per SIP — executes them bit-serially, and returns
//! both the computed outputs and the cycles spent, with optional dynamic
//! per-group activation precision detection.
//!
//! The inner products are evaluated by a selectable [`SipKernel`]:
//!
//! * [`SipKernel::Wide`] (the default) — the 256-lane `[u64; 4]` datapath of
//!   [`crate::loom::wide`], with runtime AVX2 dispatch. Window patches are
//!   extracted into per-worker pack arenas (scratch reused across a worker's
//!   jobs), packed into wide blocks once per window, and evaluated
//!   filters-outer / plane-inner so one filter's weight planes stay hot while
//!   a window group's activation planes stream from L1.
//! * [`SipKernel::Packed`] — the original 64-lane single-word AND+popcount
//!   datapath of [`crate::loom::packed`], kept as an intermediate
//!   cross-check.
//! * [`SipKernel::BitSerial`] — the didactic one-bit-at-a-time loop of
//!   [`crate::loom::sip`].
//!
//! All three are bit-identical — same outputs, same cycle counts, same
//! dynamically reduced groups; the functional benchmark and CI cross-check
//! them on every run. Cycle accounting always follows the architectural
//! per-SIP-group detector (window-group × `sip_lanes` chunk), regardless of
//! how the arithmetic is vectorised.
//!
//! Outputs are checked against the golden model from `loom-model`; cycles are
//! checked against the analytic schedules.

use crate::config::LoomGeometry;
use crate::loom::cost::{self, ConvPlan};
use crate::loom::packed::{packed_inner_product, BitplaneBlock, MagnitudeOr};
use crate::loom::sip::serial_inner_product;
use crate::loom::wide::{
    compressed_inner_product, wide_inner_product, CompressedWideBlock, WideBitplaneBlock,
    WIDE_LANES, WIDE_WORDS,
};
use crate::pool;
use loom_model::fixed::{Precision, MAX_PRECISION};
use loom_model::im2col::{window_patch, window_patch_into, WindowPatch};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

/// Which software implementation of the SIP kernel the engine evaluates inner
/// products with. All are bit-exact; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SipKernel {
    /// One bit × one lane at a time, exactly as
    /// [`serial_inner_product`] walks Figure 3 — didactic and cycle-faithful,
    /// but orders of magnitude slower.
    BitSerial,
    /// Word-wide AND + popcount over 64-lane packed bit planes
    /// ([`packed_inner_product`]) — bit-identical to the serial kernel by
    /// construction; retained as a cross-check tier.
    Packed,
    /// 256-lane `[u64; 4]` planes with runtime-dispatched AVX2 AND+popcount
    /// ([`wide_inner_product`]) — bit-identical to both, and the default.
    #[default]
    Wide,
}

/// Result of running a layer through the functional engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalRun {
    /// Output accumulators in the same layout as the golden model
    /// (filter-major for convolutions, output index order for FCLs).
    pub outputs: Vec<i64>,
    /// Cycles the bit-serial execution took.
    pub cycles: u64,
    /// Number of activation groups whose precision was reduced below the
    /// nominal activation precision by dynamic detection.
    pub reduced_groups: u64,
}

/// The functional Loom engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalLoom {
    geometry: LoomGeometry,
    /// Whether per-group activation precisions are detected at runtime.
    pub dynamic_precision: bool,
    /// Which SIP kernel evaluates the inner products.
    pub kernel: SipKernel,
    /// Worker threads layer jobs are fanned across.
    threads: usize,
}

impl FunctionalLoom {
    /// Creates an engine with the given geometry, dynamic precision detection
    /// enabled (the paper's default), the wide SIP kernel, and one worker
    /// thread.
    pub fn new(geometry: LoomGeometry) -> Self {
        FunctionalLoom {
            geometry,
            dynamic_precision: true,
            kernel: SipKernel::default(),
            threads: 1,
        }
    }

    /// Fans each layer's jobs across `threads` scoped workers (clamped to at
    /// least 1): convolutional window groups for every kernel, plus
    /// fully-connected output-row groups on the wide kernel. Results are
    /// bit-identical at any thread count: jobs write disjoint output ranges
    /// and the cycle and reduced-group counters are merged in job order.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Worker threads layer jobs are fanned across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Disables runtime precision detection (profile precisions only).
    pub fn without_dynamic_precision(mut self) -> Self {
        self.dynamic_precision = false;
        self
    }

    /// Selects the SIP kernel (the legacy bit-serial loop, the 64-lane packed
    /// datapath, or the wide 256-lane datapath). Results are identical either
    /// way; the functional benchmark and CI use this to cross-check them.
    pub fn with_kernel(mut self, kernel: SipKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The engine geometry.
    pub fn geometry(&self) -> LoomGeometry {
        self.geometry
    }

    /// Runs a convolutional layer bit-serially.
    ///
    /// `pa`/`pw` are the layer's profile precisions; activations are treated as
    /// signed two's-complement (the engine's negation block handles both
    /// operand signs, and post-ReLU data simply never exercises the negative
    /// range).
    ///
    /// # Panics
    ///
    /// Panics if the tensors do not match the spec, or if the geometry's
    /// `sip_lanes` exceeds [`crate::loom::packed::MAX_LANES`] (the packed
    /// datapath holds a SIP's lanes in one plane word; the real design uses
    /// 16).
    pub fn run_conv(
        &self,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
        pa: Precision,
        pw: Precision,
    ) -> FunctionalRun {
        if self.kernel == SipKernel::Wide {
            let filters = crate::loom::store::conv_planes(spec, weights);
            let job = self.wide_conv_job(spec, input, &filters, pa, pw, self.threads);
            let tasks = pool::ordered_map_with(
                self.threads,
                job.task_count(),
                ConvArena::default,
                |arena, t| job.run_task(arena, t),
            );
            return merge_conv_tasks(spec.filters, spec.windows(), tasks);
        }
        self.run_conv_legacy(spec, input, weights, pa, pw)
    }

    /// The original 64-lane / bit-serial engine path, kept verbatim as the
    /// cross-check reference for the wide datapath.
    fn run_conv_legacy(
        &self,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
        pa: Precision,
        pw: Precision,
    ) -> FunctionalRun {
        assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
        assert_eq!(
            weights.shape(),
            spec.weight_shape(),
            "weight shape mismatch"
        );
        let cols = self.geometry.window_columns;
        let rows = self.geometry.filter_rows;
        let lanes = self.geometry.sip_lanes;
        let b = u64::from(self.geometry.act_bits_per_cycle);

        let out_w = spec.out_width();
        let windows = spec.windows();
        // Post-ReLU activations are non-negative and processed as unsigned
        // magnitudes; the signed path (two's-complement MSB negation) is used
        // whenever the input actually contains negative values.
        let activations_signed = input.as_slice().iter().any(|&v| v < 0);
        let group_in = spec.in_channels / spec.groups;
        let group_out = spec.filters / spec.groups;
        let wpf = spec.weights_per_filter();
        let chunks = wpf.div_ceil(lanes);

        let packed_kernel = self.kernel == SipKernel::Packed;
        // The precision detector reads packed activation planes even on the
        // bit-serial kernel, so both kernels detect identically.
        let packed_detection = self.dynamic_precision && spec.groups == 1;

        // Transpose every filter's weight chunks into bit planes once for the
        // whole layer; the blocks are reused across every window group. (The
        // filter slice and each per-group patch both have `wpf` values, so the
        // chunk grid tiles them identically.) The bit-serial kernel reads the
        // raw slices instead and skips the transpose.
        let packed_filters: Vec<Vec<BitplaneBlock>> = if packed_kernel {
            (0..spec.filters)
                .map(|k| {
                    let filter = weights.filter(k);
                    (0..chunks)
                        .map(|chunk| {
                            let base = chunk * lanes;
                            let count = lanes.min(wpf - base);
                            BitplaneBlock::pack(&filter[base..base + count])
                        })
                        .collect()
                })
                .collect()
        } else {
            Vec::new()
        };

        // Window groups along the columns, filter groups along the rows. Each
        // group is an independent job: it owns a disjoint slice of the output
        // windows, so the groups fan across the worker pool and merge into
        // the final layout in group order — bit-identical at any thread
        // count.
        let ctx = ConvContext {
            engine: self,
            spec,
            input,
            weights,
            pa,
            pw,
            activations_signed,
            cols,
            rows,
            lanes,
            b,
            out_w,
            windows,
            group_in,
            group_out,
            wpf,
            chunks,
            packed_kernel,
            packed_detection,
            packed_filters,
        };
        let group_count = windows.div_ceil(cols);
        let groups = pool::ordered_map(self.threads, group_count, |g| ctx.window_group(g * cols));
        merge_conv_tasks(spec.filters, windows, groups)
    }

    /// Runs a fully-connected layer bit-serially. Every SIP is assigned one
    /// output activation; with fewer than `rows × columns` outputs the engine
    /// cascades, slicing each output's inputs across multiple SIPs on the same
    /// row and reducing the partial sums at the end (§3.2 "Processing Layers
    /// with Few Outputs").
    ///
    /// # Panics
    ///
    /// Panics if the slices do not match the spec, or if the geometry's
    /// `sip_lanes` exceeds [`crate::loom::packed::MAX_LANES`].
    pub fn run_fc(
        &self,
        spec: &FcSpec,
        input: &[i32],
        weights: &[i32],
        pw: Precision,
    ) -> FunctionalRun {
        assert_eq!(input.len(), spec.in_features, "input length mismatch");
        assert_eq!(
            weights.len(),
            spec.in_features * spec.out_features,
            "weight length mismatch"
        );
        let cycles = self.fc_cycles(spec, pw);
        if self.kernel == SipKernel::Wide {
            let job = WideFcJob::new(spec, &[input], weights, pw, self.threads, None);
            let rows = pool::ordered_map_with(
                self.threads,
                job.row_group_count(),
                FcArena::default,
                |arena, g| job.run_rows(arena, g),
            );
            let mut outputs = Vec::with_capacity(spec.out_features);
            for chunk in rows {
                outputs.extend(chunk);
            }
            return FunctionalRun {
                outputs,
                cycles,
                reduced_groups: 0,
            };
        }

        let lanes = self.geometry.sip_lanes;
        let chunks = spec.in_features.div_ceil(lanes);

        // Transpose the input activation chunks once; every output row's inner
        // product reuses the same packed planes. The bit-serial kernel reads
        // the raw slices instead.
        let packed_input: Vec<BitplaneBlock> = if self.kernel == SipKernel::Packed {
            (0..chunks)
                .map(|chunk| {
                    let base = chunk * lanes;
                    let count = lanes.min(spec.in_features - base);
                    BitplaneBlock::pack(&input[base..base + count])
                })
                .collect()
        } else {
            Vec::new()
        };

        let mut outputs = vec![0i64; spec.out_features];
        for (k, out) in outputs.iter_mut().enumerate() {
            let row = &weights[k * spec.in_features..(k + 1) * spec.in_features];
            for chunk in 0..chunks {
                let base = chunk * lanes;
                let count = lanes.min(spec.in_features - base);
                *out += match self.kernel {
                    SipKernel::Packed => packed_inner_product(
                        &BitplaneBlock::pack(&row[base..base + count]),
                        &packed_input[chunk],
                        pw,
                        Precision::FULL,
                        true,
                        true,
                    ),
                    _ => serial_inner_product(
                        &row[base..base + count],
                        &input[base..base + count],
                        pw,
                        Precision::FULL,
                        true,
                        true,
                    ),
                };
            }
        }
        FunctionalRun {
            outputs,
            cycles,
            reduced_groups: 0,
        }
    }

    /// Cycles a fully-connected layer occupies the grid for: steady-state
    /// cycles plus the pipeline fill (staggered weight loading across
    /// columns) and the cascade reduction cycles. Identical for every kernel
    /// — the arithmetic vectorisation never changes what the hardware would
    /// spend.
    pub(crate) fn fc_cycles(&self, spec: &FcSpec, pw: Precision) -> u64 {
        let lanes = self.geometry.sip_lanes;
        let b = u64::from(self.geometry.act_bits_per_cycle);
        let concurrent = self.geometry.concurrent_fc_outputs();
        let act_cycles_per_weight_bit = (lanes as u64).div_ceil(b);

        // Cascading: slice each output over `slices` SIPs when outputs are few.
        let slices = if spec.out_features < concurrent {
            (concurrent / spec.out_features)
                .min(self.geometry.window_columns)
                .max(1)
        } else {
            1
        };
        let chunks = spec.in_features.div_ceil(lanes);
        let chunks_per_slice = chunks.div_ceil(slices);
        let output_groups = (spec.out_features * slices).div_ceil(concurrent) as u64;

        let steady =
            output_groups * chunks_per_slice as u64 * pw.bits_u64() * act_cycles_per_weight_bit;
        let fill = (self.geometry.window_columns as u64 - 1) * act_cycles_per_weight_bit;
        let reduction = slices as u64 - 1;
        steady + fill + reduction
    }

    /// Transposes every filter of a convolution into wide bit-plane blocks,
    /// with per-block detected weight precisions and zero flags. Packed once
    /// per layer — and, through the batched network engine, once per *batch*:
    /// every window group, worker thread and batch item reads the same
    /// blocks.
    pub(crate) fn pack_wide_filters(spec: &ConvSpec, weights: &Tensor4) -> WideFilterPlanes {
        assert_eq!(
            weights.shape(),
            spec.weight_shape(),
            "weight shape mismatch"
        );
        let start = std::time::Instant::now();
        let wpf = spec.weights_per_filter();
        let blocks_per_filter = wpf.div_ceil(WIDE_LANES);
        let mut blocks = Vec::with_capacity(spec.filters * blocks_per_filter);
        let mut precisions = Vec::with_capacity(blocks.capacity());
        let mut zero = Vec::with_capacity(blocks.capacity());
        let mut stats = PackStats::default();
        for k in 0..spec.filters {
            let filter = weights.filter(k);
            for b in 0..blocks_per_filter {
                let base = b * WIDE_LANES;
                let count = WIDE_LANES.min(wpf - base);
                let block = WideBitplaneBlock::pack(&filter[base..base + count]);
                precisions.push(block.detected_precision(true));
                zero.push(block.is_zero());
                let compressed = CompressedWideBlock::compress(&block);
                stats.absorb_block(&compressed);
                blocks.push(compressed);
            }
        }
        stats.pack_nanos = start.elapsed().as_nanos() as u64;
        WideFilterPlanes {
            blocks,
            precisions,
            zero,
            blocks_per_filter,
            stats,
        }
    }

    /// Builds the shared, read-only context for one (layer, input) pair on
    /// the wide datapath, with its task decomposition planned by the cost
    /// model for a budget of `units` threads. The returned job exposes
    /// (window-chunk × filter-tile) tasks — the granularity the batched
    /// network engine fans across the worker pool.
    ///
    /// # Panics
    ///
    /// As [`FunctionalLoom::run_conv`].
    pub(crate) fn wide_conv_job<'a>(
        &self,
        spec: &'a ConvSpec,
        input: &'a Tensor3,
        filters: &'a WideFilterPlanes,
        pa: Precision,
        pw: Precision,
        units: usize,
    ) -> WideConvJob<'a> {
        assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
        assert_eq!(
            filters.blocks.len(),
            spec.filters * filters.blocks_per_filter,
            "weight planes do not tile the filters"
        );
        let wpf = spec.weights_per_filter();
        let cols = self.geometry.window_columns;
        let windows = spec.windows();
        let plan = cost::plan_conv(
            units,
            windows.div_ceil(cols),
            spec.filters,
            cost::conv_cost(spec, pa, pw),
        );
        WideConvJob {
            spec,
            input,
            filters,
            pa,
            pw,
            activations_signed: input.as_slice().iter().any(|&v| v < 0),
            detection: self.dynamic_precision && spec.groups == 1,
            cols,
            rows: self.geometry.filter_rows,
            sip_lanes: self.geometry.sip_lanes,
            b: u64::from(self.geometry.act_bits_per_cycle),
            out_w: spec.out_width(),
            windows,
            group_in: spec.in_channels / spec.groups,
            group_out: spec.filters / spec.groups,
            wpf,
            sip_chunks: wpf.div_ceil(self.geometry.sip_lanes),
            wide_blocks: wpf.div_ceil(WIDE_LANES),
            plan,
        }
    }
}

/// Merges per-task partial results into the layer-wide filter-major output
/// layout, accumulating cycles and reduced-group counts in task order
/// (bit-identical at any thread count — tasks cover disjoint
/// `(filter range × window range)` rectangles).
pub(crate) fn merge_conv_tasks(
    filters: usize,
    windows: usize,
    tasks: Vec<ConvTaskRun>,
) -> FunctionalRun {
    let mut outputs = vec![0i64; filters * windows];
    let mut cycles = 0u64;
    let mut reduced_groups = 0u64;
    for task in tasks {
        cycles += task.cycles;
        reduced_groups += task.reduced_groups;
        for f in 0..task.filter_count {
            let dst = (task.filter_base + f) * windows + task.window_base;
            outputs[dst..dst + task.window_count]
                .copy_from_slice(&task.outputs[f * task.window_count..][..task.window_count]);
        }
    }
    FunctionalRun {
        outputs,
        cycles,
        reduced_groups,
    }
}

/// Cost and footprint of packing one weight container into the compressed
/// wide format: wall time spent transposing + compressing, the resident bytes
/// a dense block layout would have needed versus what the compressed blocks
/// actually hold, and the modeled DRAM stream bits both ways. Aggregated
/// across containers by the weight store and the bench reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackStats {
    /// Nanoseconds spent transposing and compressing.
    pub pack_nanos: u64,
    /// Resident bytes of the equivalent dense block layout.
    pub dense_bytes: u64,
    /// Resident bytes of the compressed blocks actually held.
    pub compressed_bytes: u64,
    /// Modeled DRAM stream bits of the dense layout (16 bits per weight).
    pub dense_stream_bits: u64,
    /// Modeled DRAM stream bits of the compressed layout (bitmaps + sign
    /// plane + stored planes).
    pub compressed_stream_bits: u64,
}

impl PackStats {
    /// Compressed-over-dense stream ratio (1.0 when nothing was packed).
    pub fn ratio(&self) -> f64 {
        if self.dense_stream_bits > 0 {
            self.compressed_stream_bits as f64 / self.dense_stream_bits as f64
        } else {
            1.0
        }
    }

    /// Accumulates another container's stats into this one.
    pub fn add(&mut self, other: &PackStats) {
        self.pack_nanos += other.pack_nanos;
        self.dense_bytes += other.dense_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.dense_stream_bits += other.dense_stream_bits;
        self.compressed_stream_bits += other.compressed_stream_bits;
    }

    /// Absorbs one freshly compressed block into the footprint counters.
    fn absorb_block(&mut self, block: &CompressedWideBlock) {
        self.dense_bytes += std::mem::size_of::<WideBitplaneBlock>() as u64;
        self.compressed_bytes += block.resident_bytes() as u64;
        self.dense_stream_bits += block.planes().dense_bits();
        self.compressed_stream_bits += block.planes().compressed_bits();
    }
}

/// A convolution's weights in compressed wide bit-plane form: `filters ×
/// blocks_per_filter` blocks, filter-major, with the per-block detected
/// signed precisions and all-zero flags computed at pack time. The kernels
/// consume the compressed blocks in place; results are bit-identical to the
/// dense layout this replaced.
pub(crate) struct WideFilterPlanes {
    blocks: Vec<CompressedWideBlock>,
    precisions: Vec<Precision>,
    zero: Vec<bool>,
    blocks_per_filter: usize,
    stats: PackStats,
}

impl WideFilterPlanes {
    /// Approximate resident size, for cache observability.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(CompressedWideBlock::resident_bytes)
            .sum::<usize>()
            + self.blocks.len() * (std::mem::size_of::<Precision>() + std::mem::size_of::<bool>())
    }

    /// Pack cost and compression footprint of this container.
    pub(crate) fn stats(&self) -> PackStats {
        self.stats
    }
}

/// Per-worker scratch for the wide convolutional path: the window patch
/// buffer, the packed activation blocks of the current window group, their
/// detected precisions and zero flags, and the magnitude-OR fold the
/// architectural precision detector reads. Built once per worker and reused
/// across all of its window-group jobs — the "pack arena".
#[derive(Default)]
pub(crate) struct ConvArena {
    patch: Vec<i32>,
    acts: Vec<WideBitplaneBlock>,
    act_pa: Vec<Precision>,
    act_zero: Vec<bool>,
    fold: Vec<u64>,
}

/// Everything a wide convolutional task needs, shared read-only across the
/// worker pool (and across batch items — the weight planes are packed once
/// per layer).
pub(crate) struct WideConvJob<'a> {
    spec: &'a ConvSpec,
    input: &'a Tensor3,
    filters: &'a WideFilterPlanes,
    pa: Precision,
    pw: Precision,
    activations_signed: bool,
    detection: bool,
    cols: usize,
    rows: usize,
    sip_lanes: usize,
    b: u64,
    out_w: usize,
    windows: usize,
    group_in: usize,
    group_out: usize,
    wpf: usize,
    sip_chunks: usize,
    wide_blocks: usize,
    /// Cost-model task decomposition (window chunks × filter tiles).
    plan: ConvPlan,
}

impl WideConvJob<'_> {
    /// Number of architectural window groups (`cols` windows each).
    fn group_count(&self) -> usize {
        self.windows.div_ceil(self.cols)
    }

    /// Number of independent pool tasks the cost model planned for this
    /// layer.
    pub(crate) fn task_count(&self) -> usize {
        self.plan.tasks()
    }

    /// The convolution's total window count (for merging).
    pub(crate) fn windows(&self) -> usize {
        self.windows
    }

    /// The convolution's filter count (for merging).
    pub(crate) fn filters(&self) -> usize {
        self.spec.filters
    }

    /// Runs task `task_idx` of the plan: a consecutive range of window
    /// groups × one contiguous filter tile. Each window group is processed
    /// with exactly the serial schedule — patch extraction, packing, the
    /// per-group detection fold and per-`sip_lanes`-chunk cycle accounting —
    /// so any decomposition is bit-identical to the serial engine. Cycles and
    /// reduced-group counts are attributed to filter tile 0 only (they cover
    /// the whole filter dimension already), so totals never depend on the
    /// tiling.
    pub(crate) fn run_task(&self, arena: &mut ConvArena, task_idx: usize) -> ConvTaskRun {
        let tiles = self.plan.filter_tiles;
        let chunk = task_idx / tiles;
        let tile = task_idx % tiles;
        let g0 = chunk * self.plan.groups_per_chunk;
        let g1 = (g0 + self.plan.groups_per_chunk).min(self.group_count());
        let window_base = g0 * self.cols;
        let window_count = (g1 * self.cols).min(self.windows) - window_base;
        let filter_base = self.spec.filters * tile / tiles;
        let filter_count = self.spec.filters * (tile + 1) / tiles - filter_base;
        let account = tile == 0;

        let mut outputs = vec![0i64; filter_count * window_count];
        let mut cycles = 0u64;
        let mut reduced_groups = 0u64;
        for g in g0..g1 {
            let group_window_base = g * self.cols;
            let col_offset = group_window_base - window_base;
            let (c, r) = self.run_group_into(
                arena,
                g,
                filter_base,
                filter_count,
                col_offset,
                window_count,
                &mut outputs,
                account,
            );
            cycles += c;
            reduced_groups += r;
        }
        ConvTaskRun {
            window_base,
            window_count,
            filter_base,
            filter_count,
            outputs,
            cycles,
            reduced_groups,
        }
    }

    /// Runs one architectural window group for a filter tile: extract each
    /// window's patch into the arena, pack it into wide blocks, fold the
    /// magnitude planes for the architectural detector, account cycles per
    /// `sip_lanes` chunk exactly as the serial model does (when `account`),
    /// then evaluate the tile's products filters-outer / plane-inner into
    /// `outputs` at `col_offset`. Returns the group's (cycles,
    /// reduced-group) contribution.
    #[allow(clippy::too_many_arguments)]
    fn run_group_into(
        &self,
        arena: &mut ConvArena,
        group_idx: usize,
        filter_base: usize,
        filter_count: usize,
        col_offset: usize,
        task_window_count: usize,
        outputs: &mut [i64],
        account: bool,
    ) -> (u64, u64) {
        let window_base = group_idx * self.cols;
        let window_count = self.cols.min(self.windows - window_base);
        let bpp = self.wide_blocks;
        let conv_groups = self.spec.groups;
        let fold_words = bpp * WIDE_WORDS;
        let folding = self.detection && account;

        arena
            .acts
            .resize(window_count * conv_groups * bpp, WideBitplaneBlock::EMPTY);
        arena
            .act_pa
            .resize(window_count * conv_groups * bpp, Precision::FULL);
        arena
            .act_zero
            .resize(window_count * conv_groups * bpp, false);
        if folding {
            arena.fold.clear();
            arena
                .fold
                .resize(usize::from(MAX_PRECISION) * fold_words, 0);
        }

        // Pack every (window, conv-group) patch into wide blocks — each
        // window is packed once per (layer, filter tile), into storage the
        // worker reuses across its tasks.
        for col in 0..window_count {
            let w = window_base + col;
            let (oy, ox) = (w / self.out_w, w % self.out_w);
            for g in 0..conv_groups {
                arena.patch.clear();
                window_patch_into(
                    self.spec,
                    self.input,
                    oy,
                    ox,
                    g * self.group_in,
                    self.group_in,
                    &mut arena.patch,
                );
                for blk in 0..bpp {
                    let base = blk * WIDE_LANES;
                    let count = WIDE_LANES.min(self.wpf - base);
                    let idx = (col * conv_groups + g) * bpp + blk;
                    arena.acts[idx].pack_into(&arena.patch[base..base + count]);
                    let block = &arena.acts[idx];
                    arena.act_pa[idx] = block.detected_precision(self.activations_signed);
                    arena.act_zero[idx] = block.is_zero();
                    // The architectural detector ORs the magnitude planes of
                    // everything the SIP columns consume concurrently.
                    if folding && g == 0 {
                        for bit in 0..MAX_PRECISION {
                            let words = block.magnitude_words(bit);
                            let row = usize::from(bit) * fold_words + blk * WIDE_WORDS;
                            for (w, &m) in words.iter().enumerate() {
                                arena.fold[row + w] |= m;
                            }
                        }
                    }
                }
            }
        }

        // Cycle accounting per `sip_lanes` chunk — the block occupies the SIP
        // array for Pw × ceil(Pa_detected / b) cycles regardless of the
        // arithmetic vectorisation, so this is exactly the serial model's
        // count. Grouped convolutions interleave channel ranges per filter
        // group, so detection is skipped for them (a conservative
        // simplification; AlexNet's grouped layers still benefit from their
        // static profile precisions).
        let filter_groups = self.spec.filters.div_ceil(self.rows) as u64;
        let mut cycles = 0u64;
        let mut reduced_groups = 0u64;
        if account {
            for chunk in 0..self.sip_chunks {
                let lane_base = chunk * self.sip_lanes;
                let lane_count = self.sip_lanes.min(self.wpf - lane_base);
                let effective_pa = if self.detection {
                    let detected = detect_fold_range(
                        &arena.fold,
                        fold_words,
                        lane_base,
                        lane_base + lane_count,
                        self.activations_signed,
                    )
                    .min(self.pa);
                    if detected < self.pa {
                        reduced_groups += 1;
                    }
                    detected
                } else {
                    self.pa
                };
                cycles +=
                    filter_groups * self.pw.bits_u64() * effective_pa.bits_u64().div_ceil(self.b);
            }
        }

        // Products, filters-outer: one filter's weight blocks stay in
        // registers/L1 while the group's activation blocks stream. Inner
        // products run at the *detected* per-block precisions — every skipped
        // plane is zero or sign extension, so the narrower schedule is
        // bit-identical (and all-zero blocks are skipped outright).
        for f in 0..filter_count {
            let k = filter_base + f;
            let g = k / self.group_out;
            let wbase = k * bpp;
            for col in 0..window_count {
                let abase = (col * conv_groups + g) * bpp;
                let mut acc = 0i64;
                for blk in 0..bpp {
                    if self.filters.zero[wbase + blk] || arena.act_zero[abase + blk] {
                        continue;
                    }
                    acc += compressed_inner_product(
                        &self.filters.blocks[wbase + blk],
                        &arena.acts[abase + blk],
                        self.filters.precisions[wbase + blk],
                        arena.act_pa[abase + blk],
                        true,
                        self.activations_signed,
                    );
                }
                outputs[f * task_window_count + col_offset + col] = acc;
            }
        }
        (cycles, reduced_groups)
    }
}

/// Returns `true` when any bit of `fold`'s plane `bit` is set in the lane
/// range `[lo, hi)` — lane ranges may straddle word boundaries (the SIP chunk
/// width need not divide 64).
fn fold_range_has_bit(fold: &[u64], fold_words: usize, bit: usize, lo: usize, hi: usize) -> bool {
    let row = &fold[bit * fold_words..(bit + 1) * fold_words];
    let (w0, w1) = (lo / 64, (hi - 1) / 64);
    for (w, &value) in row.iter().enumerate().take(w1 + 1).skip(w0) {
        let mut word = value;
        if w == w0 {
            word &= !0u64 << (lo % 64);
        }
        if w == w1 {
            let top = (hi - 1) % 64;
            if top < 63 {
                word &= (1u64 << (top + 1)) - 1;
            }
        }
        if word != 0 {
            return true;
        }
    }
    false
}

/// The wide image of [`MagnitudeOr::detected_precision`] over a lane range of
/// the fold: the highest non-empty magnitude plane, plus the sign bit for
/// signed operands.
fn detect_fold_range(
    fold: &[u64],
    fold_words: usize,
    lo: usize,
    hi: usize,
    signed: bool,
) -> Precision {
    let highest = (0..usize::from(MAX_PRECISION))
        .rev()
        .find(|&bit| fold_range_has_bit(fold, fold_words, bit, lo, hi));
    match highest {
        None => Precision::saturating(1),
        Some(bit) => Precision::saturating(bit as u8 + if signed { 2 } else { 1 }),
    }
}

/// Per-worker scratch for the wide fully-connected path: one output row's
/// packed weight blocks, reused across every row the worker evaluates.
#[derive(Default)]
pub(crate) struct FcArena {
    blocks: Vec<WideBitplaneBlock>,
    pw: Vec<Precision>,
    zero: Vec<bool>,
}

/// One item's fully-connected input, packed once into wide blocks.
struct FcPackedInput {
    blocks: Vec<WideBitplaneBlock>,
    pa: Vec<Precision>,
    zero: Vec<bool>,
}

/// A fully-connected layer's weight rows in compressed wide bit-plane form,
/// packed once and reused across requests (the serving layer's per-model
/// weight cache). Row-major: row `r`, chunk `c` lives at `r * chunks + c`,
/// mirroring the layout [`WideFcJob::run_rows`] streams through its arena — a
/// job reading these blocks computes bit-identical results to one that packs
/// on the fly.
pub(crate) struct PackedFcRows {
    blocks: Vec<CompressedWideBlock>,
    pw: Vec<Precision>,
    zero: Vec<bool>,
    chunks: usize,
    stats: PackStats,
}

impl PackedFcRows {
    /// Transposes every weight row of `spec` into compressed wide blocks with
    /// per-block detected precisions and zero flags — exactly what the
    /// streaming path computes per row per dispatch, hoisted to pack-once
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if the weight slice does not match the spec.
    pub(crate) fn pack(spec: &FcSpec, weights: &[i32]) -> Self {
        assert_eq!(
            weights.len(),
            spec.in_features * spec.out_features,
            "weight length mismatch"
        );
        let start = std::time::Instant::now();
        let chunks = spec.in_features.div_ceil(WIDE_LANES);
        let total = spec.out_features * chunks;
        let mut blocks = Vec::with_capacity(total);
        let mut pw = Vec::with_capacity(total);
        let mut zero = Vec::with_capacity(total);
        let mut stats = PackStats::default();
        for r in 0..spec.out_features {
            let row = &weights[r * spec.in_features..(r + 1) * spec.in_features];
            for chunk in 0..chunks {
                let base = chunk * WIDE_LANES;
                let count = WIDE_LANES.min(spec.in_features - base);
                let block = WideBitplaneBlock::pack(&row[base..base + count]);
                pw.push(block.detected_precision(true));
                zero.push(block.is_zero());
                let compressed = CompressedWideBlock::compress(&block);
                stats.absorb_block(&compressed);
                blocks.push(compressed);
            }
        }
        stats.pack_nanos = start.elapsed().as_nanos() as u64;
        PackedFcRows {
            blocks,
            pw,
            zero,
            chunks,
            stats,
        }
    }

    /// Approximate resident size, for cache observability.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(CompressedWideBlock::resident_bytes)
            .sum::<usize>()
            + self.blocks.len() * (std::mem::size_of::<Precision>() + std::mem::size_of::<bool>())
    }

    /// Pack cost and compression footprint of this container.
    pub(crate) fn stats(&self) -> PackStats {
        self.stats
    }
}

/// A fully-connected layer over one or more batch items on the wide
/// datapath. Inputs are packed once per item up front; weight rows are packed
/// once per *task* and applied to every item, so a batch shares the entire
/// row transpose. Tasks are disjoint output-row groups — the granularity the
/// network engine fans across its pool.
pub(crate) struct WideFcJob<'a> {
    spec: &'a FcSpec,
    weights: &'a [i32],
    pw: Precision,
    chunks: usize,
    items: Vec<FcPackedInput>,
    /// Pre-transposed weight rows from a per-model cache; when absent, each
    /// task streams its rows through the worker arena as before.
    packed: Option<&'a PackedFcRows>,
    /// Output rows per pool task, chosen by the cost model.
    rows_per_task: usize,
}

impl<'a> WideFcJob<'a> {
    /// Packs every item's input activations into wide blocks, with the
    /// output-rows-per-task granularity planned by the cost model for a
    /// budget of `units` threads. When `packed` carries the layer's
    /// cached row transpose, tasks read it instead of re-packing — results
    /// are bit-identical either way.
    ///
    /// # Panics
    ///
    /// Panics if any input, the weight slice, or the packed cache does not
    /// match the spec.
    pub(crate) fn new(
        spec: &'a FcSpec,
        inputs: &[&[i32]],
        weights: &'a [i32],
        pw: Precision,
        units: usize,
        packed: Option<&'a PackedFcRows>,
    ) -> Self {
        assert_eq!(
            weights.len(),
            spec.in_features * spec.out_features,
            "weight length mismatch"
        );
        let chunks = spec.in_features.div_ceil(WIDE_LANES);
        if let Some(rows) = packed {
            assert_eq!(rows.chunks, chunks, "packed rows chunk mismatch");
            assert_eq!(
                rows.blocks.len(),
                spec.out_features * chunks,
                "packed rows do not tile the layer"
            );
        }
        let items = inputs
            .iter()
            .map(|input| {
                assert_eq!(input.len(), spec.in_features, "input length mismatch");
                let mut blocks = Vec::with_capacity(chunks);
                let mut pa = Vec::with_capacity(chunks);
                let mut zero = Vec::with_capacity(chunks);
                for chunk in 0..chunks {
                    let base = chunk * WIDE_LANES;
                    let count = WIDE_LANES.min(spec.in_features - base);
                    let block = WideBitplaneBlock::pack(&input[base..base + count]);
                    pa.push(block.detected_precision(true));
                    zero.push(block.is_zero());
                    blocks.push(block);
                }
                FcPackedInput { blocks, pa, zero }
            })
            .collect();
        let rows_per_task = cost::fc_rows_per_task(
            units,
            spec.out_features,
            cost::fc_cost(spec, inputs.len(), pw),
        );
        WideFcJob {
            spec,
            weights,
            pw,
            chunks,
            items,
            packed,
            rows_per_task,
        }
    }

    /// Number of batch items the job covers.
    pub(crate) fn items(&self) -> usize {
        self.items.len()
    }

    /// Number of independent output-row tasks.
    pub(crate) fn row_group_count(&self) -> usize {
        self.spec.out_features.div_ceil(self.rows_per_task)
    }

    /// Evaluates output rows `[g * rows_per_task, …)` for every item. The
    /// result is row-major (`rows × items`): `out[(r - r0) * items + item]`.
    pub(crate) fn run_rows(&self, arena: &mut FcArena, g: usize) -> Vec<i64> {
        let r0 = g * self.rows_per_task;
        let r1 = (r0 + self.rows_per_task).min(self.spec.out_features);
        let items = self.items.len();
        let mut out = vec![0i64; (r1 - r0) * items];
        if self.packed.is_none() {
            arena.blocks.resize(self.chunks, WideBitplaneBlock::EMPTY);
            arena.pw.resize(self.chunks, Precision::FULL);
            arena.zero.resize(self.chunks, false);
        }
        for r in r0..r1 {
            // One row's blocks, either streamed into the worker arena (the
            // default) or read from the per-model compressed cache; the
            // cached blocks were produced by the same transpose (compressed
            // losslessly), so both paths feed the kernel identical planes,
            // precisions and zero flags.
            match self.packed {
                Some(rows) => {
                    let base = r * self.chunks;
                    for (item, input) in self.items.iter().enumerate() {
                        let mut acc = 0i64;
                        for chunk in 0..self.chunks {
                            if rows.zero[base + chunk] || input.zero[chunk] {
                                continue;
                            }
                            acc += compressed_inner_product(
                                &rows.blocks[base + chunk],
                                &input.blocks[chunk],
                                rows.pw[base + chunk].min(self.pw),
                                input.pa[chunk],
                                true,
                                true,
                            );
                        }
                        out[(r - r0) * items + item] = acc;
                    }
                }
                None => {
                    let row =
                        &self.weights[r * self.spec.in_features..(r + 1) * self.spec.in_features];
                    for chunk in 0..self.chunks {
                        let base = chunk * WIDE_LANES;
                        let count = WIDE_LANES.min(self.spec.in_features - base);
                        arena.blocks[chunk].pack_into(&row[base..base + count]);
                        arena.pw[chunk] = arena.blocks[chunk].detected_precision(true);
                        arena.zero[chunk] = arena.blocks[chunk].is_zero();
                    }
                    for (item, input) in self.items.iter().enumerate() {
                        let mut acc = 0i64;
                        for chunk in 0..self.chunks {
                            if arena.zero[chunk] || input.zero[chunk] {
                                continue;
                            }
                            acc += wide_inner_product(
                                &arena.blocks[chunk],
                                &input.blocks[chunk],
                                arena.pw[chunk].min(self.pw),
                                input.pa[chunk],
                                true,
                                true,
                            );
                        }
                        out[(r - r0) * items + item] = acc;
                    }
                }
            }
        }
        out
    }
}

/// Everything a legacy (64-lane / bit-serial) convolutional window-group job
/// needs, shared read-only across the worker pool.
struct ConvContext<'a> {
    engine: &'a FunctionalLoom,
    spec: &'a ConvSpec,
    input: &'a Tensor3,
    weights: &'a Tensor4,
    pa: Precision,
    pw: Precision,
    activations_signed: bool,
    cols: usize,
    rows: usize,
    lanes: usize,
    b: u64,
    out_w: usize,
    windows: usize,
    group_in: usize,
    group_out: usize,
    wpf: usize,
    chunks: usize,
    packed_kernel: bool,
    packed_detection: bool,
    /// Every filter's weight chunks, transposed once for the whole layer.
    packed_filters: Vec<Vec<BitplaneBlock>>,
}

/// One conv task's finished partial results: the outputs for its disjoint
/// `(filter range × window range)` rectangle (filter-major, `filter_count ×
/// window_count`) plus its cycle and reduced-group contributions (zero for
/// filter tiles other than 0).
pub(crate) struct ConvTaskRun {
    window_base: usize,
    window_count: usize,
    filter_base: usize,
    filter_count: usize,
    outputs: Vec<i64>,
    cycles: u64,
    reduced_groups: u64,
}

impl ConvContext<'_> {
    /// Runs the window group starting at `window_base` — the body of the
    /// engine's original serial loop, writing into a group-local output
    /// buffer instead of the layer-wide one.
    fn window_group(&self, window_base: usize) -> ConvTaskRun {
        let spec = self.spec;
        let window_count = self.cols.min(self.windows - window_base);
        let mut outputs = vec![0i64; spec.filters * window_count];
        let mut cycles = 0u64;
        let mut reduced_groups = 0u64;

        // Extract each window's patch once per (window, filter group) —
        // every filter of a group reads the same channel slice, so the
        // extraction must not sit in the filter loop.
        let patches: Vec<Vec<WindowPatch>> = (0..window_count)
            .map(|i| {
                let w = window_base + i;
                let (oy, ox) = (w / self.out_w, w % self.out_w);
                (0..spec.groups)
                    .map(|g| {
                        window_patch(spec, self.input, oy, ox, g * self.group_in, self.group_in)
                    })
                    .collect()
            })
            .collect();

        for chunk in 0..self.chunks {
            let lane_base = chunk * self.lanes;
            let lane_count = self.lanes.min(self.wpf - lane_base);
            // Transpose this chunk of every (window, group) patch once;
            // the blocks are reused by every filter of the group and by
            // the precision detector below. Skipped when neither needs
            // them (bit-serial kernel with detection off or grouped).
            let packed_acts: Vec<Vec<BitplaneBlock>> =
                if self.packed_kernel || self.packed_detection {
                    patches
                        .iter()
                        .map(|per_group| {
                            per_group
                                .iter()
                                .map(|patch| {
                                    BitplaneBlock::pack(&patch[lane_base..lane_base + lane_count])
                                })
                                .collect()
                        })
                        .collect()
                } else {
                    Vec::new()
                };

            // Dynamic precision: detect over all activations this group of
            // SIP columns consumes concurrently (up to cols x 16 values),
            // as an OR fold over the already-packed planes. Grouped
            // convolutions interleave channel ranges per filter group, so
            // detection is skipped for them (a conservative
            // simplification; AlexNet's grouped layers still benefit from
            // their static profile precisions).
            let effective_pa = if self.packed_detection {
                let mut fold = MagnitudeOr::new();
                for per_group in &packed_acts {
                    fold.absorb(&per_group[0]);
                }
                let detected = fold
                    .detected_precision(self.activations_signed)
                    .min(self.pa);
                if detected < self.pa {
                    reduced_groups += 1;
                }
                detected
            } else {
                self.pa
            };

            // The block occupies the SIP array for Pw x ceil(Pa / b) cycles
            // regardless of how many filter rows exist, but covers at most
            // `rows` filters at a time.
            let filter_groups = spec.filters.div_ceil(self.rows) as u64;
            cycles += filter_groups
                * self.pw.bits_u64()
                * (u64::from(effective_pa.bits())).div_ceil(self.b);

            // Compute the partial products this block contributes.
            for k in 0..spec.filters {
                let group = k / self.group_out;
                for col in 0..window_count {
                    let dot = match self.engine.kernel {
                        SipKernel::BitSerial => serial_inner_product(
                            &self.weights.filter(k)[lane_base..lane_base + lane_count],
                            &patches[col][group][lane_base..lane_base + lane_count],
                            self.pw,
                            effective_pa,
                            true,
                            self.activations_signed,
                        ),
                        _ => packed_inner_product(
                            &self.packed_filters[k][chunk],
                            &packed_acts[col][group],
                            self.pw,
                            effective_pa,
                            true,
                            self.activations_signed,
                        ),
                    };
                    outputs[k * window_count + col] += dot;
                }
            }
        }
        ConvTaskRun {
            window_base,
            window_count,
            filter_base: 0,
            filter_count: spec.filters,
            outputs,
            cycles,
            reduced_groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EquivalentConfig, LoomVariant};
    use loom_model::reference::{conv_forward, fc_forward};
    use loom_model::synthetic::{synthetic_activations, synthetic_weights, ValueDistribution};
    use loom_model::tensor::Shape4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_geometry() -> LoomGeometry {
        // A scaled-down grid keeps the functional tests fast while exercising
        // the same tiling logic: 8 filter rows × 4 window columns × 4 lanes.
        LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 4,
            act_bits_per_cycle: 1,
        }
    }

    #[test]
    fn conv_outputs_match_reference() {
        let spec = ConvSpec {
            in_channels: 3,
            in_height: 6,
            in_width: 6,
            filters: 10,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let pa = Precision::new(7).unwrap();
        let pw = Precision::new(6).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let engine = FunctionalLoom::new(small_geometry());
        let run = engine.run_conv(&spec, &input, &weights, pa, pw);
        assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
        assert!(run.cycles > 0);
    }

    #[test]
    fn all_three_kernels_produce_identical_runs() {
        let spec = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(3, 7, 7, 6, 3)
        };
        let mut rng = StdRng::seed_from_u64(99);
        let pa = Precision::new(8).unwrap();
        let pw = Precision::new(6).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let engine = FunctionalLoom::new(small_geometry());
        let wide = engine.run_conv(&spec, &input, &weights, pa, pw);
        for kernel in [SipKernel::Packed, SipKernel::BitSerial] {
            let other = engine
                .with_kernel(kernel)
                .run_conv(&spec, &input, &weights, pa, pw);
            assert_eq!(wide, other, "{kernel:?}");
        }
    }

    #[test]
    fn conv_dynamic_precision_is_lossless_and_faster() {
        let spec = ConvSpec::simple(4, 8, 8, 6, 3);
        let mut rng = StdRng::seed_from_u64(33);
        let pa = Precision::new(9).unwrap();
        let pw = Precision::new(7).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let geometry = small_geometry();
        let with_dynamic = FunctionalLoom::new(geometry).run_conv(&spec, &input, &weights, pa, pw);
        let without = FunctionalLoom::new(geometry)
            .without_dynamic_precision()
            .run_conv(&spec, &input, &weights, pa, pw);
        // Same outputs (lossless), fewer or equal cycles, some groups reduced.
        assert_eq!(with_dynamic.outputs, without.outputs);
        assert!(with_dynamic.cycles <= without.cycles);
        assert!(with_dynamic.reduced_groups > 0);
        assert_eq!(without.reduced_groups, 0);
    }

    #[test]
    fn grouped_conv_outputs_match_reference() {
        let spec = ConvSpec {
            in_channels: 4,
            in_height: 5,
            in_width: 5,
            filters: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let mut rng = StdRng::seed_from_u64(55);
        let pa = Precision::new(6).unwrap();
        let pw = Precision::new(5).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            Shape4::new(6, 2, 3, 3),
            synthetic_weights(&mut rng, 6 * 2 * 9, pw, ValueDistribution::weights()),
        )
        .unwrap();
        let engine = FunctionalLoom::new(small_geometry()).without_dynamic_precision();
        let run = engine.run_conv(&spec, &input, &weights, pa, pw);
        assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
    }

    #[test]
    fn fc_outputs_match_reference() {
        let spec = FcSpec::new(40, 12);
        let mut rng = StdRng::seed_from_u64(77);
        let pw = Precision::new(8).unwrap();
        let input = synthetic_activations(
            &mut rng,
            40,
            Precision::new(10).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(&mut rng, 40 * 12, pw, ValueDistribution::weights());
        let engine = FunctionalLoom::new(small_geometry());
        let run = engine.run_fc(&spec, &input, &weights, pw);
        assert_eq!(run.outputs, fc_forward(&spec, &input, &weights));
        assert!(run.cycles > 0);
        // All kernels agree, including on a wide layer spanning several
        // 256-lane chunks.
        for kernel in [SipKernel::Packed, SipKernel::BitSerial] {
            assert_eq!(
                engine
                    .with_kernel(kernel)
                    .run_fc(&spec, &input, &weights, pw),
                run,
                "{kernel:?}"
            );
        }
    }

    #[test]
    fn fc_threads_do_not_change_results() {
        let spec = FcSpec::new(300, 170);
        let mut rng = StdRng::seed_from_u64(123);
        let pw = Precision::new(7).unwrap();
        let input = synthetic_activations(
            &mut rng,
            300,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(&mut rng, 300 * 170, pw, ValueDistribution::weights());
        let serial = FunctionalLoom::new(small_geometry()).run_fc(&spec, &input, &weights, pw);
        assert_eq!(serial.outputs, fc_forward(&spec, &input, &weights));
        for threads in [2, 5] {
            let parallel = FunctionalLoom::new(small_geometry())
                .with_threads(threads)
                .run_fc(&spec, &input, &weights, pw);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn fc_cycles_shrink_with_weight_precision() {
        let spec = FcSpec::new(64, 64);
        let mut rng = StdRng::seed_from_u64(78);
        let input = synthetic_activations(
            &mut rng,
            64,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(
            &mut rng,
            64 * 64,
            Precision::new(4).unwrap(),
            ValueDistribution::weights(),
        );
        let engine = FunctionalLoom::new(small_geometry());
        let narrow = engine.run_fc(&spec, &input, &weights, Precision::new(4).unwrap());
        let wide = engine.run_fc(&spec, &input, &weights, Precision::FULL);
        assert_eq!(narrow.outputs, wide.outputs);
        assert!(narrow.cycles < wide.cycles);
    }

    #[test]
    fn full_scale_geometry_paper_quantum() {
        // With the real 128-row × 16-column grid, a 256-input × 2048-output FC
        // slice at Pw = 16 takes 16 × 16 = 256 cycles of steady state per input
        // chunk — matching DPNN as §3.2 requires.
        let geometry = EquivalentConfig::BASELINE_128.loom(LoomVariant::Lm1b);
        let engine = FunctionalLoom::new(geometry);
        let spec = FcSpec::new(16, 2048);
        let input = vec![1i32; 16];
        let weights = vec![1i32; 16 * 2048];
        let run = engine.run_fc(&spec, &input, &weights, Precision::FULL);
        let fill = (16 - 1) * 16;
        assert_eq!(run.cycles, 256 + fill);
        assert!(run.outputs.iter().all(|&o| o == 16));
    }
}
