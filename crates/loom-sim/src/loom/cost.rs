//! The per-layer cost model that picks task granularity for the pool.
//!
//! A layer's parallel work is estimated as **MACs × effective precision**
//! (`Pa` bits × `Pw` bits — the same product the analytic cycle models scale
//! with), and the estimate chooses how many tasks the layer fans across the
//! [work-stealing pool](crate::pool):
//!
//! * **Small layers** (below [`TASK_GRAIN`]) run as a single task — inline on
//!   the submitting thread for batch-of-1, or one task per batch item — so
//!   pool dispatch overhead never exceeds the work it parallelises.
//! * **Large layers** split into enough tasks to fill the thread budget
//!   (and a few times over, so stealing can balance skew), capped so no task
//!   drops far below the grain.
//!
//! Convolutions split along two axes: consecutive **window-group ranges**
//! first (disjoint output windows, zero redundancy), then **filter tiles**
//! when a layer has too few window groups to fill the budget — the case that
//! makes *batch-of-1 latency* scale. Filter tiles re-pack the same activation
//! windows, so they are only engaged when window groups alone cannot feed the
//! pool, and each tile keeps a healthy filter count. Fully-connected layers
//! split along output rows, with the rows-per-task chosen by the same budget
//! instead of a fixed constant.
//!
//! Granularity never affects results: tasks cover disjoint output ranges,
//! detection folds and cycle accounting stay per window group (filter tile 0
//! accounts for the whole filter dimension), and merging is in task order —
//! so any plan is bit-identical to the serial schedule.

use loom_model::fixed::Precision;
use loom_model::layer::{ConvSpec, FcSpec};

/// Cost-model units (MAC × bit-products) one task should amortise: tasks
/// below this run inline rather than paying pool dispatch. On the wide
/// datapath this is on the order of a few hundred microseconds of work.
pub const TASK_GRAIN: u64 = 1 << 25;

/// Over-decomposition factor: at most this many tasks per thread, so the
/// stealing deques can balance skewed task costs without shredding the work
/// into dispatch overhead.
pub const TASKS_PER_THREAD: usize = 4;

/// Modeled parallel work of a convolution: MACs × `Pa` bits × `Pw` bits.
pub fn conv_cost(spec: &ConvSpec, pa: Precision, pw: Precision) -> u64 {
    let macs = spec.windows() as u64 * spec.weights_per_filter() as u64 * spec.filters as u64;
    macs * pa.bits_u64() * pw.bits_u64()
}

/// Modeled parallel work of a fully-connected layer over `items` batch
/// inputs: MACs × 16 activation bits × `Pw` bits.
pub fn fc_cost(spec: &FcSpec, items: usize, pw: Precision) -> u64 {
    let macs = spec.in_features as u64 * spec.out_features as u64 * items as u64;
    macs * 16 * pw.bits_u64()
}

/// How many tasks a layer of the given cost should split into on a budget of
/// `units` threads: 1 when the layer is too small to amortise dispatch,
/// otherwise between `units` and `units ×` [`TASKS_PER_THREAD`], bounded by
/// the cost-per-grain.
pub fn task_budget(units: usize, cost: u64) -> usize {
    if units <= 1 {
        return 1;
    }
    let by_cost = (cost / TASK_GRAIN) as usize;
    if by_cost <= 1 {
        return 1;
    }
    by_cost.min(units * TASKS_PER_THREAD).max(units)
}

/// A convolution's task decomposition: `window_chunks × filter_tiles` tasks,
/// each covering a consecutive range of window groups and a contiguous filter
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvPlan {
    /// Number of consecutive window-group ranges.
    pub window_chunks: usize,
    /// Window groups per chunk (the last chunk may be ragged).
    pub groups_per_chunk: usize,
    /// Filter tiles per window chunk (1 unless window groups alone cannot
    /// fill the thread budget).
    pub filter_tiles: usize,
}

impl ConvPlan {
    /// A single-task plan covering the whole layer.
    pub fn single(window_groups: usize) -> Self {
        ConvPlan {
            window_chunks: 1,
            groups_per_chunk: window_groups.max(1),
            filter_tiles: 1,
        }
    }

    /// Total pool tasks the plan fans out.
    pub fn tasks(&self) -> usize {
        self.window_chunks * self.filter_tiles
    }
}

/// Plans a convolution of `cost` with `window_groups` architectural window
/// groups and `filters` filters for a budget of `units` threads. Window
/// groups split first; filter tiles engage only when there are fewer window
/// groups than the task budget (the batch-of-1 latency case), and each tile
/// keeps at least 8 filters so the re-packed activation windows stay
/// amortised.
pub fn plan_conv(units: usize, window_groups: usize, filters: usize, cost: u64) -> ConvPlan {
    let target = task_budget(units, cost);
    if target <= 1 || window_groups == 0 {
        return ConvPlan::single(window_groups);
    }
    let chunks = target.min(window_groups);
    let groups_per_chunk = window_groups.div_ceil(chunks);
    let window_chunks = window_groups.div_ceil(groups_per_chunk);
    let filter_tiles = if window_chunks >= target {
        1
    } else {
        let wanted = target.div_ceil(window_chunks);
        wanted.min((filters / 8).max(1)).min(filters.max(1))
    };
    ConvPlan {
        window_chunks,
        groups_per_chunk,
        filter_tiles,
    }
}

/// Output rows per fully-connected task for a budget of `units` threads:
/// the row count that yields [`task_budget`] tasks, floored at 4 rows so one
/// task amortises its weight-row packing.
pub fn fc_rows_per_task(units: usize, out_features: usize, cost: u64) -> usize {
    let target = task_budget(units, cost);
    out_features
        .div_ceil(target)
        .max(4)
        .min(out_features.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_layers_stay_single_task() {
        assert_eq!(task_budget(8, TASK_GRAIN / 2), 1);
        assert_eq!(task_budget(1, u64::MAX / 2), 1);
        let plan = plan_conv(8, 40, 64, TASK_GRAIN);
        assert_eq!(plan.tasks(), 1);
    }

    #[test]
    fn large_layers_fill_the_thread_budget() {
        let cost = TASK_GRAIN * 100;
        let budget = task_budget(4, cost);
        assert!((4..=16).contains(&budget), "{budget}");
        let plan = plan_conv(4, 190, 96, cost);
        assert_eq!(plan.filter_tiles, 1, "plenty of window groups: no tiling");
        assert!(plan.tasks() >= 4);
        assert!(plan.window_chunks <= 190);
        // Chunks tile the groups exactly.
        assert_eq!(plan.window_chunks, 190usize.div_ceil(plan.groups_per_chunk));
    }

    #[test]
    fn few_window_groups_engage_filter_tiles() {
        // 3 window groups cannot fill 8 threads: filter tiles make up the
        // difference, bounded to keep >= 8 filters per tile.
        let plan = plan_conv(8, 3, 64, TASK_GRAIN * 64);
        assert_eq!(plan.window_chunks, 3);
        assert!(plan.filter_tiles > 1);
        assert!(plan.filter_tiles <= 8);
        assert!(plan.tasks() >= 6);
    }

    #[test]
    fn fc_rows_scale_with_cost() {
        // A big FC layer on 4 threads: several tasks, each >= 4 rows.
        let rows = fc_rows_per_task(4, 4096, TASK_GRAIN * 128);
        assert!(rows >= 4 && rows < 4096, "{rows}");
        // Tiny layer: one task.
        assert_eq!(fc_rows_per_task(4, 128, TASK_GRAIN / 4), 128);
    }

    #[test]
    fn costs_scale_with_precision() {
        let spec = ConvSpec::simple(8, 16, 16, 8, 3);
        let p4 = Precision::new(4).unwrap();
        let p8 = Precision::new(8).unwrap();
        assert_eq!(conv_cost(&spec, p8, p8), 4 * conv_cost(&spec, p4, p4));
        let fc = FcSpec::new(256, 64);
        assert_eq!(fc_cost(&fc, 2, p8), 2 * fc_cost(&fc, 1, p8));
    }
}
