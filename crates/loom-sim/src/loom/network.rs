//! Whole-network, batched execution on the functional Loom engine.
//!
//! [`FunctionalLoom`] answers "does
//! one layer compute the right numbers"; this module chains it over a whole
//! [`LayerGraph`] — branches, concats, pooling, re-quantization and all — and
//! batches inputs. The executor is *shared* with the golden model
//! (`loom_model::graph`): [`NetworkEngine`] plugs the bit-serial datapath in
//! as a [`GraphCompute`] backend, so scheduling, re-quantization, ReLU,
//! pooling and concatenation are literally the same code on both paths and
//! the traces must be bit-identical if (and only if) the inner products are.
//!
//! Execution is *lock-step* across the batch
//! ([`LayerGraph::run_batch_with`]): every node runs for all items before the
//! schedule advances, so a convolution's weight planes are packed **once per
//! batch** and the worker pool is fed fine-grained (item × window-group)
//! tasks — not whole batch items — which keeps all threads busy even when
//! the batch is smaller than the pool. Merging follows the sweep runner's
//! ordered worker-queue pattern, so results are deterministic at any thread
//! count.
//!
//! # Examples
//!
//! Run a batch of two inputs through a small network on two threads and check
//! it against the golden model:
//!
//! ```
//! use loom_model::inference::{InferenceOptions, NetworkParams};
//! use loom_model::layer::{ConvSpec, FcSpec};
//! use loom_model::network::NetworkBuilder;
//! use loom_model::graph::LayerGraph;
//! use loom_model::tensor::{Shape3, Tensor3};
//! use loom_model::Precision;
//! use loom_sim::config::LoomGeometry;
//! use loom_sim::loom::NetworkEngine;
//!
//! let graph = LayerGraph::from_network(
//!     &NetworkBuilder::new("tiny")
//!         .conv("conv1", ConvSpec::simple(1, 6, 6, 2, 3))
//!         .fully_connected("fc1", FcSpec::new(2 * 4 * 4, 4))
//!         .build()
//!         .unwrap(),
//! );
//! let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(4).unwrap()], 1);
//! let geometry = LoomGeometry {
//!     filter_rows: 4,
//!     window_columns: 2,
//!     sip_lanes: 4,
//!     act_bits_per_cycle: 1,
//! };
//! let inputs = [
//!     Tensor3::from_vec(Shape3::new(1, 6, 6), (0..36).collect()).unwrap(),
//!     Tensor3::from_vec(Shape3::new(1, 6, 6), (36..72).collect()).unwrap(),
//! ];
//! let options = InferenceOptions::default();
//!
//! let engine = NetworkEngine::new(geometry).with_threads(2);
//! let runs = engine.run_batch(&graph, &params, &inputs, options).unwrap();
//! assert_eq!(runs.len(), 2);
//! // Bit-identical to the golden model, layer by layer.
//! let golden = graph.run_batch(&params, &inputs, options).unwrap();
//! assert_eq!(runs[0].trace, golden[0]);
//! assert_eq!(runs[1].trace, golden[1]);
//! assert!(runs[0].cycles > 0);
//! ```

use crate::config::LoomGeometry;
use crate::loom::functional::{
    merge_conv_tasks, ConvArena, FcArena, FunctionalLoom, PackStats, PackedFcRows, SipKernel,
    WideFcJob, WideFilterPlanes,
};
use crate::loom::store;
use crate::pool;
use loom_model::fixed::required_precision;
use loom_model::graph::{GraphCompute, LayerGraph};
use loom_model::inference::{InferenceError, InferenceOptions, InferenceTrace, NetworkParams};
use loom_model::layer::{ConvSpec, FcSpec, LayerKind};
use loom_model::tensor::{Tensor3, Tensor4};
use loom_model::Precision;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of running a whole network through the functional engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkRun {
    /// The full forward-pass trace, bit-identical to the golden model's
    /// ([`LayerGraph::run`]) when the datapath is correct.
    pub trace: InferenceTrace,
    /// Total bit-serial cycles over all compute layers.
    pub cycles: u64,
    /// Total activation groups whose precision dynamic detection reduced.
    pub reduced_groups: u64,
}

/// Fully-connected layers whose weight count exceeds this stream their row
/// transpose per dispatch instead of being held in a [`PackedModel`]: a
/// VGG-19-class `fc6` (~100M weights) would pin hundreds of megabytes of
/// bit-plane blocks per served model, while everything up to a few million
/// weights — every reduced network and MLP head — caches comfortably.
pub const FC_PREPACK_MAX_WEIGHTS: usize = 1 << 22;

/// One convolution's cache entry: the layer's wide filter planes (shared
/// with the process-wide weight store) plus its weight precision, both
/// otherwise recomputed on every dispatch.
struct CachedConv {
    planes: Arc<WideFilterPlanes>,
    pw: Precision,
}

/// One fully-connected layer's cache entry. `rows` is `None` above
/// [`FC_PREPACK_MAX_WEIGHTS`] (the dispatch streams the transpose as
/// before); the weight precision is cached either way.
struct CachedFc {
    rows: Option<Arc<PackedFcRows>>,
    pw: Precision,
}

/// A model's weights pre-packed for the wide datapath, built once
/// ([`NetworkEngine::prepack`]) and shared read-only across every request
/// that serves the model: per-conv-layer filter planes, per-FC-layer row
/// transposes (bounded by [`FC_PREPACK_MAX_WEIGHTS`]) and per-layer weight
/// precisions. [`NetworkEngine::run_batch_cached`] consults it by layer
/// name; results are bit-identical with and without the cache — only the
/// per-dispatch packing and precision scans disappear.
///
/// The cache is only valid for the exact `(graph, params)` pair it was built
/// from; [`NetworkEngine::run_batch_cached`] rejects a cache whose graph
/// name differs, and the packing layers assert block counts against the
/// layer specs.
pub struct PackedModel {
    graph_name: String,
    conv: HashMap<String, CachedConv>,
    fc: HashMap<String, CachedFc>,
}

impl PackedModel {
    /// The graph this cache was packed for.
    pub fn graph_name(&self) -> &str {
        &self.graph_name
    }

    /// Number of layers with cached packed weights (precision-only FC
    /// entries above the prepack limit do not count).
    pub fn packed_layers(&self) -> usize {
        self.conv.len() + self.fc.values().filter(|f| f.rows.is_some()).count()
    }

    /// Approximate resident size of the packed (compressed) planes, for
    /// observability.
    pub fn approx_bytes(&self) -> usize {
        self.conv
            .values()
            .map(|c| c.planes.approx_bytes())
            .sum::<usize>()
            + self
                .fc
                .values()
                .filter_map(|f| f.rows.as_ref())
                .map(|rows| rows.approx_bytes())
                .sum::<usize>()
    }

    /// Names of fully-connected layers whose weight count exceeded
    /// [`FC_PREPACK_MAX_WEIGHTS`] and therefore stream their row transpose
    /// per dispatch instead of being cached (sorted for stable reporting).
    /// Empty for every reduced zoo network and MLP head — non-empty means
    /// the model pays the streaming path on every request.
    pub fn unpacked_fc_layers(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .fc
            .iter()
            .filter(|(_, fc)| fc.rows.is_none())
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }

    /// Aggregated pack cost and compression footprint over every cached
    /// container: original pack wall time, resident bytes before/after
    /// compression and the modeled DRAM stream bits both ways. Containers
    /// served from the weight store report the cost of their original pack.
    pub fn pack_stats(&self) -> PackStats {
        let mut total = PackStats::default();
        for conv in self.conv.values() {
            total.add(&conv.planes.stats());
        }
        for fc in self.fc.values() {
            if let Some(rows) = &fc.rows {
                total.add(&rows.stats());
            }
        }
        total
    }
}

/// Batched, parallel functional execution of whole layer graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkEngine {
    engine: FunctionalLoom,
    threads: usize,
}

impl NetworkEngine {
    /// Creates an engine with the given geometry, dynamic precision
    /// detection enabled, the wide SIP kernel, and one worker thread.
    pub fn new(geometry: LoomGeometry) -> Self {
        NetworkEngine {
            engine: FunctionalLoom::new(geometry),
            threads: 1,
        }
    }

    /// Sets the worker-thread budget (clamped to at least 1). Every
    /// convolution fans (batch item × window group) tasks — and every
    /// fully-connected layer (output-row group) tasks — across one pool of
    /// this size, so the pool stays busy even when the batch is smaller than
    /// the thread count. Results are bit-identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the SIP kernel (wide by default).
    pub fn with_kernel(mut self, kernel: SipKernel) -> Self {
        self.engine = self.engine.with_kernel(kernel);
        self
    }

    /// Disables runtime precision detection.
    pub fn without_dynamic_precision(mut self) -> Self {
        self.engine = self.engine.without_dynamic_precision();
        self
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-layer engine this network engine drives.
    pub fn layer_engine(&self) -> FunctionalLoom {
        self.engine
    }

    /// Runs one input through the graph on the bit-serial datapath, with the
    /// full thread budget fanned across each layer's window / output-row
    /// groups. Exactly [`NetworkEngine::run_batch`] with a batch of one.
    ///
    /// Per-layer precisions are taken from the data itself
    /// ([`required_precision`] of the layer's input activations and weights),
    /// so the run is self-contained and deterministic.
    ///
    /// # Errors
    ///
    /// As [`LayerGraph::run`]: shape mismatches, empty graphs, or malformed
    /// concatenations.
    pub fn run(
        &self,
        graph: &LayerGraph,
        params: &NetworkParams,
        input: &Tensor3,
        options: InferenceOptions,
    ) -> Result<NetworkRun, InferenceError> {
        Ok(self
            .run_batch(graph, params, std::slice::from_ref(input), options)?
            .pop()
            .expect("one run per input"))
    }

    /// Runs every input through the graph, lock-step: each layer's weight
    /// planes are packed once for the whole batch, and the worker pool
    /// processes (item × window-group) convolution tasks and (output-row
    /// group) fully-connected tasks. Each item's result is bit-identical to
    /// [`NetworkEngine::run`] on that input — and to the golden
    /// [`LayerGraph::run_batch`] — regardless of thread count.
    ///
    /// # Errors
    ///
    /// The first error in (schedule, item) order, as [`NetworkEngine::run`].
    pub fn run_batch(
        &self,
        graph: &LayerGraph,
        params: &NetworkParams,
        inputs: &[Tensor3],
        options: InferenceOptions,
    ) -> Result<Vec<NetworkRun>, InferenceError> {
        self.run_batch_cached(graph, params, inputs, options, None)
    }

    /// Packs every compute layer's weights for the wide datapath up front:
    /// conv filter planes, FC row transposes (layers up to
    /// [`FC_PREPACK_MAX_WEIGHTS`] weights) and per-layer weight precisions.
    /// Build once per served model, then pass to
    /// [`NetworkEngine::run_batch_cached`] on every request.
    ///
    /// The cache applies to the wide kernel only (the serving default); the
    /// legacy cross-check kernels ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `params` does not match the graph's compute layers (wrong
    /// count or weight lengths) — the same contract [`LayerGraph::run_batch`]
    /// enforces at dispatch time.
    pub fn prepack(&self, graph: &LayerGraph, params: &NetworkParams) -> PackedModel {
        let mut conv = HashMap::new();
        let mut fc = HashMap::new();
        for ((name, kind), weights) in graph.compute_layers().zip(params.layers()) {
            assert_eq!(
                name, weights.layer_name,
                "params must list weights in compute-layer order"
            );
            let pw = required_precision(&weights.values);
            match kind {
                LayerKind::Conv(spec) => {
                    let tensor = Tensor4::from_vec(spec.weight_shape(), weights.values.clone())
                        .expect("weight length matches the layer spec");
                    conv.insert(
                        name.to_string(),
                        CachedConv {
                            planes: store::conv_planes(spec, &tensor),
                            pw,
                        },
                    );
                }
                LayerKind::FullyConnected(spec) => {
                    let rows = (weights.values.len() <= FC_PREPACK_MAX_WEIGHTS)
                        .then(|| store::fc_rows(spec, &weights.values));
                    fc.insert(name.to_string(), CachedFc { rows, pw });
                }
                LayerKind::MaxPool(_) => {}
            }
        }
        PackedModel {
            graph_name: graph.name().to_string(),
            conv,
            fc,
        }
    }

    /// [`NetworkEngine::run_batch`] with a per-model weight cache: layers
    /// found in `cache` skip their per-dispatch weight packing and precision
    /// scan. Results are bit-identical to the uncached run at any thread
    /// count.
    ///
    /// # Errors
    ///
    /// As [`NetworkEngine::run_batch`], plus
    /// [`InferenceError::ShapeMismatch`]-free sanity: a cache packed for a
    /// different graph (by name) panics — serving must never silently mix
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `cache` was packed for a different graph, or if a cached
    /// layer's block counts do not tile the layer spec (a stale cache).
    pub fn run_batch_cached(
        &self,
        graph: &LayerGraph,
        params: &NetworkParams,
        inputs: &[Tensor3],
        options: InferenceOptions,
        cache: Option<&PackedModel>,
    ) -> Result<Vec<NetworkRun>, InferenceError> {
        if let Some(cache) = cache {
            assert_eq!(
                cache.graph_name,
                graph.name(),
                "packed-weight cache belongs to a different model"
            );
        }
        let mut backend = FunctionalCompute {
            engine: self.engine,
            threads: self.threads,
            cache,
            cycles: vec![0; inputs.len()],
            reduced_groups: vec![0; inputs.len()],
        };
        let traces = graph.run_batch_with(params, inputs, options, &[], &mut backend)?;
        Ok(traces
            .into_iter()
            .zip(backend.cycles)
            .zip(backend.reduced_groups)
            .map(|((trace, cycles), reduced_groups)| NetworkRun {
                trace,
                cycles,
                reduced_groups,
            })
            .collect())
    }
}

/// The functional Loom engine as a [`GraphCompute`] backend: bit-serial inner
/// products plus per-item cycle and reduced-group accounting. The batch entry
/// points pack each layer's weight planes once and fan fine-grained tasks
/// across the worker pool; the single-item entry points exist for callers
/// driving [`LayerGraph::run_with`] directly.
struct FunctionalCompute<'c> {
    engine: FunctionalLoom,
    threads: usize,
    cache: Option<&'c PackedModel>,
    cycles: Vec<u64>,
    reduced_groups: Vec<u64>,
}

impl FunctionalCompute<'_> {
    fn ensure_items(&mut self, items: usize) {
        if self.cycles.len() < items {
            self.cycles.resize(items, 0);
            self.reduced_groups.resize(items, 0);
        }
    }
}

impl GraphCompute for FunctionalCompute<'_> {
    fn conv(
        &mut self,
        _layer: &str,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
    ) -> Vec<i64> {
        self.ensure_items(1);
        let pa = required_precision(input.as_slice());
        let pw = required_precision(weights.as_slice());
        let run = self
            .engine
            .with_threads(self.threads)
            .run_conv(spec, input, weights, pa, pw);
        self.cycles[0] += run.cycles;
        self.reduced_groups[0] += run.reduced_groups;
        run.outputs
    }

    fn fc(&mut self, _layer: &str, spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64> {
        self.ensure_items(1);
        let pw = required_precision(weights);
        let run = self
            .engine
            .with_threads(self.threads)
            .run_fc(spec, input, weights, pw);
        self.cycles[0] += run.cycles;
        self.reduced_groups[0] += run.reduced_groups;
        run.outputs
    }

    fn conv_batch(
        &mut self,
        layer: &str,
        spec: &ConvSpec,
        inputs: &[Tensor3],
        weights: &Tensor4,
    ) -> Vec<Vec<i64>> {
        self.ensure_items(inputs.len());
        let cached = self.cache.and_then(|cache| cache.conv.get(layer));
        let pw = match cached {
            Some(cached) => cached.pw,
            None => required_precision(weights.as_slice()),
        };
        if self.engine.kernel != SipKernel::Wide {
            // Legacy kernels exist for cross-checks only: fan batch items
            // across the pool and give leftover threads to window groups,
            // as the pre-lock-step engine did.
            let item_workers = self.threads.min(inputs.len()).max(1);
            let per_item = self
                .engine
                .with_threads((self.threads / item_workers).max(1));
            let runs = pool::ordered_map(item_workers, inputs.len(), |i| {
                let pa = required_precision(inputs[i].as_slice());
                per_item.run_conv(spec, &inputs[i], weights, pa, pw)
            });
            return runs
                .into_iter()
                .enumerate()
                .map(|(i, run)| {
                    self.cycles[i] += run.cycles;
                    self.reduced_groups[i] += run.reduced_groups;
                    run.outputs
                })
                .collect();
        }

        // Wide path: pack the layer's weight planes once for the whole batch,
        // then fan (item × cost-model task) jobs across one pool. Each item
        // plans for its share of the thread budget — a batch of one gets the
        // whole budget (intra-layer batch-of-1 parallelism), a batch as wide
        // as the pool gets one task per item.
        let units = self.threads.div_ceil(inputs.len()).max(1);
        let packed_local;
        let filters: &WideFilterPlanes = match cached {
            Some(cached) => &cached.planes,
            None => {
                packed_local = store::conv_planes(spec, weights);
                &packed_local
            }
        };
        let jobs: Vec<_> = inputs
            .iter()
            .map(|input| {
                let pa = required_precision(input.as_slice());
                self.engine
                    .wide_conv_job(spec, input, filters, pa, pw, units)
            })
            .collect();
        // Each item plans from its *own* activation precision, so task counts
        // can differ across the batch: map the flat pool index to
        // (item, local task) through a prefix sum rather than assuming item
        // 0's count holds for everyone.
        let mut task_base = Vec::with_capacity(jobs.len());
        let mut total_tasks = 0usize;
        for job in &jobs {
            task_base.push(total_tasks);
            total_tasks += job.task_count();
        }
        let results = pool::ordered_map_with(
            self.threads,
            total_tasks,
            ConvArena::default,
            |arena, task| {
                let item = task_base.partition_point(|&base| base <= task) - 1;
                jobs[item].run_task(arena, task - task_base[item])
            },
        );
        let mut results = results.into_iter();
        jobs.iter()
            .enumerate()
            .map(|(i, job)| {
                let tasks: Vec<_> = results.by_ref().take(job.task_count()).collect();
                let run = merge_conv_tasks(job.filters(), job.windows(), tasks);
                self.cycles[i] += run.cycles;
                self.reduced_groups[i] += run.reduced_groups;
                run.outputs
            })
            .collect()
    }

    fn fc_batch(
        &mut self,
        layer: &str,
        spec: &FcSpec,
        inputs: &[Vec<i32>],
        weights: &[i32],
    ) -> Vec<Vec<i64>> {
        self.ensure_items(inputs.len());
        let cached = self.cache.and_then(|cache| cache.fc.get(layer));
        let pw = match cached {
            Some(cached) => cached.pw,
            None => required_precision(weights),
        };
        if self.engine.kernel != SipKernel::Wide {
            let item_workers = self.threads.min(inputs.len()).max(1);
            let runs = pool::ordered_map(item_workers, inputs.len(), |i| {
                self.engine.run_fc(spec, &inputs[i], weights, pw)
            });
            return runs
                .into_iter()
                .enumerate()
                .map(|(i, run)| {
                    self.cycles[i] += run.cycles;
                    self.reduced_groups[i] += run.reduced_groups;
                    run.outputs
                })
                .collect();
        }

        // Wide path: inputs pack once per item, each weight row packs once
        // for the whole batch, and output-row groups fan across the pool.
        let item_slices: Vec<&[i32]> = inputs.iter().map(|v| v.as_slice()).collect();
        let rows = cached.and_then(|cached| cached.rows.as_deref());
        let job = WideFcJob::new(spec, &item_slices, weights, pw, self.threads, rows);
        let row_chunks = pool::ordered_map_with(
            self.threads,
            job.row_group_count(),
            FcArena::default,
            |arena, g| job.run_rows(arena, g),
        );
        let items = job.items();
        let cycles = self.engine.fc_cycles(spec, pw);
        let mut outputs: Vec<Vec<i64>> = (0..items)
            .map(|_| Vec::with_capacity(spec.out_features))
            .collect();
        for chunk in row_chunks {
            for row in chunk.chunks_exact(items) {
                for (item, &value) in row.iter().enumerate() {
                    outputs[item].push(value);
                }
            }
        }
        for i in 0..items {
            self.cycles[i] += cycles;
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::graph::{GraphBuilder, GRAPH_INPUT};
    use loom_model::layer::PoolSpec;
    use loom_model::synthetic::{synthetic_activations, ValueDistribution};
    use loom_model::tensor::Shape3;
    use loom_model::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometry() -> LoomGeometry {
        LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 8,
            act_bits_per_cycle: 1,
        }
    }

    fn branching_graph() -> LayerGraph {
        let b3 = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(4, 6, 6, 3, 3)
        };
        GraphBuilder::new("fork")
            .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 8, 8, 4, 3))
            .conv("b1", "stem", ConvSpec::simple(4, 6, 6, 2, 1))
            .conv("b3", "stem", b3)
            .max_pool("bp", "stem", PoolSpec::new(4, 6, 6, 3, 1).with_padding(1))
            .concat("merge", &["b1", "b3", "bp"])
            .fully_connected("fc", "merge", FcSpec::new((2 + 3 + 4) * 36, 6))
            .build()
            .unwrap()
    }

    fn inputs(n: usize) -> Vec<Tensor3> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                Tensor3::from_vec(
                    Shape3::new(2, 8, 8),
                    synthetic_activations(
                        &mut rng,
                        2 * 8 * 8,
                        Precision::new(8).unwrap(),
                        ValueDistribution::activations(),
                    ),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn branching_network_matches_golden_model() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let input = &inputs(1)[0];
        let golden = graph.run(&params, input, options).unwrap();
        let run = NetworkEngine::new(geometry())
            .run(&graph, &params, input, options)
            .unwrap();
        assert_eq!(run.trace, golden);
        assert!(run.cycles > 0);
    }

    #[test]
    fn batch_and_thread_counts_do_not_change_results() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let batch = inputs(3);
        let serial = NetworkEngine::new(geometry())
            .run_batch(&graph, &params, &batch, options)
            .unwrap();
        // Batch of N equals N runs of batch 1.
        for (i, input) in batch.iter().enumerate() {
            let single = NetworkEngine::new(geometry())
                .run(&graph, &params, input, options)
                .unwrap();
            assert_eq!(serial[i], single);
        }
        // ... at every thread count.
        for threads in [2, 8] {
            let parallel = NetworkEngine::new(geometry())
                .with_threads(threads)
                .run_batch(&graph, &params, &batch, options)
                .unwrap();
            assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn legacy_kernels_match_the_wide_batch_path() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let batch = inputs(2);
        let wide = NetworkEngine::new(geometry())
            .with_threads(2)
            .run_batch(&graph, &params, &batch, options)
            .unwrap();
        for kernel in [SipKernel::Packed, SipKernel::BitSerial] {
            let other = NetworkEngine::new(geometry())
                .with_threads(2)
                .with_kernel(kernel)
                .run_batch(&graph, &params, &batch, options)
                .unwrap();
            assert_eq!(other, wide, "{kernel:?}");
        }
    }

    #[test]
    fn errors_propagate_from_the_executor() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let bad_input = Tensor3::zeros(Shape3::new(1, 4, 4));
        let err = NetworkEngine::new(geometry())
            .run(&graph, &params, &bad_input, InferenceOptions::default())
            .unwrap_err();
        assert!(matches!(err, InferenceError::ShapeMismatch { .. }));
    }

    fn mlp_graph() -> LayerGraph {
        GraphBuilder::new("mlp")
            .fully_connected("fc1", GRAPH_INPUT, FcSpec::new(96, 48))
            .fully_connected("fc2", "fc1", FcSpec::new(48, 10))
            .build()
            .unwrap()
    }

    fn mlp_inputs(n: usize) -> Vec<Tensor3> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(300 + i as u64);
                Tensor3::from_vec(
                    Shape3::new(1, 1, 96),
                    synthetic_activations(
                        &mut rng,
                        96,
                        Precision::new(8).unwrap(),
                        ValueDistribution::activations(),
                    ),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn packed_model_cache_is_bit_identical_to_uncached_runs() {
        let options = InferenceOptions::default();
        // Conv + pool + concat + FC graph, and an FC-only (MLP) graph: the
        // two cache paths (filter planes, FC row transposes).
        for (graph, batch) in [(branching_graph(), inputs(3)), (mlp_graph(), mlp_inputs(3))] {
            let params =
                NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
            let engine = NetworkEngine::new(geometry()).with_threads(2);
            let cache = engine.prepack(&graph, &params);
            assert_eq!(cache.graph_name(), graph.name());
            assert_eq!(
                cache.packed_layers(),
                graph.compute_layers().count(),
                "every compute layer of {} fits under the prepack limit",
                graph.name()
            );
            assert!(cache.approx_bytes() > 0);
            let uncached = engine.run_batch(&graph, &params, &batch, options).unwrap();
            let cached = engine
                .run_batch_cached(&graph, &params, &batch, options, Some(&cache))
                .unwrap();
            assert_eq!(cached, uncached);
            // The cache stays valid across thread counts and batch shapes.
            let single = NetworkEngine::new(geometry())
                .run_batch_cached(
                    &graph,
                    &params,
                    std::slice::from_ref(&batch[0]),
                    options,
                    Some(&cache),
                )
                .unwrap();
            assert_eq!(single[0], uncached[0]);
        }
    }

    #[test]
    fn oversized_fc_layers_cache_precision_but_stream_rows() {
        let graph = mlp_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let engine = NetworkEngine::new(geometry());
        let cache = engine.prepack(&graph, &params);
        // Force the "too big to prepack" path by dropping the packed rows,
        // keeping only the cached precisions — results must not change.
        let stripped = PackedModel {
            graph_name: cache.graph_name.clone(),
            conv: HashMap::new(),
            fc: cache
                .fc
                .iter()
                .map(|(name, fc)| {
                    (
                        name.clone(),
                        CachedFc {
                            rows: None,
                            pw: fc.pw,
                        },
                    )
                })
                .collect(),
        };
        assert_eq!(stripped.packed_layers(), 0);
        // The full cache packed everything, the stripped one nothing — the
        // unpacked-layer report (surfaced by loom-serve `/metrics`) must say so.
        assert!(cache.unpacked_fc_layers().is_empty());
        let mut unpacked = stripped.unpacked_fc_layers();
        unpacked.sort();
        let mut expected: Vec<String> = stripped.fc.keys().cloned().collect();
        expected.sort();
        assert_eq!(unpacked, expected);
        assert!(!expected.is_empty());
        let batch = mlp_inputs(2);
        let options = InferenceOptions::default();
        let uncached = engine.run_batch(&graph, &params, &batch, options).unwrap();
        let cached = engine
            .run_batch_cached(&graph, &params, &batch, options, Some(&stripped))
            .unwrap();
        assert_eq!(cached, uncached);
    }

    #[test]
    fn prepacking_the_same_model_twice_hits_the_weight_store() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 5);
        let engine = NetworkEngine::new(geometry());
        let first = engine.prepack(&graph, &params);
        let before = crate::loom::store::stats();
        let second = engine.prepack(&graph, &params);
        let after = crate::loom::store::stats();
        // Every container in the second cache is served from the store: no
        // new packs, only hits.
        assert_eq!(
            after.packs(),
            before.packs(),
            "second prepack must not repack"
        );
        assert!(after.hits() >= before.hits() + first.packed_layers() as u64);
        assert_eq!(second.packed_layers(), first.packed_layers());
        assert_eq!(second.approx_bytes(), first.approx_bytes());
        let stats = second.pack_stats();
        assert!(stats.compressed_bytes > 0);
        assert!(stats.compressed_bytes <= stats.dense_bytes);
        assert!(stats.compressed_stream_bits <= stats.dense_stream_bits);
    }

    #[test]
    #[should_panic(expected = "different model")]
    fn cache_for_a_different_graph_is_rejected() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let other = mlp_graph();
        let other_params =
            NetworkParams::synthetic_for_graph(&other, &[Precision::new(7).unwrap()], 3);
        let engine = NetworkEngine::new(geometry());
        let cache = engine.prepack(&other, &other_params);
        let _ = engine.run_batch_cached(
            &graph,
            &params,
            &inputs(1),
            InferenceOptions::default(),
            Some(&cache),
        );
    }
}
