//! Whole-network, batched execution on the functional Loom engine.
//!
//! [`FunctionalLoom`] answers "does
//! one layer compute the right numbers"; this module chains it over a whole
//! [`LayerGraph`] — branches, concats, pooling, re-quantization and all — and
//! batches inputs. The executor is *shared* with the golden model
//! (`loom_model::graph`): [`NetworkEngine`] plugs the bit-serial datapath in
//! as a [`GraphCompute`] backend, so scheduling, re-quantization, ReLU,
//! pooling and concatenation are literally the same code on both paths and
//! the traces must be bit-identical if (and only if) the inner products are.
//!
//! Parallelism follows the sweep runner's scoped-thread worker-queue pattern
//! and is deterministic at any thread count: batches fan across items, and
//! leftover threads fan each convolution's window groups.
//!
//! # Examples
//!
//! Run a batch of two inputs through a small network on two threads and check
//! it against the golden model:
//!
//! ```
//! use loom_model::inference::{InferenceOptions, NetworkParams};
//! use loom_model::layer::{ConvSpec, FcSpec};
//! use loom_model::network::NetworkBuilder;
//! use loom_model::graph::LayerGraph;
//! use loom_model::tensor::{Shape3, Tensor3};
//! use loom_model::Precision;
//! use loom_sim::config::LoomGeometry;
//! use loom_sim::loom::NetworkEngine;
//!
//! let graph = LayerGraph::from_network(
//!     &NetworkBuilder::new("tiny")
//!         .conv("conv1", ConvSpec::simple(1, 6, 6, 2, 3))
//!         .fully_connected("fc1", FcSpec::new(2 * 4 * 4, 4))
//!         .build()
//!         .unwrap(),
//! );
//! let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(4).unwrap()], 1);
//! let geometry = LoomGeometry {
//!     filter_rows: 4,
//!     window_columns: 2,
//!     sip_lanes: 4,
//!     act_bits_per_cycle: 1,
//! };
//! let inputs = [
//!     Tensor3::from_vec(Shape3::new(1, 6, 6), (0..36).collect()).unwrap(),
//!     Tensor3::from_vec(Shape3::new(1, 6, 6), (36..72).collect()).unwrap(),
//! ];
//! let options = InferenceOptions::default();
//!
//! let engine = NetworkEngine::new(geometry).with_threads(2);
//! let runs = engine.run_batch(&graph, &params, &inputs, options).unwrap();
//! assert_eq!(runs.len(), 2);
//! // Bit-identical to the golden model, layer by layer.
//! let golden = graph.run_batch(&params, &inputs, options).unwrap();
//! assert_eq!(runs[0].trace, golden[0]);
//! assert_eq!(runs[1].trace, golden[1]);
//! assert!(runs[0].cycles > 0);
//! ```

use crate::config::LoomGeometry;
use crate::loom::functional::{FunctionalLoom, SipKernel};
use crate::loom::parallel;
use loom_model::fixed::required_precision;
use loom_model::graph::{GraphCompute, LayerGraph};
use loom_model::inference::{InferenceError, InferenceOptions, InferenceTrace, NetworkParams};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

/// Result of running a whole network through the functional engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkRun {
    /// The full forward-pass trace, bit-identical to the golden model's
    /// ([`LayerGraph::run`]) when the datapath is correct.
    pub trace: InferenceTrace,
    /// Total bit-serial cycles over all compute layers.
    pub cycles: u64,
    /// Total activation groups whose precision dynamic detection reduced.
    pub reduced_groups: u64,
}

/// Batched, parallel functional execution of whole layer graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetworkEngine {
    engine: FunctionalLoom,
    threads: usize,
}

impl NetworkEngine {
    /// Creates an engine with the given geometry, dynamic precision
    /// detection enabled, the packed SIP kernel, and one worker thread.
    pub fn new(geometry: LoomGeometry) -> Self {
        NetworkEngine {
            engine: FunctionalLoom::new(geometry),
            threads: 1,
        }
    }

    /// Sets the worker-thread budget (clamped to at least 1).
    /// [`NetworkEngine::run_batch`] spends it on batch items first and gives
    /// what is left over to each item's convolutional window groups;
    /// [`NetworkEngine::run`] gives all of it to window groups. Results are
    /// bit-identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the SIP kernel (packed by default).
    pub fn with_kernel(mut self, kernel: SipKernel) -> Self {
        self.engine = self.engine.with_kernel(kernel);
        self
    }

    /// Disables runtime precision detection.
    pub fn without_dynamic_precision(mut self) -> Self {
        self.engine = self.engine.without_dynamic_precision();
        self
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-layer engine this network engine drives.
    pub fn layer_engine(&self) -> FunctionalLoom {
        self.engine
    }

    /// Runs one input through the graph on the bit-serial datapath, with the
    /// full thread budget fanned across each convolution's window groups.
    ///
    /// Per-layer precisions are taken from the data itself
    /// ([`required_precision`] of the layer's input activations and weights),
    /// so the run is self-contained and deterministic.
    ///
    /// # Errors
    ///
    /// As [`LayerGraph::run`]: shape mismatches, empty graphs, or malformed
    /// concatenations.
    pub fn run(
        &self,
        graph: &LayerGraph,
        params: &NetworkParams,
        input: &Tensor3,
        options: InferenceOptions,
    ) -> Result<NetworkRun, InferenceError> {
        let mut backend = FunctionalCompute {
            engine: self.engine.with_threads(self.threads),
            cycles: 0,
            reduced_groups: 0,
        };
        let trace = graph.run_with(params, input, options, &[], &mut backend)?;
        Ok(NetworkRun {
            trace,
            cycles: backend.cycles,
            reduced_groups: backend.reduced_groups,
        })
    }

    /// Runs every input through the graph, fanning the batch across the
    /// worker pool. Each item is an independent forward pass, so the results
    /// are bit-identical to N calls of [`NetworkEngine::run`] — and to the
    /// golden [`LayerGraph::run_batch`] — regardless of thread count.
    ///
    /// # Errors
    ///
    /// The first per-item error in batch order, as [`NetworkEngine::run`].
    pub fn run_batch(
        &self,
        graph: &LayerGraph,
        params: &NetworkParams,
        inputs: &[Tensor3],
        options: InferenceOptions,
    ) -> Result<Vec<NetworkRun>, InferenceError> {
        let item_workers = self.threads.min(inputs.len()).max(1);
        // Threads not absorbed by batch items go to window groups: a batch of
        // 2 on 8 threads runs 2 items x 4-way window parallelism.
        let per_item = NetworkEngine {
            engine: self.engine,
            threads: (self.threads / item_workers).max(1),
        };
        parallel::ordered_map(item_workers, inputs.len(), |i| {
            per_item.run(graph, params, &inputs[i], options)
        })
        .into_iter()
        .collect()
    }
}

/// The functional Loom engine as a [`GraphCompute`] backend: bit-serial inner
/// products plus cycle and reduced-group accounting.
struct FunctionalCompute {
    engine: FunctionalLoom,
    cycles: u64,
    reduced_groups: u64,
}

impl GraphCompute for FunctionalCompute {
    fn conv(
        &mut self,
        _layer: &str,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
    ) -> Vec<i64> {
        let pa = required_precision(input.as_slice());
        let pw = required_precision(weights.as_slice());
        let run = self.engine.run_conv(spec, input, weights, pa, pw);
        self.cycles += run.cycles;
        self.reduced_groups += run.reduced_groups;
        run.outputs
    }

    fn fc(&mut self, _layer: &str, spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64> {
        let pw = required_precision(weights);
        let run = self.engine.run_fc(spec, input, weights, pw);
        self.cycles += run.cycles;
        self.reduced_groups += run.reduced_groups;
        run.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::graph::{GraphBuilder, GRAPH_INPUT};
    use loom_model::layer::PoolSpec;
    use loom_model::synthetic::{synthetic_activations, ValueDistribution};
    use loom_model::tensor::Shape3;
    use loom_model::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometry() -> LoomGeometry {
        LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 8,
            act_bits_per_cycle: 1,
        }
    }

    fn branching_graph() -> LayerGraph {
        let b3 = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(4, 6, 6, 3, 3)
        };
        GraphBuilder::new("fork")
            .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 8, 8, 4, 3))
            .conv("b1", "stem", ConvSpec::simple(4, 6, 6, 2, 1))
            .conv("b3", "stem", b3)
            .max_pool("bp", "stem", PoolSpec::new(4, 6, 6, 3, 1).with_padding(1))
            .concat("merge", &["b1", "b3", "bp"])
            .fully_connected("fc", "merge", FcSpec::new((2 + 3 + 4) * 36, 6))
            .build()
            .unwrap()
    }

    fn inputs(n: usize) -> Vec<Tensor3> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                Tensor3::from_vec(
                    Shape3::new(2, 8, 8),
                    synthetic_activations(
                        &mut rng,
                        2 * 8 * 8,
                        Precision::new(8).unwrap(),
                        ValueDistribution::activations(),
                    ),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn branching_network_matches_golden_model() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let input = &inputs(1)[0];
        let golden = graph.run(&params, input, options).unwrap();
        let run = NetworkEngine::new(geometry())
            .run(&graph, &params, input, options)
            .unwrap();
        assert_eq!(run.trace, golden);
        assert!(run.cycles > 0);
    }

    #[test]
    fn batch_and_thread_counts_do_not_change_results() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let batch = inputs(3);
        let serial = NetworkEngine::new(geometry())
            .run_batch(&graph, &params, &batch, options)
            .unwrap();
        // Batch of N equals N runs of batch 1.
        for (i, input) in batch.iter().enumerate() {
            let single = NetworkEngine::new(geometry())
                .run(&graph, &params, input, options)
                .unwrap();
            assert_eq!(serial[i], single);
        }
        // ... at every thread count.
        for threads in [2, 8] {
            let parallel = NetworkEngine::new(geometry())
                .with_threads(threads)
                .run_batch(&graph, &params, &batch, options)
                .unwrap();
            assert_eq!(parallel, serial);
        }
    }

    #[test]
    fn errors_propagate_from_the_executor() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let bad_input = Tensor3::zeros(Shape3::new(1, 4, 4));
        let err = NetworkEngine::new(geometry())
            .run(&graph, &params, &bad_input, InferenceOptions::default())
            .unwrap_err();
        assert!(matches!(err, InferenceError::ShapeMismatch { .. }));
    }
}
