//! The Serial Inner-Product unit (SIP, Figure 3 of the paper) as a bit-exact
//! functional model.
//!
//! Every cycle a SIP ANDs 16 single-bit activations with the 16 single-bit
//! weights held in its weight registers (WRs), reduces them with a 16-input
//! adder tree, and shift-accumulates the result: `AC1` accumulates over the
//! activation bits of one weight-bit plane, and `AC2`/the output register (OR)
//! accumulates the weight-bit planes. A negation block subtracts the partial
//! sum that corresponds to the most significant bit of two's-complement
//! operands.
//!
//! [`serial_inner_product`] runs this exact bit-level recipe end to end and is
//! proven (by unit and property tests) to equal the ordinary integer inner
//! product for any operand precisions — the core functional-equivalence claim
//! of the whole design.

use loom_model::fixed::{bit_of, Precision};

/// Computes the inner product of `weights` and `activations` exactly the way a
/// SIP does: bit-serially over `pw` weight bits (outer) and `pa` activation
/// bits (inner), with two's-complement negation applied to the most significant
/// bit plane of whichever operands are signed.
///
/// The operands must be representable in `pw`/`pa` bits respectively (signed
/// two's-complement if the corresponding `*_signed` flag is set, unsigned
/// otherwise); the caller — like the real hardware's software stack — is
/// responsible for choosing sufficient precisions.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn serial_inner_product(
    weights: &[i32],
    activations: &[i32],
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    assert_eq!(
        weights.len(),
        activations.len(),
        "weights and activations must pair up lane by lane"
    );
    let mut or_register = 0i64;
    for wb in 0..pw.bits() {
        // Load this bit plane of every weight into the WRs.
        let weight_bits: Vec<u8> = weights.iter().map(|&w| bit_of(w, wb)).collect();
        // AC1: accumulate over the activation bits.
        let mut acc1 = 0i64;
        for ab in 0..pa.bits() {
            let mut partial = 0i64;
            for (lane, &a) in activations.iter().enumerate() {
                partial += i64::from(bit_of(a, ab) & weight_bits[lane]);
            }
            if activations_signed && ab == pa.bits() - 1 {
                partial = -partial;
            }
            acc1 += partial << ab;
        }
        // Negation block: the weight MSB column is subtracted for signed weights.
        if weights_signed && wb == pw.bits() - 1 {
            acc1 = -acc1;
        }
        // AC2 / OR: accumulate the weight bit plane at its significance.
        or_register += acc1 << wb;
    }
    or_register
}

/// Reference integer inner product used to cross-check the bit-serial model.
pub fn reference_inner_product(weights: &[i32], activations: &[i32]) -> i64 {
    weights
        .iter()
        .zip(activations.iter())
        .map(|(&w, &a)| i64::from(w) * i64::from(a))
        .sum()
}

/// A stateful SIP for cycle-by-cycle simulation (used by the functional engine
/// and the Section 2 walkthrough example). One instance corresponds to one SIP
/// in the grid; its lane count is configurable (16 in the real design, 2 in the
/// paper's illustrative example).
///
/// The weight registers are held as a packed plane word (one bit per lane), so
/// every cycle is a single `AND` + `count_ones()` — the same kernel as
/// [`crate::loom::packed::packed_inner_product`]. The bit-slice API
/// ([`load_weight_bits`](Self::load_weight_bits) / [`cycle`](Self::cycle))
/// remains for didactic callers and simply packs on the way in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sip {
    lanes: usize,
    weight_plane: u64,
    acc1: i64,
    or_register: i64,
    cycles: u64,
}

impl Sip {
    /// Creates a SIP with the given number of weight registers / lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` exceeds [`crate::loom::packed::MAX_LANES`].
    pub fn new(lanes: usize) -> Self {
        assert!(
            lanes <= crate::loom::packed::MAX_LANES,
            "a SIP holds at most {} lanes",
            crate::loom::packed::MAX_LANES
        );
        Sip {
            lanes,
            weight_plane: 0,
            acc1: 0,
            or_register: 0,
            cycles: 0,
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles this SIP has executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    fn lane_mask(&self) -> u64 {
        crate::loom::packed::lane_mask(self.lanes)
    }

    /// Loads one bit of each weight into the weight registers.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != lanes`.
    pub fn load_weight_bits(&mut self, bits: &[u8]) {
        assert_eq!(bits.len(), self.lanes, "one weight bit per lane");
        let mut plane = 0u64;
        for (lane, &bit) in bits.iter().enumerate() {
            plane |= u64::from(bit & 1) << lane;
        }
        self.weight_plane = plane;
    }

    /// Loads an already-packed weight bit plane (bit `i` = lane `i`) into the
    /// weight registers.
    ///
    /// # Panics
    ///
    /// Panics if `plane` has bits set beyond the SIP's lanes.
    pub fn load_weight_plane(&mut self, plane: u64) {
        assert_eq!(
            plane & !self.lane_mask(),
            0,
            "weight plane has bits beyond the {} lanes",
            self.lanes
        );
        self.weight_plane = plane;
    }

    /// Executes one cycle: multiplies the incoming activation bits (at
    /// significance `act_bit`) with the WR contents and accumulates into AC1.
    /// `negate` subtracts the partial sum, implementing the two's-complement
    /// MSB handling for signed activations.
    ///
    /// # Panics
    ///
    /// Panics if `activation_bits.len() != lanes`.
    pub fn cycle(&mut self, activation_bits: &[u8], act_bit: u8, negate: bool) {
        assert_eq!(
            activation_bits.len(),
            self.lanes,
            "one activation bit per lane"
        );
        let mut plane = 0u64;
        for (lane, &bit) in activation_bits.iter().enumerate() {
            plane |= u64::from(bit & 1) << lane;
        }
        self.cycle_packed(plane, act_bit, negate);
    }

    /// Executes one cycle on an already-packed activation bit plane: the
    /// 16-input AND + adder tree collapses to `(plane & WRs).count_ones()`.
    ///
    /// # Panics
    ///
    /// Panics if `plane` has bits set beyond the SIP's lanes.
    pub fn cycle_packed(&mut self, plane: u64, act_bit: u8, negate: bool) {
        assert_eq!(
            plane & !self.lane_mask(),
            0,
            "activation plane has bits beyond the {} lanes",
            self.lanes
        );
        let mut partial = i64::from((plane & self.weight_plane).count_ones());
        if negate {
            partial = -partial;
        }
        self.acc1 += partial << act_bit;
        self.cycles += 1;
    }

    /// Commits the finished weight-bit plane into the output register at
    /// significance `weight_bit` and clears AC1. `negate` implements the
    /// two's-complement MSB handling for signed weights.
    pub fn commit_weight_bit(&mut self, weight_bit: u8, negate: bool) {
        let plane = if negate { -self.acc1 } else { self.acc1 };
        self.or_register += plane << weight_bit;
        self.acc1 = 0;
    }

    /// Adds a cascaded partial sum from the neighbouring SIP (the multiplexer
    /// after AC1 in Figure 3).
    pub fn cascade_in(&mut self, partial: i64) {
        self.or_register += partial;
    }

    /// The accumulated output activation.
    pub fn output(&self) -> i64 {
        self.or_register
    }

    /// Applies the SIP's max comparator (used for max-pooling support).
    pub fn max_with(&mut self, value: i64) {
        self.or_register = self.or_register.max(value);
    }

    /// Clears all accumulator state for the next output.
    pub fn reset(&mut self) {
        self.acc1 = 0;
        self.or_register = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::fixed::required_precision;

    #[test]
    fn matches_reference_for_small_signed_operands() {
        let weights = vec![-3, 2, 0, -1];
        let activations = vec![1, -2, 3, 2];
        let pw = required_precision(&weights);
        let pa = required_precision(&activations);
        assert_eq!(
            serial_inner_product(&weights, &activations, pw, pa, true, true),
            reference_inner_product(&weights, &activations)
        );
    }

    #[test]
    fn matches_reference_for_unsigned_activations() {
        let weights = vec![-100, 37, 12, -8, 0, 1, 55, -61];
        let activations = vec![0, 5, 255, 128, 7, 33, 100, 1];
        assert_eq!(
            serial_inner_product(
                &weights,
                &activations,
                Precision::new(8).unwrap(),
                Precision::new(8).unwrap(),
                true,
                false
            ),
            reference_inner_product(&weights, &activations)
        );
    }

    #[test]
    fn full_sixteen_bit_operands_are_exact() {
        let weights = vec![i32::from(i16::MIN), i32::from(i16::MAX), -12345, 31000];
        let activations = vec![i32::from(i16::MAX), i32::from(i16::MIN), 29876, -30000];
        assert_eq!(
            serial_inner_product(
                &weights,
                &activations,
                Precision::FULL,
                Precision::FULL,
                true,
                true
            ),
            reference_inner_product(&weights, &activations)
        );
    }

    #[test]
    fn one_bit_weights_behave_like_masks() {
        let weights = vec![1, 0, 1, 1];
        let activations = vec![9, 7, 3, 1];
        assert_eq!(
            serial_inner_product(
                &weights,
                &activations,
                Precision::new(1).unwrap(),
                Precision::new(4).unwrap(),
                false,
                false
            ),
            13
        );
    }

    #[test]
    fn paper_example_two_bit_engine() {
        // The Section 2 example: 2-bit activations and weights, two lanes per
        // subunit. Subunit (0,0) computes w0·a for filter 0.
        let a = vec![2, 3]; // a0, a1
        let w_filter0 = vec![1, 3];
        let p2 = Precision::new(2).unwrap();
        let expected = reference_inner_product(&w_filter0, &a);
        assert_eq!(
            serial_inner_product(&w_filter0, &a, p2, p2, false, false),
            expected
        );
    }

    #[test]
    fn stateful_sip_reproduces_one_shot_function() {
        let weights = vec![-5, 3, 7, -2];
        let activations = vec![4, 1, -3, 6];
        let pw = required_precision(&weights);
        let pa = required_precision(&activations);
        let mut sip = Sip::new(4);
        for wb in 0..pw.bits() {
            let bits: Vec<u8> = weights.iter().map(|&w| bit_of(w, wb)).collect();
            sip.load_weight_bits(&bits);
            for ab in 0..pa.bits() {
                let a_bits: Vec<u8> = activations.iter().map(|&a| bit_of(a, ab)).collect();
                sip.cycle(&a_bits, ab, ab == pa.bits() - 1);
            }
            sip.commit_weight_bit(wb, wb == pw.bits() - 1);
        }
        assert_eq!(
            sip.output(),
            reference_inner_product(&weights, &activations)
        );
        assert_eq!(sip.cycles(), u64::from(pw.bits()) * u64::from(pa.bits()));
        sip.reset();
        assert_eq!(sip.output(), 0);
    }

    #[test]
    fn cascade_and_max_support() {
        let mut sip = Sip::new(2);
        sip.cascade_in(10);
        assert_eq!(sip.output(), 10);
        sip.max_with(25);
        assert_eq!(sip.output(), 25);
        sip.max_with(3);
        assert_eq!(sip.output(), 25);
    }

    #[test]
    #[should_panic(expected = "one weight bit per lane")]
    fn wrong_lane_count_panics() {
        let mut sip = Sip::new(4);
        sip.load_weight_bits(&[1, 0]);
    }

    #[test]
    fn packed_cycle_path_matches_bit_slice_path() {
        use crate::loom::packed::BitplaneBlock;
        let weights = vec![-5, 3, 7, -2, 11, -13];
        let activations = vec![4, 1, -3, 6, -7, 2];
        let pw = required_precision(&weights);
        let pa = required_precision(&activations);
        let w_block = BitplaneBlock::pack(&weights);
        let a_block = BitplaneBlock::pack(&activations);

        let mut slice_sip = Sip::new(weights.len());
        let mut plane_sip = Sip::new(weights.len());
        for wb in 0..pw.bits() {
            let bits: Vec<u8> = weights.iter().map(|&w| bit_of(w, wb)).collect();
            slice_sip.load_weight_bits(&bits);
            plane_sip.load_weight_plane(w_block.plane(wb));
            for ab in 0..pa.bits() {
                let a_bits: Vec<u8> = activations.iter().map(|&a| bit_of(a, ab)).collect();
                let negate = ab == pa.bits() - 1;
                slice_sip.cycle(&a_bits, ab, negate);
                plane_sip.cycle_packed(a_block.plane(ab), ab, negate);
            }
            slice_sip.commit_weight_bit(wb, wb == pw.bits() - 1);
            plane_sip.commit_weight_bit(wb, wb == pw.bits() - 1);
        }
        assert_eq!(slice_sip, plane_sip);
        assert_eq!(
            plane_sip.output(),
            reference_inner_product(&weights, &activations)
        );
    }

    #[test]
    #[should_panic(expected = "beyond the 4 lanes")]
    fn out_of_lane_plane_bits_panic() {
        let mut sip = Sip::new(4);
        sip.load_weight_plane(0b10000);
    }
}
