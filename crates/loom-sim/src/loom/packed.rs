//! The packed SIP datapath: bit planes as words, AND + popcount as the adder
//! tree. This is the single-word (64-lane) form; [`super::wide`] widens the
//! same construction to 256 lanes per block and is what the engine runs by
//! default — this module stays as the intermediate cross-check tier between
//! the bit-serial model and the SIMD-wide datapath.
//!
//! [`super::sip::serial_inner_product`] models the SIP of Figure 3 one bit ×
//! one lane at a time, which is faithful but slow. The observation this module
//! exploits is that a SIP cycle — 16 single-bit AND gates feeding a 16-input
//! adder tree — is exactly a word-wide `AND` followed by `count_ones()` once
//! the operands are *transposed*: instead of one word per lane holding all of
//! a value's bits, keep one word per **bit plane** holding that bit of every
//! lane. [`BitplaneBlock`] performs the transpose (up to 64 lanes per block),
//! and [`packed_inner_product`] then evaluates each (weight-bit,
//! activation-bit) plane pair with a single AND + popcount, applying the same
//! two's-complement MSB negation and shift-accumulate schedule as the serial
//! model. The arithmetic is identical term by term — only the order in which
//! the one-bit products of a plane pair are summed changes, and integer
//! addition is associative — so the result is bit-identical by construction
//! (and pinned so by the property suite in `tests/functional_equivalence.rs`,
//! which covers both block widths, ragged tails, 1–16-bit precisions and all
//! four signedness combinations).
//!
//! [`MagnitudeOr`] gives the dynamic precision detectors the same treatment:
//! the per-group OR-tree + leading-one detector of the hardware becomes an OR
//! fold over already-packed planes, with no per-group `Vec` materialised. The
//! wide engine reproduces the identical fold over its `[u64; 4]` plane words.

use loom_model::fixed::{bit_plane, sign_plane, Precision, MAX_PRECISION};

/// Maximum number of lanes a [`BitplaneBlock`] can hold: one lane per bit of
/// the plane word.
pub const MAX_LANES: usize = 64;

/// Mask with one bit set per lane (the all-lanes case needs care: `1 << 64`
/// would overflow the shift).
///
/// # Panics
///
/// Panics if `lanes > 64`.
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= MAX_LANES, "at most {MAX_LANES} lanes");
    if lanes == MAX_LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

/// Up to 64 lanes of operands, transposed into one `u64` word per bit plane.
///
/// Bit `i` of [`plane`](Self::plane)`(b)` is bit `b` of lane `i`'s
/// two's-complement encoding; [`sign_mask`](Self::sign_mask) marks the
/// negative lanes. Packing happens once, after which every use of the block —
/// inner products against any number of other blocks, precision detection —
/// costs a handful of word operations per bit plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitplaneBlock {
    lanes: usize,
    planes: [u64; MAX_PRECISION as usize],
    signs: u64,
}

impl BitplaneBlock {
    /// Transposes `values` into bit-plane form.
    ///
    /// Values are captured to [`MAX_PRECISION`] (16) planes — the paper's
    /// fixed-point baseline. As with the serial datapath, operands must be
    /// representable in the precision later passed to
    /// [`packed_inner_product`].
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > 64`.
    pub fn pack(values: &[i32]) -> Self {
        assert!(
            values.len() <= MAX_LANES,
            "a BitplaneBlock holds at most {MAX_LANES} lanes, got {}",
            values.len()
        );
        let mut planes = [0u64; MAX_PRECISION as usize];
        for (bit, plane) in planes.iter_mut().enumerate() {
            *plane = bit_plane(values, bit as u8);
        }
        BitplaneBlock {
            lanes: values.len(),
            planes,
            signs: sign_plane(values),
        }
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask with one bit set per packed lane.
    pub fn lane_mask(&self) -> u64 {
        lane_mask(self.lanes)
    }

    /// The word holding bit `bit` of every lane.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 16`.
    pub fn plane(&self, bit: u8) -> u64 {
        self.planes[usize::from(bit)]
    }

    /// Mask of the lanes holding negative values.
    pub fn sign_mask(&self) -> u64 {
        self.signs
    }

    /// The word holding, for every lane, whether bit `bit` differs from the
    /// lane's sign bit — the "magnitude" view the precision detectors consume
    /// (a two's-complement value needs `b + 2` bits where `b` is its highest
    /// bit differing from the sign, and `b + 1` bits unsigned).
    pub fn magnitude_plane(&self, bit: u8) -> u64 {
        self.planes[usize::from(bit)] ^ self.signs
    }

    /// Reconstructs the packed values (inverse of [`pack`](Self::pack) for
    /// operands representable in 16-bit two's complement).
    pub fn unpack(&self) -> Vec<i32> {
        (0..self.lanes)
            .map(|lane| {
                let mut v: u32 = 0;
                for bit in 0..MAX_PRECISION {
                    v |= ((self.planes[usize::from(bit)] >> lane & 1) as u32) << bit;
                }
                if self.signs >> lane & 1 == 1 {
                    v |= !0u32 << MAX_PRECISION;
                }
                v as i32
            })
            .collect()
    }
}

/// The plane-pair loop shared by the portable and `popcnt`-enabled entry
/// points. The activation MSB negation is applied as a branchless correction
/// after an unsigned accumulation (subtracting the MSB term twice equals
/// negating it), which is the same exact i64 sum the serial schedule produces,
/// just reassociated.
#[inline(always)]
fn product_core(
    w_planes: &[u64],
    a_planes: &[u64],
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    let pa_msb = a_planes.len() - 1;
    let mut or_register = 0i64;
    for (wb, &w_plane) in w_planes.iter().enumerate() {
        // AC1: accumulate over the activation bit planes.
        let mut acc1 = 0i64;
        for (ab, &a_plane) in a_planes.iter().enumerate() {
            acc1 += i64::from((w_plane & a_plane).count_ones()) << ab;
        }
        if activations_signed {
            // The MSB activation plane is subtracted, not added: remove it twice.
            acc1 -= i64::from((w_plane & a_planes[pa_msb]).count_ones()) << (pa_msb + 1);
        }
        // Negation block: the weight MSB plane is subtracted for signed weights.
        if weights_signed && wb == w_planes.len() - 1 {
            acc1 = -acc1;
        }
        or_register += acc1 << wb;
    }
    or_register
}

/// `product_core` compiled with the `popcnt` instruction enabled; the baseline
/// x86-64 target lowers `count_ones` to a ~12-op bit hack, which dominates the
/// kernel. Runtime feature detection keeps the binary portable.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "popcnt")]
unsafe fn product_core_popcnt(
    w_planes: &[u64],
    a_planes: &[u64],
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    product_core(w_planes, a_planes, weights_signed, activations_signed)
}

/// Computes the inner product of two packed blocks exactly the way
/// [`super::sip::serial_inner_product`] does — the same weight-bit outer /
/// activation-bit inner schedule, the same MSB negations — but with each
/// (weight-bit, activation-bit) plane pair evaluated as one
/// `(w & a).count_ones()` instead of a loop over lanes.
///
/// The blocks may have different lane counts: missing lanes pack as zero
/// planes and contribute nothing, matching a SIP whose surplus weight
/// registers hold zeros.
pub fn packed_inner_product(
    weights: &BitplaneBlock,
    activations: &BitplaneBlock,
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    let w_planes = &weights.planes[..usize::from(pw.bits())];
    let a_planes = &activations.planes[..usize::from(pa.bits())];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("popcnt") {
            // SAFETY: the `popcnt` feature was just detected at runtime.
            return unsafe {
                product_core_popcnt(w_planes, a_planes, weights_signed, activations_signed)
            };
        }
    }
    product_core(w_planes, a_planes, weights_signed, activations_signed)
}

/// Convenience wrapper: packs both slices and takes their
/// [`packed_inner_product`]. Use the block form to amortise packing when an
/// operand is reused.
///
/// # Panics
///
/// Panics if the slices have different lengths or more than 64 lanes.
pub fn packed_inner_product_slices(
    weights: &[i32],
    activations: &[i32],
    pw: Precision,
    pa: Precision,
    weights_signed: bool,
    activations_signed: bool,
) -> i64 {
    assert_eq!(
        weights.len(),
        activations.len(),
        "weights and activations must pair up lane by lane"
    );
    packed_inner_product(
        &BitplaneBlock::pack(weights),
        &BitplaneBlock::pack(activations),
        pw,
        pa,
        weights_signed,
        activations_signed,
    )
}

/// Allocation-free precision detection over packed blocks: the software image
/// of the per-group OR tree + leading-one detector.
///
/// Absorbing a block ORs its [`magnitude planes`](BitplaneBlock::magnitude_plane)
/// into the fold; [`detected_precision`](Self::detected_precision) then reads
/// the highest non-empty plane. For signed values this equals
/// [`loom_model::fixed::required_precision`] over the same values, and for
/// non-negative values it equals
/// [`loom_model::fixed::required_unsigned_precision`] — without ever
/// materialising the group in a `Vec`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MagnitudeOr {
    planes: [u64; MAX_PRECISION as usize],
}

impl MagnitudeOr {
    /// An empty fold (detects the 1-bit minimum precision).
    pub fn new() -> Self {
        Self::default()
    }

    /// ORs a block's magnitude planes into the fold.
    pub fn absorb(&mut self, block: &BitplaneBlock) {
        for (bit, plane) in self.planes.iter_mut().enumerate() {
            *plane |= block.magnitude_plane(bit as u8);
        }
    }

    /// The smallest precision covering every absorbed value: signed
    /// two's-complement width when `signed`, magnitude bits otherwise (the
    /// unsigned reading assumes the absorbed values were non-negative, as
    /// post-ReLU activations are).
    pub fn detected_precision(&self, signed: bool) -> Precision {
        let highest = (0..MAX_PRECISION)
            .rev()
            .find(|&bit| self.planes[usize::from(bit)] != 0);
        match highest {
            None => Precision::saturating(1),
            Some(bit) => Precision::saturating(bit + if signed { 2 } else { 1 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loom::sip::{reference_inner_product, serial_inner_product};
    use loom_model::fixed::{required_precision, required_unsigned_precision};

    #[test]
    fn pack_roundtrips_sixteen_bit_values() {
        let values = vec![0, 1, -1, 32767, -32768, 1234, -4321];
        let block = BitplaneBlock::pack(&values);
        assert_eq!(block.lanes(), values.len());
        assert_eq!(block.unpack(), values);
        assert_eq!(block.lane_mask(), 0b111_1111);
        assert_eq!(block.sign_mask(), 0b101_0100);
    }

    #[test]
    fn pack_roundtrips_all_64_lanes() {
        let values: Vec<i32> = (0..64).map(|i| i * 1021 - 31000).collect();
        let block = BitplaneBlock::pack(&values);
        assert_eq!(block.lane_mask(), u64::MAX);
        assert_eq!(block.unpack(), values);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn pack_rejects_more_than_64_lanes() {
        BitplaneBlock::pack(&[0; 65]);
    }

    #[test]
    fn packed_matches_serial_and_reference() {
        let weights = vec![-3, 2, 0, -1, 7, -8];
        let activations = vec![1, -2, 3, 2, -4, 5];
        let pw = required_precision(&weights);
        let pa = required_precision(&activations);
        let packed = packed_inner_product_slices(&weights, &activations, pw, pa, true, true);
        assert_eq!(
            packed,
            serial_inner_product(&weights, &activations, pw, pa, true, true)
        );
        assert_eq!(packed, reference_inner_product(&weights, &activations));
    }

    #[test]
    fn mismatched_lane_counts_treat_missing_lanes_as_zero() {
        let weights = BitplaneBlock::pack(&[3, 5, 7, 9]);
        let activations = BitplaneBlock::pack(&[2, 4]);
        let p = Precision::new(5).unwrap();
        assert_eq!(
            packed_inner_product(&weights, &activations, p, p, false, false),
            3 * 2 + 5 * 4
        );
    }

    #[test]
    fn magnitude_or_matches_vec_based_detectors() {
        let signed_groups: [&[i32]; 4] = [&[0, 0], &[1, -1, 3], &[127, -128], &[-1, -1]];
        for values in signed_groups {
            let mut fold = MagnitudeOr::new();
            fold.absorb(&BitplaneBlock::pack(values));
            assert_eq!(
                fold.detected_precision(true),
                required_precision(values),
                "signed {values:?}"
            );
        }
        let unsigned_groups: [&[i32]; 3] = [&[0], &[1, 2, 3], &[255, 17]];
        for values in unsigned_groups {
            let mut fold = MagnitudeOr::new();
            fold.absorb(&BitplaneBlock::pack(values));
            assert_eq!(
                fold.detected_precision(false),
                required_unsigned_precision(values),
                "unsigned {values:?}"
            );
        }
    }

    #[test]
    fn magnitude_or_folds_across_blocks() {
        let mut fold = MagnitudeOr::new();
        fold.absorb(&BitplaneBlock::pack(&[1, 2]));
        fold.absorb(&BitplaneBlock::pack(&[-100]));
        fold.absorb(&BitplaneBlock::pack(&[0, 0, 0]));
        assert_eq!(
            fold.detected_precision(true),
            required_precision(&[1, 2, -100, 0, 0, 0])
        );
        let empty = MagnitudeOr::new();
        assert_eq!(empty.detected_precision(true).bits(), 1);
        assert_eq!(empty.detected_precision(false).bits(), 1);
    }
}
