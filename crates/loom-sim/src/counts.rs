//! Simulation results: per-layer and per-network cycle counts and traffic.

use loom_mem::traffic::{LayerTraffic, StoragePrecision};
use std::fmt;

/// Which class of layer a simulation record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Convolutional layer (CVL).
    Conv,
    /// Fully-connected layer (FCL).
    FullyConnected,
    /// Pooling or other non-inner-product layer.
    Other,
}

/// The simulated execution of one layer on one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSim {
    /// Layer name.
    pub layer_name: String,
    /// Layer class.
    pub class: LayerClass,
    /// Multiply-accumulate operations the layer performs.
    pub macs: u64,
    /// Compute cycles the accelerator spends on the layer.
    pub cycles: u64,
    /// Fraction of the datapath that was doing useful work, averaged over the
    /// layer (1.0 = perfectly utilised).
    pub utilization: f64,
    /// The precision the accelerator stores this layer's data at (16 bits for
    /// the baseline; the profile precisions for Loom).
    pub storage: StoragePrecision,
    /// Bits moved for the layer at that storage precision.
    pub traffic: LayerTraffic,
}

impl LayerSim {
    /// Whether this is a compute (conv or FC) layer.
    pub fn is_compute(&self) -> bool {
        matches!(self.class, LayerClass::Conv | LayerClass::FullyConnected)
    }
}

/// The simulated execution of a whole network on one accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSim {
    /// Accelerator name (e.g. `DPNN`, `Loom 1-bit`).
    pub accelerator: String,
    /// Network name.
    pub network: String,
    /// Per-layer records in network order.
    pub layers: Vec<LayerSim>,
}

impl NetworkSim {
    /// Total compute cycles over all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Compute cycles over the convolutional layers only.
    pub fn conv_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.class == LayerClass::Conv)
            .map(|l| l.cycles)
            .sum()
    }

    /// Compute cycles over the fully-connected layers only.
    pub fn fc_cycles(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.class == LayerClass::FullyConnected)
            .map(|l| l.cycles)
            .sum()
    }

    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Total traffic over all layers at the accelerator's storage precisions.
    pub fn total_traffic(&self) -> LayerTraffic {
        self.layers
            .iter()
            .fold(LayerTraffic::default(), |acc, l| acc.add(&l.traffic))
    }

    /// MAC-weighted average datapath utilisation.
    pub fn average_utilization(&self) -> f64 {
        let total: u64 = self
            .layers
            .iter()
            .filter(|l| l.is_compute())
            .map(|l| l.macs)
            .sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .filter(|l| l.is_compute())
            .map(|l| l.utilization * l.macs as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Speedup of this run relative to `baseline` over all layers
    /// (`baseline_cycles / self_cycles`).
    pub fn speedup_vs(&self, baseline: &NetworkSim) -> f64 {
        ratio(baseline.total_cycles(), self.total_cycles())
    }

    /// Speedup over the convolutional layers only.
    pub fn conv_speedup_vs(&self, baseline: &NetworkSim) -> f64 {
        ratio(baseline.conv_cycles(), self.conv_cycles())
    }

    /// Speedup over the fully-connected layers only.
    pub fn fc_speedup_vs(&self, baseline: &NetworkSim) -> f64 {
        ratio(baseline.fc_cycles(), self.fc_cycles())
    }
}

impl fmt::Display for NetworkSim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {} cycles ({} layers)",
            self.network,
            self.accelerator,
            self.total_cycles(),
            self.layers.len()
        )
    }
}

fn ratio(baseline: u64, this: u64) -> f64 {
    if this == 0 {
        if baseline == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        baseline as f64 / this as f64
    }
}

/// Geometric mean of a slice of positive ratios, the aggregation the paper
/// uses for its cross-network summaries.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, class: LayerClass, macs: u64, cycles: u64) -> LayerSim {
        LayerSim {
            layer_name: name.to_string(),
            class,
            macs,
            cycles,
            utilization: 1.0,
            storage: StoragePrecision::baseline(),
            traffic: LayerTraffic {
                weight_bits: macs,
                input_activation_bits: 10,
                output_activation_bits: 10,
            },
        }
    }

    fn sim(name: &str, cycles: &[(LayerClass, u64)]) -> NetworkSim {
        NetworkSim {
            accelerator: name.to_string(),
            network: "test".to_string(),
            layers: cycles
                .iter()
                .enumerate()
                .map(|(i, (c, cy))| layer(&format!("l{i}"), *c, 100, *cy))
                .collect(),
        }
    }

    #[test]
    fn totals_split_by_layer_class() {
        let s = sim(
            "X",
            &[
                (LayerClass::Conv, 100),
                (LayerClass::FullyConnected, 50),
                (LayerClass::Other, 0),
                (LayerClass::Conv, 30),
            ],
        );
        assert_eq!(s.total_cycles(), 180);
        assert_eq!(s.conv_cycles(), 130);
        assert_eq!(s.fc_cycles(), 50);
        assert_eq!(s.total_macs(), 400);
        assert!(s.to_string().contains("180 cycles"));
    }

    #[test]
    fn speedups_are_baseline_over_this() {
        let dpnn = sim(
            "DPNN",
            &[(LayerClass::Conv, 400), (LayerClass::FullyConnected, 100)],
        );
        let lm = sim(
            "LM",
            &[(LayerClass::Conv, 100), (LayerClass::FullyConnected, 50)],
        );
        assert_eq!(lm.speedup_vs(&dpnn), 500.0 / 150.0);
        assert_eq!(lm.conv_speedup_vs(&dpnn), 4.0);
        assert_eq!(lm.fc_speedup_vs(&dpnn), 2.0);
    }

    #[test]
    fn zero_cycle_ratios_are_well_defined() {
        let empty = sim("A", &[]);
        let other = sim("B", &[(LayerClass::Conv, 10)]);
        assert_eq!(empty.speedup_vs(&empty), 1.0);
        assert_eq!(empty.fc_speedup_vs(&other), 1.0);
        assert!(other.speedup_vs(&empty).is_finite() || other.total_cycles() > 0);
    }

    #[test]
    fn traffic_accumulates_over_layers() {
        let s = sim("X", &[(LayerClass::Conv, 1), (LayerClass::Conv, 1)]);
        assert_eq!(s.total_traffic().weight_bits, 200);
        assert_eq!(s.total_traffic().total_bits(), 240);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn utilization_is_mac_weighted() {
        let mut s = sim("X", &[(LayerClass::Conv, 10), (LayerClass::Conv, 10)]);
        s.layers[0].utilization = 0.5;
        s.layers[0].macs = 300;
        s.layers[1].utilization = 1.0;
        s.layers[1].macs = 100;
        let u = s.average_utilization();
        assert!((u - (0.5 * 300.0 + 1.0 * 100.0) / 400.0).abs() < 1e-12);
    }
}
