//! The first-class accelerator abstraction: every evaluated datapath (DPNN,
//! Stripes, Dynamic Stripes, the Loom variants) is an implementation of the
//! [`Accelerator`] trait, and the [`Registry`] replaces the per-datapath
//! `match` dispatch that used to live inside the simulation engine.
//!
//! Adding a new backend means writing one impl of [`Accelerator`] and
//! registering it; the engine, the experiment plumbing, the tables and the
//! CSV export all consume the trait and need no changes (see
//! `docs/ARCHITECTURE.md`, "Accelerator trait & sweep runner"). Backends
//! that additionally override [`Accelerator::functional_datapath`] get pulled
//! into the differential conformance harness automatically: every registered
//! functional datapath is run over the zoo and checked bit-exact against the
//! golden model and every other backend.

use crate::config::{DpnnGeometry, EquivalentConfig, LoomGeometry, LoomVariant};
use crate::counts::{LayerClass, LayerSim, NetworkSim};
use crate::datapath::{
    FunctionalDStripes, FunctionalDatapath, FunctionalDpnn, FunctionalStripes, LoomDatapath,
};
use crate::engine::{AcceleratorKind, PrecisionAssignment};
use crate::loom::schedule::{conv_schedule, fc_schedule};
use crate::{dpnn, stripes};
use loom_mem::traffic::{layer_traffic, StoragePrecision};
use loom_model::layer::{ConvSpec, FcSpec, LayerKind};
use loom_model::network::Network;
use loom_model::Precision;
use loom_precision::trace::LayerPrecisionSpec;
use std::fmt;

/// Everything an accelerator needs to simulate one layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerContext<'a> {
    /// Layer name (for the simulation record).
    pub name: &'a str,
    /// Layer geometry and class.
    pub layer: &'a LayerKind,
    /// Precision information for the layer.
    pub precision: &'a LayerPrecisionSpec,
}

/// Datapath shape metadata an [`Accelerator`] reports about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeometrySummary {
    /// Rows of the compute grid (inner-product units for DPNN-style tiles,
    /// filter rows of SIPs for Loom).
    pub rows: usize,
    /// Columns of the compute grid (activation lanes for DPNN-style tiles,
    /// window columns for Loom).
    pub columns: usize,
    /// Equivalent peak 16b×16b MACs per cycle (the normalisation every
    /// comparison in the paper uses).
    pub equivalent_macs_per_cycle: usize,
}

/// A simulated datapath: per-layer cycle/traffic modelling plus identifying
/// metadata. Implementations must be [`Send`] + [`Sync`] so the parallel
/// sweep runner can share them across worker threads.
pub trait Accelerator: Send + Sync {
    /// The serializable key identifying this accelerator (tables, CSV export
    /// and the energy model key off it).
    fn kind(&self) -> AcceleratorKind;

    /// Human-readable name used in reports (defaults to the kind's display
    /// form).
    fn name(&self) -> String {
        self.kind().to_string()
    }

    /// The shape of the compute grid at this design point.
    fn geometry(&self) -> GeometrySummary;

    /// The precision this accelerator stores a layer's data at (drives the
    /// bit-traffic accounting).
    fn storage_precision(&self, ctx: &LayerContext<'_>) -> StoragePrecision;

    /// Cycle count and datapath utilization for a convolutional layer.
    fn conv_cycles(&self, spec: &ConvSpec, precision: &LayerPrecisionSpec) -> (u64, f64);

    /// Cycle count and datapath utilization for a fully-connected layer.
    fn fc_cycles(&self, spec: &FcSpec, precision: &LayerPrecisionSpec) -> (u64, f64);

    /// The functional (value-computing) image of this datapath, if it has
    /// one: an engine that executes real layers bit-exactly and accounts
    /// cycles consistently with the analytic model above. Backends that
    /// return one are cross-validated against the golden model and every
    /// other registered backend by [`crate::validate::cross_validate`] — so
    /// overriding this default is all it takes to opt a new accelerator into
    /// the differential conformance harness. `threads` is the worker budget
    /// for engines that fan layer jobs across a pool.
    fn functional_datapath(&self, threads: usize) -> Option<Box<dyn FunctionalDatapath>> {
        let _ = threads;
        None
    }

    /// Simulates a single layer: cycles from the class-specific kernel,
    /// traffic priced at this accelerator's storage precision.
    fn simulate_layer(&self, ctx: &LayerContext<'_>) -> LayerSim {
        let storage = self.storage_precision(ctx);
        let traffic = layer_traffic(ctx.layer, storage);
        let (class, cycles, utilization) = match ctx.layer {
            LayerKind::Conv(spec) => {
                let (cycles, utilization) = self.conv_cycles(spec, ctx.precision);
                (LayerClass::Conv, cycles, utilization)
            }
            LayerKind::FullyConnected(spec) => {
                let (cycles, utilization) = self.fc_cycles(spec, ctx.precision);
                (LayerClass::FullyConnected, cycles, utilization)
            }
            LayerKind::MaxPool(_) => (LayerClass::Other, 0, 1.0),
        };
        LayerSim {
            layer_name: ctx.name.to_string(),
            class,
            macs: ctx.layer.macs(),
            cycles,
            utilization,
            storage,
            traffic,
        }
    }

    /// Simulates a whole network under a per-compute-layer precision
    /// assignment (non-compute layers run at full precision).
    fn simulate_network(&self, network: &Network, assignment: &PrecisionAssignment) -> NetworkSim {
        let mut layers = Vec::with_capacity(network.layers().len());
        let mut compute_idx = 0usize;
        for layer in network.layers() {
            let precision = if layer.kind.is_compute() {
                let spec = assignment.for_layer(compute_idx);
                compute_idx += 1;
                spec
            } else {
                LayerPrecisionSpec::full_precision_static()
            };
            layers.push(self.simulate_layer(&LayerContext {
                name: &layer.name,
                layer: &layer.kind,
                precision,
            }));
        }
        NetworkSim {
            accelerator: self.name(),
            network: network.name().to_string(),
            layers,
        }
    }
}

/// The bit-parallel DaDianNao-style baseline: 16-bit datapath, 16-bit
/// storage, insensitive to precisions.
#[derive(Debug, Clone, Copy)]
pub struct Dpnn {
    geometry: DpnnGeometry,
}

impl Dpnn {
    /// Creates the baseline at the given design point.
    pub fn new(config: EquivalentConfig) -> Self {
        Dpnn {
            geometry: config.dpnn(),
        }
    }
}

impl Accelerator for Dpnn {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::Dpnn
    }

    fn geometry(&self) -> GeometrySummary {
        GeometrySummary {
            rows: self.geometry.filters,
            columns: self.geometry.lanes,
            equivalent_macs_per_cycle: self.geometry.macs_per_cycle(),
        }
    }

    fn storage_precision(&self, _ctx: &LayerContext<'_>) -> StoragePrecision {
        StoragePrecision::baseline()
    }

    fn conv_cycles(&self, spec: &ConvSpec, _precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            dpnn::conv_cycles(&self.geometry, spec),
            dpnn::conv_utilization(&self.geometry, spec),
        )
    }

    fn fc_cycles(&self, spec: &FcSpec, _precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            dpnn::fc_cycles(&self.geometry, spec),
            dpnn::fc_utilization(&self.geometry, spec),
        )
    }

    fn functional_datapath(&self, _threads: usize) -> Option<Box<dyn FunctionalDatapath>> {
        Some(Box::new(FunctionalDpnn::new(self.geometry)))
    }
}

/// Stripes: bit-serial activations with static per-layer precisions,
/// convolutional layers only (FCLs fall back to the bit-parallel schedule).
#[derive(Debug, Clone, Copy)]
pub struct Stripes {
    geometry: DpnnGeometry,
}

impl Stripes {
    /// Creates the Stripes comparator at the given design point.
    pub fn new(config: EquivalentConfig) -> Self {
        Stripes {
            geometry: config.dpnn(),
        }
    }
}

impl Accelerator for Stripes {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::Stripes
    }

    fn geometry(&self) -> GeometrySummary {
        GeometrySummary {
            rows: self.geometry.filters,
            columns: self.geometry.lanes,
            equivalent_macs_per_cycle: self.geometry.macs_per_cycle(),
        }
    }

    fn storage_precision(&self, ctx: &LayerContext<'_>) -> StoragePrecision {
        stripes_storage(ctx)
    }

    fn conv_cycles(&self, spec: &ConvSpec, precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            stripes::conv_cycles_static(&self.geometry, spec, precision.activation),
            dpnn::conv_utilization(&self.geometry, spec),
        )
    }

    fn fc_cycles(&self, spec: &FcSpec, _precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            dpnn::fc_cycles(&self.geometry, spec),
            dpnn::fc_utilization(&self.geometry, spec),
        )
    }

    fn functional_datapath(&self, _threads: usize) -> Option<Box<dyn FunctionalDatapath>> {
        Some(Box::new(FunctionalStripes::new(self.geometry)))
    }
}

/// Dynamic Stripes: Stripes plus runtime per-group activation precisions.
#[derive(Debug, Clone, Copy)]
pub struct DStripes {
    geometry: DpnnGeometry,
}

impl DStripes {
    /// Creates the Dynamic Stripes comparator at the given design point.
    pub fn new(config: EquivalentConfig) -> Self {
        DStripes {
            geometry: config.dpnn(),
        }
    }
}

impl Accelerator for DStripes {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::DStripes
    }

    fn geometry(&self) -> GeometrySummary {
        GeometrySummary {
            rows: self.geometry.filters,
            columns: self.geometry.lanes,
            equivalent_macs_per_cycle: self.geometry.macs_per_cycle(),
        }
    }

    fn storage_precision(&self, ctx: &LayerContext<'_>) -> StoragePrecision {
        stripes_storage(ctx)
    }

    fn conv_cycles(&self, spec: &ConvSpec, precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            stripes::conv_cycles_dynamic(
                &self.geometry,
                spec,
                precision.activation,
                &precision.dynamic_activation,
            ),
            dpnn::conv_utilization(&self.geometry, spec),
        )
    }

    fn fc_cycles(&self, spec: &FcSpec, _precision: &LayerPrecisionSpec) -> (u64, f64) {
        (
            dpnn::fc_cycles(&self.geometry, spec),
            dpnn::fc_utilization(&self.geometry, spec),
        )
    }

    fn functional_datapath(&self, _threads: usize) -> Option<Box<dyn FunctionalDatapath>> {
        Some(Box::new(FunctionalDStripes::new(self.geometry)))
    }
}

/// Both Stripes variants keep a bit-serial memory interface for conv-layer
/// activations only; weights and FCL data stay at the full 16 bits.
fn stripes_storage(ctx: &LayerContext<'_>) -> StoragePrecision {
    if ctx.layer.is_conv() {
        StoragePrecision::packed(ctx.precision.activation, Precision::FULL)
    } else {
        StoragePrecision::baseline()
    }
}

/// Loom: bit-serial weights × activations at 1, 2 or 4 activation bits per
/// cycle, with packed storage for both operand streams.
#[derive(Debug, Clone, Copy)]
pub struct Loom {
    variant: LoomVariant,
    geometry: LoomGeometry,
}

impl Loom {
    /// Creates the Loom datapath for `variant` at the given design point.
    pub fn new(config: EquivalentConfig, variant: LoomVariant) -> Self {
        Loom {
            variant,
            geometry: config.loom(variant),
        }
    }

    /// Creates a Loom datapath over an explicit SIP-grid geometry (e.g. the
    /// aspect-ratio study's non-square arrangements).
    pub fn with_geometry(variant: LoomVariant, geometry: LoomGeometry) -> Self {
        Loom { variant, geometry }
    }

    /// The bits-per-cycle variant this instance models.
    pub fn variant(&self) -> LoomVariant {
        self.variant
    }
}

impl Accelerator for Loom {
    fn kind(&self) -> AcceleratorKind {
        AcceleratorKind::Loom(self.variant)
    }

    fn geometry(&self) -> GeometrySummary {
        GeometrySummary {
            rows: self.geometry.filter_rows,
            columns: self.geometry.window_columns,
            equivalent_macs_per_cycle: self.geometry.bit_products_per_cycle() / 256,
        }
    }

    fn storage_precision(&self, ctx: &LayerContext<'_>) -> StoragePrecision {
        StoragePrecision::packed(ctx.precision.activation, ctx.precision.weight)
    }

    fn conv_cycles(&self, spec: &ConvSpec, precision: &LayerPrecisionSpec) -> (u64, f64) {
        let r = conv_schedule(&self.geometry, spec, precision);
        (r.cycles, r.utilization)
    }

    fn fc_cycles(&self, spec: &FcSpec, precision: &LayerPrecisionSpec) -> (u64, f64) {
        let r = fc_schedule(&self.geometry, spec, precision, true);
        (r.cycles, r.utilization)
    }

    fn functional_datapath(&self, threads: usize) -> Option<Box<dyn FunctionalDatapath>> {
        Some(Box::new(LoomDatapath::new(self.geometry, threads)))
    }
}

/// Instantiates the built-in accelerator for `kind` at `config`. This is the
/// single place the datapath enumeration is mapped to implementations.
pub fn build(kind: AcceleratorKind, config: EquivalentConfig) -> Box<dyn Accelerator> {
    match kind {
        AcceleratorKind::Dpnn => Box::new(Dpnn::new(config)),
        AcceleratorKind::Stripes => Box::new(Stripes::new(config)),
        AcceleratorKind::DStripes => Box::new(DStripes::new(config)),
        AcceleratorKind::Loom(variant) => Box::new(Loom::new(config, variant)),
    }
}

/// The set of accelerators a [`crate::engine::Simulator`] dispatches over,
/// keyed by [`AcceleratorKind`]. Registering an accelerator whose `kind()`
/// is already present replaces the previous entry, so experiments can swap a
/// custom implementation in behind an existing key.
pub struct Registry {
    config: EquivalentConfig,
    entries: Vec<Box<dyn Accelerator>>,
}

impl Registry {
    /// An empty registry at the given design point.
    pub fn empty(config: EquivalentConfig) -> Self {
        Registry {
            config,
            entries: Vec::new(),
        }
    }

    /// A registry holding all six paper accelerators, in Figure 4 plot order.
    pub fn with_defaults(config: EquivalentConfig) -> Self {
        let mut registry = Registry::empty(config);
        for kind in AcceleratorKind::all() {
            registry.register(build(kind, config));
        }
        registry
    }

    /// The design point this registry's accelerators were built for.
    pub fn config(&self) -> EquivalentConfig {
        self.config
    }

    /// Registers an accelerator, replacing any previous entry with the same
    /// kind.
    pub fn register(&mut self, accelerator: Box<dyn Accelerator>) {
        let kind = accelerator.kind();
        if let Some(existing) = self.entries.iter_mut().find(|a| a.kind() == kind) {
            *existing = accelerator;
        } else {
            self.entries.push(accelerator);
        }
    }

    /// Looks up the accelerator registered for `kind`.
    pub fn get(&self, kind: AcceleratorKind) -> Option<&dyn Accelerator> {
        self.entries
            .iter()
            .find(|a| a.kind() == kind)
            .map(|a| a.as_ref())
    }

    /// Iterates the registered accelerators in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Accelerator> {
        self.entries.iter().map(|a| a.as_ref())
    }

    /// The kinds currently registered, in registration order.
    pub fn kinds(&self) -> Vec<AcceleratorKind> {
        self.entries.iter().map(|a| a.kind()).collect()
    }

    /// Number of registered accelerators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry holds no accelerators.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("config", &self.config)
            .field("kinds", &self.kinds())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::assignment_from_profile;
    use loom_model::zoo;
    use loom_precision::{table1, AccuracyTarget};

    #[test]
    fn registry_holds_all_six_defaults_in_figure4_order() {
        let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
        assert_eq!(registry.len(), 6);
        assert!(!registry.is_empty());
        assert_eq!(registry.kinds(), AcceleratorKind::all());
        for kind in AcceleratorKind::all() {
            let acc = registry.get(kind).expect("default registered");
            assert_eq!(acc.kind(), kind);
            assert_eq!(acc.name(), kind.to_string());
        }
        assert!(format!("{registry:?}").contains("Registry"));
    }

    #[test]
    fn register_replaces_same_kind_entry() {
        let cfg = EquivalentConfig::BASELINE_128;
        let mut registry = Registry::empty(cfg);
        assert!(registry.get(AcceleratorKind::Dpnn).is_none());
        registry.register(Box::new(Dpnn::new(cfg)));
        registry.register(Box::new(Dpnn::new(cfg)));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.config(), cfg);
    }

    #[test]
    fn geometries_are_bandwidth_normalised() {
        let cfg = EquivalentConfig::BASELINE_128;
        for acc in Registry::with_defaults(cfg).iter() {
            let g = acc.geometry();
            assert_eq!(
                g.equivalent_macs_per_cycle,
                cfg.macs_per_cycle(),
                "{}",
                acc.name()
            );
            assert!(g.rows > 0 && g.columns > 0);
        }
    }

    #[test]
    fn every_default_accelerator_exposes_a_functional_datapath() {
        let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
        for acc in registry.iter() {
            assert!(
                acc.functional_datapath(1).is_some(),
                "{} has no functional datapath",
                acc.name()
            );
        }
    }

    #[test]
    fn loom_impl_exposes_its_variant() {
        let lm = Loom::new(EquivalentConfig::BASELINE_128, LoomVariant::Lm2b);
        assert_eq!(lm.variant(), LoomVariant::Lm2b);
        assert_eq!(lm.kind(), AcceleratorKind::Loom(LoomVariant::Lm2b));
        assert_eq!(lm.geometry().columns, 8);
    }

    #[test]
    fn trait_network_simulation_orders_loom_above_dstripes() {
        let net = zoo::alexnet();
        let profile = table1::profile("AlexNet", AccuracyTarget::Lossless).unwrap();
        let assignment = assignment_from_profile(&net, &profile, Some(0.8), None);
        let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
        let dpnn = registry
            .get(AcceleratorKind::Dpnn)
            .unwrap()
            .simulate_network(&net, &assignment);
        let ds = registry
            .get(AcceleratorKind::DStripes)
            .unwrap()
            .simulate_network(&net, &assignment);
        let lm = registry
            .get(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap()
            .simulate_network(&net, &assignment);
        assert!(lm.conv_speedup_vs(&dpnn) > ds.conv_speedup_vs(&dpnn));
        assert_eq!(dpnn.layers.len(), net.layers().len());
    }
}
