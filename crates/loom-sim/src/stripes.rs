//! Stripes and Dynamic-Stripes comparators (§4, \[7\] and \[5\] in the paper).
//!
//! Stripes processes *activations* bit-serially while keeping weights
//! bit-parallel, so its convolutional-layer execution time scales with the
//! per-layer activation precision (`16 / Pa` ideal speedup) but it gains
//! nothing on fully-connected layers. Dynamic Stripes (DStripes) additionally
//! trims activation precisions at runtime per group, exactly like Loom does.
//!
//! The tile matches DPNN's peak compute bandwidth: it processes 16 windows
//! concurrently (compensating for bit-serial activations with window
//! parallelism), `k` filters and 16-long weight chunks per step, each step
//! taking `Pa` cycles.
//!
//! These are the *analytic* cycle models; the value-computing counterparts
//! ([`crate::datapath::FunctionalStripes`] and
//! [`crate::datapath::FunctionalDStripes`]) execute the same schedule on real
//! tensors, bit-exact against the golden reference, and report cycle counts
//! that equal these formulas by construction.

use crate::config::DpnnGeometry;
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::Precision;
use loom_precision::trace::GroupPrecisionSource;

/// Number of windows a Stripes tile processes concurrently.
pub const STRIPES_WINDOW_PARALLELISM: u64 = 16;

/// Compute cycles Stripes spends on a convolutional layer with per-layer
/// (static) activation precision `pa`.
pub fn conv_cycles_static(geometry: &DpnnGeometry, spec: &ConvSpec, pa: Precision) -> u64 {
    conv_cycles_dynamic(geometry, spec, pa, &GroupPrecisionSource::Nominal)
}

/// Compute cycles with a runtime per-group activation precision source
/// (DStripes). Each step processes one group of `16 windows × 16 activations`,
/// and its cost is that group's detected precision.
pub fn conv_cycles_dynamic(
    geometry: &DpnnGeometry,
    spec: &ConvSpec,
    pa: Precision,
    dynamic: &GroupPrecisionSource,
) -> u64 {
    let window_groups = (spec.windows() as u64).div_ceil(STRIPES_WINDOW_PARALLELISM);
    let filter_groups = (spec.filters as u64).div_ceil(geometry.filters as u64);
    let weight_chunks = (spec.weights_per_filter() as u64).div_ceil(geometry.lanes as u64);
    let mut cycles = 0.0f64;
    let mut group_index = 0usize;
    for _w in 0..window_groups {
        for _c in 0..weight_chunks {
            let eff = dynamic.effective_bits(pa, group_index);
            group_index += 1;
            cycles += eff * filter_groups as f64;
        }
    }
    cycles.ceil() as u64
}

/// Compute cycles Stripes/DStripes spend on a fully-connected layer: identical
/// to the bit-parallel baseline, because without weight reuse there is no time
/// to feed activations bit-serially without losing throughput (Table 2 shows
/// Stripes FCL performance of 1.00× and efficiency of 0.88×).
pub fn fc_cycles(geometry: &DpnnGeometry, spec: &FcSpec) -> u64 {
    crate::dpnn::fc_cycles(geometry, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;
    use crate::dpnn;

    fn geo() -> DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    fn square_conv(pa_independent: bool) -> ConvSpec {
        let _ = pa_independent;
        ConvSpec {
            in_channels: 64,
            in_height: 18,
            in_width: 18,
            filters: 128,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        }
    }

    #[test]
    fn sixteen_bit_activations_match_dpnn() {
        let spec = square_conv(true);
        let stripes = conv_cycles_static(&geo(), &spec, Precision::FULL);
        let baseline = dpnn::conv_cycles(&geo(), &spec);
        // Equality up to the rounding of windows into groups of 16.
        let ratio = stripes as f64 / baseline as f64;
        assert!((0.99..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn speedup_tracks_activation_precision() {
        let spec = square_conv(true);
        let baseline = conv_cycles_static(&geo(), &spec, Precision::FULL);
        let at8 = conv_cycles_static(&geo(), &spec, Precision::new(8).unwrap());
        let speedup = baseline as f64 / at8 as f64;
        assert!((1.9..=2.1).contains(&speedup), "got {speedup}");
    }

    #[test]
    fn dynamic_reduction_improves_on_static() {
        let spec = square_conv(true);
        let pa = Precision::new(10).unwrap();
        let static_cycles = conv_cycles_static(&geo(), &spec, pa);
        let dynamic_cycles = conv_cycles_dynamic(
            &geo(),
            &spec,
            pa,
            &GroupPrecisionSource::Scaled { fraction: 0.8 },
        );
        assert!(dynamic_cycles < static_cycles);
        assert!(dynamic_cycles as f64 >= static_cycles as f64 * 0.75);
    }

    #[test]
    fn fc_gets_no_benefit() {
        let spec = FcSpec::new(4096, 4096);
        assert_eq!(fc_cycles(&geo(), &spec), dpnn::fc_cycles(&geo(), &spec));
    }

    #[test]
    fn explicit_group_precisions_are_respected() {
        let spec = ConvSpec {
            in_channels: 16,
            in_height: 8,
            in_width: 8,
            filters: 8,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        };
        // 64 windows -> 4 window groups, 1 chunk, 1 filter group.
        let groups = GroupPrecisionSource::Explicit(vec![
            Precision::new(2).unwrap(),
            Precision::new(4).unwrap(),
            Precision::new(6).unwrap(),
            Precision::new(8).unwrap(),
        ]);
        let cycles = conv_cycles_dynamic(&geo(), &spec, Precision::new(8).unwrap(), &groups);
        assert_eq!(cycles, 2 + 4 + 6 + 8);
    }
}
