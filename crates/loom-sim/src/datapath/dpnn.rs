//! Functional DPNN datapath: the fixed-precision bit-parallel baseline.
//!
//! DPNN (the DaDianNao-style tile of §3.1) multiplies 16-bit operands in
//! parallel: each cycle broadcasts one 16-long activation chunk to `k`
//! inner-product units, one filter each. Precision never changes its
//! schedule, so its cycle count is exactly the analytic
//! [`crate::dpnn::conv_cycles`] / [`crate::dpnn::fc_cycles`] tile-loop count
//! — the functional path iterates the very same tiles and accumulates wide
//! (i64), making it bit-exact against the golden model by construction. It is
//! still worth running differentially: it anchors the conformance harness's
//! cross-backend agreement (every serial datapath must land on the same
//! numbers the parallel one does).

use crate::config::DpnnGeometry;
use crate::datapath::FunctionalDatapath;
use crate::dpnn;
use crate::loom::functional::FunctionalRun;
use loom_model::im2col::window_patch_into;
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

/// The functional DPNN datapath: bit-parallel 16-lane chunks, `k` filters per
/// cycle, precision-independent scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalDpnn {
    geometry: DpnnGeometry,
}

impl FunctionalDpnn {
    /// Creates a DPNN datapath over the bit-parallel tile geometry.
    pub fn new(geometry: DpnnGeometry) -> Self {
        FunctionalDpnn { geometry }
    }

    /// Runs a convolutional layer: per window, each filter's weights stream
    /// through 16-lane chunks against the window's im2col patch.
    pub fn run_conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun {
        assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
        assert_eq!(
            weights.shape(),
            spec.weight_shape(),
            "weight shape mismatch"
        );
        let windows = spec.windows();
        let out_w = spec.out_width();
        let wpf = spec.weights_per_filter();
        let lanes = self.geometry.lanes;
        let chunks = wpf.div_ceil(lanes);
        let group_in = spec.in_channels / spec.groups;
        let group_out = spec.filters / spec.groups;

        let mut outputs = vec![0i64; spec.filters * windows];
        let mut patch = Vec::new();
        for w in 0..windows {
            let (oy, ox) = (w / out_w, w % out_w);
            for g in 0..spec.groups {
                patch.clear();
                window_patch_into(spec, input, oy, ox, g * group_in, group_in, &mut patch);
                for k in g * group_out..(g + 1) * group_out {
                    let filter = weights.filter(k);
                    let mut acc = 0i64;
                    for chunk in 0..chunks {
                        let base = chunk * lanes;
                        let count = lanes.min(wpf - base);
                        acc += chunk_dot(&filter[base..base + count], &patch[base..base + count]);
                    }
                    outputs[k * windows + w] = acc;
                }
            }
        }
        FunctionalRun {
            outputs,
            cycles: dpnn::conv_cycles(&self.geometry, spec),
            reduced_groups: 0,
        }
    }

    /// Runs a fully-connected layer through the same bit-parallel tiles.
    pub fn run_fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        fc_bit_parallel(&self.geometry, spec, input, weights)
    }
}

impl FunctionalDatapath for FunctionalDpnn {
    fn conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun {
        self.run_conv(spec, input, weights)
    }

    fn fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        self.run_fc(spec, input, weights)
    }
}

/// The shared bit-parallel fully-connected path: every comparator (DPNN,
/// Stripes, DStripes) runs FCLs this way, because without weight reuse the
/// serial datapaths gain nothing and fall back to the baseline schedule.
pub(crate) fn fc_bit_parallel(
    geometry: &DpnnGeometry,
    spec: &FcSpec,
    input: &[i32],
    weights: &[i32],
) -> FunctionalRun {
    assert_eq!(input.len(), spec.in_features, "input length mismatch");
    assert_eq!(
        weights.len(),
        spec.in_features * spec.out_features,
        "weight length mismatch"
    );
    let lanes = geometry.lanes;
    let chunks = spec.in_features.div_ceil(lanes);
    let outputs = (0..spec.out_features)
        .map(|k| {
            let row = &weights[k * spec.in_features..(k + 1) * spec.in_features];
            let mut acc = 0i64;
            for chunk in 0..chunks {
                let base = chunk * lanes;
                let count = lanes.min(spec.in_features - base);
                acc += chunk_dot(&row[base..base + count], &input[base..base + count]);
            }
            acc
        })
        .collect();
    FunctionalRun {
        outputs,
        cycles: dpnn::fc_cycles(geometry, spec),
        reduced_groups: 0,
    }
}

/// One cycle's worth of MACs: a 16-lane bit-parallel multiply feeding the
/// wide adder tree.
fn chunk_dot(weights: &[i32], activations: &[i32]) -> i64 {
    weights
        .iter()
        .zip(activations.iter())
        .map(|(&w, &a)| i64::from(w) * i64::from(a))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;
    use loom_model::reference::{conv_forward, fc_forward};
    use loom_model::synthetic::{synthetic_activations, synthetic_weights, ValueDistribution};
    use loom_model::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geo() -> DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    #[test]
    fn conv_matches_golden_with_grouped_filters_and_ragged_chunks() {
        // 2 groups and a weights-per-filter count that is not a multiple of
        // 16, so the last chunk is ragged.
        let spec = ConvSpec {
            groups: 2,
            padding: 1,
            ..ConvSpec::simple(6, 7, 7, 4, 3)
        };
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                Precision::new(8).unwrap(),
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                Precision::new(8).unwrap(),
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let run = FunctionalDpnn::new(geo()).run_conv(&spec, &input, &weights);
        assert_eq!(run.outputs, conv_forward(&spec, &input, &weights));
        assert_eq!(run.cycles, dpnn::conv_cycles(&geo(), &spec));
        assert_eq!(run.reduced_groups, 0);
    }

    #[test]
    fn fc_matches_golden() {
        let spec = FcSpec::new(37, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let input = synthetic_activations(
            &mut rng,
            spec.in_features,
            Precision::new(9).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(
            &mut rng,
            spec.in_features * spec.out_features,
            Precision::new(9).unwrap(),
            ValueDistribution::weights(),
        );
        let run = FunctionalDpnn::new(geo()).run_fc(&spec, &input, &weights);
        assert_eq!(run.outputs, fc_forward(&spec, &input, &weights));
        assert_eq!(run.cycles, dpnn::fc_cycles(&geo(), &spec));
    }
}
