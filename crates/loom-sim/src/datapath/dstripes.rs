//! Functional Dynamic Stripes datapath: Stripes plus runtime per-group
//! activation precision detection.
//!
//! DStripes shares the Stripes tile but watches the activations it is about
//! to feed: before each (window group × weight chunk) step, an OR tree over
//! the 16 windows × 16 lanes activation block measures how many bits the
//! block actually needs, and the serial feed stops there. The functional
//! engine (`conv_serial_activations`, shared with the Stripes backend)
//! performs exactly that measurement, truncates its operands to the detected
//! width (a no-op when detection is correct — and a loud conformance failure
//! when it is not), and reports the measured per-group precisions so tests
//! can replay them through the analytic
//! [`crate::stripes::conv_cycles_dynamic`] and demand exact cycle agreement.

use crate::config::DpnnGeometry;
use crate::datapath::dpnn::fc_bit_parallel;
use crate::datapath::stripes::{conv_serial_activations, StripesConvRun};
use crate::datapath::FunctionalDatapath;
use crate::loom::functional::FunctionalRun;
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

/// The functional Dynamic Stripes datapath: activation-serial convolutions
/// with runtime per-group precision detection, bit-parallel FCLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalDStripes {
    geometry: DpnnGeometry,
}

impl FunctionalDStripes {
    /// Creates a DStripes datapath over the bit-parallel tile geometry.
    pub fn new(geometry: DpnnGeometry) -> Self {
        FunctionalDStripes { geometry }
    }

    /// Runs a convolutional layer with runtime per-group activation
    /// precision detection. The returned
    /// [`StripesConvRun::group_precisions`] are the widths the detector
    /// measured, in the analytic model's group order.
    pub fn run_conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> StripesConvRun {
        conv_serial_activations(&self.geometry, spec, input, weights, true)
    }

    /// Runs a fully-connected layer, bit-parallel like DPNN (detection buys
    /// nothing without weight reuse).
    pub fn run_fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        fc_bit_parallel(&self.geometry, spec, input, weights)
    }
}

impl FunctionalDatapath for FunctionalDStripes {
    fn conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun {
        self.run_conv(spec, input, weights).run
    }

    fn fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        self.run_fc(spec, input, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;
    use crate::stripes;
    use loom_model::fixed::required_precision;
    use loom_model::reference::conv_forward;
    use loom_model::synthetic::{synthetic_weights, ValueDistribution};
    use loom_model::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geo() -> DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    #[test]
    fn detection_reduces_cycles_and_replays_through_the_analytic_model() {
        // A 1×1 conv whose activations are tiny everywhere except one planted
        // 8-magnitude-bit value: the layer precision is 9 bits but nearly
        // every 16-window × 16-lane group detects far fewer.
        let spec = ConvSpec::simple(16, 12, 12, 8, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut values: Vec<i32> = (0..spec.input_shape().len() as i32)
            .map(|i| i % 4)
            .collect();
        values[0] = 255;
        let input = Tensor3::from_vec(spec.input_shape(), values).unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                Precision::new(8).unwrap(),
                ValueDistribution::weights(),
            ),
        )
        .unwrap();

        let run = FunctionalDStripes::new(geo()).run_conv(&spec, &input, &weights);
        // Bit-exact despite truncating to detected widths.
        assert_eq!(run.run.outputs, conv_forward(&spec, &input, &weights));
        // Synthetic sparse data must trigger reduction below static Stripes.
        let pa = required_precision(input.as_slice());
        let static_cycles = stripes::conv_cycles_static(&geo(), &spec, pa);
        assert!(run.run.cycles < static_cycles);
        assert!(run.run.reduced_groups > 0);
        // The measured group precisions replayed through the analytic model
        // reproduce the functional cycle count exactly.
        let replayed = stripes::conv_cycles_dynamic(&geo(), &spec, pa, &run.explicit_source());
        assert_eq!(run.run.cycles, replayed);
        assert_eq!(run.nominal_activation, pa);
    }
}
