//! Functional Stripes datapath: bit-serial activations, bit-parallel weights.
//!
//! A Stripes tile compensates for serial activations with window parallelism:
//! every step broadcasts one 16-long weight chunk to
//! [`STRIPES_WINDOW_PARALLELISM`] windows at once and feeds the matching
//! activations one bit per cycle, so a step costs `Pa` cycles (the layer's
//! activation precision). The didactic per-bit recipe lives in
//! [`serial_activation_inner_product`]; the engine's hot path evaluates the
//! same sum as a truncate-then-multiply per lane, which the in-module proptest
//! pins bit-identical to the serial recipe. The truncation is deliberately
//! kept in the hot path: if precision detection ever under-measures a group,
//! the error shows up as a wrong *value* in the differential conformance
//! harness, not just a wrong cycle count.
//!
//! Cycle accounting walks (window group × weight chunk) steps in exactly the
//! order of the analytic model ([`crate::stripes::conv_cycles_dynamic`]), so
//! the functional count reproduces the analytic one by construction — a
//! property the conformance suite asserts on the zoo.

use crate::config::DpnnGeometry;
use crate::datapath::dpnn::fc_bit_parallel;
use crate::datapath::FunctionalDatapath;
use crate::loom::functional::FunctionalRun;
use crate::stripes::STRIPES_WINDOW_PARALLELISM;
use loom_model::fixed::{bit_of, required_precision, signed_bits, truncate_to_precision};
use loom_model::im2col::window_patch_into;
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};
use loom_model::Precision;
use loom_precision::trace::GroupPrecisionSource;

/// The functional Stripes datapath: activation-serial convolutions at the
/// layer's *static* activation precision, bit-parallel (DPNN-identical)
/// fully-connected layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalStripes {
    geometry: DpnnGeometry,
}

impl FunctionalStripes {
    /// Creates a Stripes datapath over the bit-parallel tile geometry.
    pub fn new(geometry: DpnnGeometry) -> Self {
        FunctionalStripes { geometry }
    }

    /// Runs a convolutional layer with the static per-layer activation
    /// precision derived from the input data itself.
    pub fn run_conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> StripesConvRun {
        conv_serial_activations(&self.geometry, spec, input, weights, false)
    }

    /// Runs a fully-connected layer. Without weight reuse there is no time to
    /// feed activations bit-serially, so FCLs execute exactly like DPNN.
    pub fn run_fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        fc_bit_parallel(&self.geometry, spec, input, weights)
    }
}

impl FunctionalDatapath for FunctionalStripes {
    fn conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun {
        self.run_conv(spec, input, weights).run
    }

    fn fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        self.run_fc(spec, input, weights)
    }
}

/// A Stripes-family convolution run, with the per-step activation precisions
/// the datapath actually fed — the hook that lets tests close the loop
/// against the analytic model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripesConvRun {
    /// Outputs (golden layout), cycles, and reduced-group count.
    pub run: FunctionalRun,
    /// The layer's nominal activation precision (from the input data).
    pub nominal_activation: Precision,
    /// Effective activation precision of every (window group × weight chunk)
    /// step, in the analytic model's group order.
    pub group_precisions: Vec<Precision>,
}

impl StripesConvRun {
    /// The measured per-group precisions as an analytic-model source: feeding
    /// this to [`crate::stripes::conv_cycles_dynamic`] with
    /// [`StripesConvRun::nominal_activation`] reproduces
    /// [`FunctionalRun::cycles`] exactly.
    pub fn explicit_source(&self) -> GroupPrecisionSource {
        GroupPrecisionSource::Explicit(self.group_precisions.clone())
    }
}

/// The shared Stripes/DStripes convolution engine. `dynamic` enables runtime
/// per-group activation precision detection (DStripes); without it every step
/// runs at the layer's nominal precision (Stripes).
///
/// Steps iterate window groups (outer) then weight chunks (inner) — the same
/// group order as [`crate::stripes::conv_cycles_dynamic`] — and each step
/// costs its effective precision times the number of filter groups. Detection
/// shares one step across every conv group's lanes, so (like the Loom engine)
/// grouped convolutions conservatively fall back to the layer precision.
pub(crate) fn conv_serial_activations(
    geometry: &DpnnGeometry,
    spec: &ConvSpec,
    input: &Tensor3,
    weights: &Tensor4,
    dynamic: bool,
) -> StripesConvRun {
    assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
    assert_eq!(
        weights.shape(),
        spec.weight_shape(),
        "weight shape mismatch"
    );
    let windows = spec.windows();
    let out_w = spec.out_width();
    let wpf = spec.weights_per_filter();
    let lanes = geometry.lanes;
    let chunks = wpf.div_ceil(lanes);
    let filter_groups = (spec.filters as u64).div_ceil(geometry.filters as u64);
    let group_in = spec.in_channels / spec.groups;
    let group_out = spec.filters / spec.groups;
    let window_parallelism = STRIPES_WINDOW_PARALLELISM as usize;

    let pa = required_precision(input.as_slice());
    let detect = dynamic && spec.groups == 1;

    let mut outputs = vec![0i64; spec.filters * windows];
    let mut cycles = 0u64;
    let mut reduced_groups = 0u64;
    let mut group_precisions = Vec::with_capacity(windows.div_ceil(window_parallelism) * chunks);
    let mut patches: Vec<Vec<i32>> = vec![Vec::new(); window_parallelism * spec.groups];

    for window_base in (0..windows).step_by(window_parallelism) {
        let group_windows = window_parallelism.min(windows - window_base);
        for i in 0..group_windows {
            let w = window_base + i;
            let (oy, ox) = (w / out_w, w % out_w);
            for g in 0..spec.groups {
                let patch = &mut patches[i * spec.groups + g];
                patch.clear();
                window_patch_into(spec, input, oy, ox, g * group_in, group_in, patch);
            }
        }
        for chunk in 0..chunks {
            let base = chunk * lanes;
            let count = lanes.min(wpf - base);
            // The detector sees the whole 16 windows × 16 lanes activation
            // block this step consumes, exactly like DStripes' OR tree.
            let eff = if detect {
                let mut need = 1u8;
                for patch in patches.iter().take(group_windows) {
                    for &a in &patch[base..base + count] {
                        need = need.max(signed_bits(a));
                    }
                }
                Precision::saturating(need).min(pa)
            } else {
                pa
            };
            group_precisions.push(eff);
            if eff < pa {
                reduced_groups += 1;
            }
            cycles += eff.bits_u64() * filter_groups;
            for i in 0..group_windows {
                let w = window_base + i;
                for k in 0..spec.filters {
                    let patch = &patches[i * spec.groups + k / group_out];
                    let filter = weights.filter(k);
                    outputs[k * windows + w] +=
                        chunk_dot(&filter[base..base + count], &patch[base..base + count], eff);
                }
            }
        }
    }
    StripesConvRun {
        run: FunctionalRun {
            outputs,
            cycles,
            reduced_groups,
        },
        nominal_activation: pa,
        group_precisions,
    }
}

/// The engine's hot-path form of one step's lane: truncate the activation to
/// the step's effective precision (the datapath-visible effect of feeding
/// `eff` serial bits) and multiply by the bit-parallel weight.
fn chunk_dot(weights: &[i32], activations: &[i32], eff: Precision) -> i64 {
    weights
        .iter()
        .zip(activations.iter())
        .map(|(&w, &a)| i64::from(w) * i64::from(truncate_to_precision(a, eff)))
        .sum()
}

/// One Stripes lane group exactly as the hardware executes it: weights stay
/// bit-parallel while activations stream in one bit per cycle, LSB first;
/// each cycle's partial sum is shifted into the accumulator, and — for signed
/// activations — the MSB cycle's contribution is negated (two's complement).
///
/// This is the didactic recipe the fast engine path is proven bit-identical
/// to (see the proptests below), mirroring how
/// [`crate::loom::sip::serial_inner_product`] anchors the Loom kernels.
pub fn serial_activation_inner_product(
    weights: &[i32],
    activations: &[i32],
    pa: Precision,
    activations_signed: bool,
) -> i64 {
    assert_eq!(weights.len(), activations.len(), "lane count mismatch");
    let mut acc = 0i64;
    for ab in 0..pa.bits() {
        let mut partial = 0i64;
        for (&w, &a) in weights.iter().zip(activations.iter()) {
            partial += i64::from(w) * i64::from(bit_of(a, ab));
        }
        if activations_signed && ab == pa.bits() - 1 {
            partial = -partial;
        }
        acc += partial << ab;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;
    use crate::stripes;
    use loom_model::reference::conv_forward;
    use loom_model::synthetic::{synthetic_activations, synthetic_weights, ValueDistribution};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geo() -> DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    fn conv_case(spec: &ConvSpec, seed: u64, pa: Precision, pw: Precision) -> (Tensor3, Tensor4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        (input, weights)
    }

    #[test]
    fn static_conv_matches_golden_and_analytic_model() {
        let spec = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(5, 9, 9, 7, 3)
        };
        let (input, weights) = conv_case(&spec, 11, Precision::new(7).unwrap(), Precision::FULL);
        let run = FunctionalStripes::new(geo()).run_conv(&spec, &input, &weights);
        let golden = conv_forward(&spec, &input, &weights);
        assert_eq!(run.run.outputs, golden);
        let pa = required_precision(input.as_slice());
        assert_eq!(
            run.run.cycles,
            stripes::conv_cycles_static(&geo(), &spec, pa)
        );
        assert_eq!(run.run.reduced_groups, 0);
        assert!(run.group_precisions.iter().all(|&p| p == pa));
    }

    #[test]
    fn grouped_conv_disables_detection_but_stays_exact() {
        let spec = ConvSpec {
            groups: 2,
            ..ConvSpec::simple(6, 8, 8, 4, 3)
        };
        let (input, weights) = conv_case(&spec, 3, Precision::new(6).unwrap(), Precision::FULL);
        for dynamic in [false, true] {
            let run = conv_serial_activations(&geo(), &spec, &input, &weights, dynamic);
            assert_eq!(run.run.outputs, conv_forward(&spec, &input, &weights));
            assert_eq!(run.run.reduced_groups, 0, "grouped convs stay nominal");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The didactic serial-activation recipe, the fast truncate-multiply
        /// path, and the plain i64 reference all agree — over ragged lane
        /// counts, every signedness combination, and zero blocks.
        #[test]
        fn serial_recipe_matches_fast_path(
            lanes in 1usize..=256,
            // 15 magnitude bits at most: a P-magnitude-bit unsigned draw
            // needs P+1 signed bits, and 16 is the datapath operand width.
            pa_bits in 1u8..=15,
            negate_w in any::<bool>(),
            negate_a in any::<bool>(),
            zero_block in any::<bool>(),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let pa = Precision::new(pa_bits).unwrap();
            // The generator draws unsigned activations (post-ReLU); flip
            // alternating lanes to cover signed serial feeds too.
            let mut activations = synthetic_activations(
                &mut rng, lanes, pa, ValueDistribution::activations());
            let mut weights = synthetic_weights(
                &mut rng, lanes, Precision::FULL, ValueDistribution::weights());
            if negate_a {
                for a in activations.iter_mut().step_by(2) {
                    *a = -*a;
                }
            }
            if !negate_w {
                for w in &mut weights {
                    *w = w.abs();
                }
            }
            if zero_block {
                let half = lanes / 2;
                activations[..half].fill(0);
            }
            // The precisions the engine would derive from this data.
            let eff = required_precision(&activations);
            let signed = activations.iter().any(|&a| a < 0);
            let reference: i64 = weights
                .iter()
                .zip(activations.iter())
                .map(|(&w, &a)| i64::from(w) * i64::from(a))
                .sum();
            let serial = serial_activation_inner_product(&weights, &activations, eff, signed);
            let fast = chunk_dot(&weights, &activations, eff);
            prop_assert_eq!(serial, reference);
            prop_assert_eq!(fast, reference);
        }
    }
}
