//! Functional comparator datapaths behind one seam.
//!
//! Every accelerator in the [`Registry`](crate::accelerator::Registry) — not
//! just Loom — can execute real networks and produce real numbers. This
//! module defines the [`FunctionalDatapath`] trait those value-computing
//! engines implement (activation-serial Stripes, dual-detection DStripes,
//! bit-parallel DPNN, and the bit-serial Loom engine itself), plus the
//! adapter that plugs any of them into the shared golden graph executor
//! ([`LayerGraph::run_batch_with`]) so scheduling, re-quantization, ReLU,
//! pooling and concatenation are literally the same code on every backend.
//!
//! The payoff is differential testing: [`crate::validate::cross_validate`]
//! runs every registered accelerator over the same network and asserts all of
//! them land bit-exactly on the golden model — and therefore on each other.
//! Adding a backend stays one `Accelerator` impl plus one registry entry;
//! overriding [`Accelerator::functional_datapath`](crate::accelerator::Accelerator::functional_datapath)
//! buys it conformance coverage for free.
//!
//! # Examples
//!
//! Run a network on the functional Stripes datapath and check it against the
//! golden model:
//!
//! ```
//! use loom_model::graph::LayerGraph;
//! use loom_model::inference::{InferenceOptions, NetworkParams};
//! use loom_model::layer::{ConvSpec, FcSpec};
//! use loom_model::network::NetworkBuilder;
//! use loom_model::tensor::{Shape3, Tensor3};
//! use loom_model::Precision;
//! use loom_sim::config::EquivalentConfig;
//! use loom_sim::datapath::{run_network, FunctionalStripes};
//!
//! let graph = LayerGraph::from_network(
//!     &NetworkBuilder::new("tiny")
//!         .conv("conv1", ConvSpec::simple(1, 6, 6, 2, 3))
//!         .fully_connected("fc1", FcSpec::new(2 * 4 * 4, 4))
//!         .build()
//!         .unwrap(),
//! );
//! let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(4).unwrap()], 1);
//! let input = Tensor3::from_vec(Shape3::new(1, 6, 6), (0..36).collect()).unwrap();
//! let options = InferenceOptions::default();
//!
//! let stripes = FunctionalStripes::new(EquivalentConfig::BASELINE_128.dpnn());
//! let run = run_network(&stripes, &graph, &params, &input, options).unwrap();
//! let golden = graph.run(&params, &input, options).unwrap();
//! assert_eq!(run.trace, golden);
//! assert!(run.cycles > 0);
//! ```

use crate::config::LoomGeometry;
use crate::loom::functional::{FunctionalLoom, FunctionalRun};
use crate::loom::NetworkRun;
use loom_model::fixed::required_precision;
use loom_model::graph::{GraphCompute, LayerGraph};
use loom_model::inference::{InferenceError, InferenceOptions, NetworkParams};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::tensor::{Tensor3, Tensor4};

pub mod dpnn;
pub mod dstripes;
pub mod stripes;

pub use dpnn::FunctionalDpnn;
pub use dstripes::FunctionalDStripes;
pub use stripes::{serial_activation_inner_product, FunctionalStripes, StripesConvRun};

/// A functional (value-computing) image of an accelerator's datapath.
///
/// Implementations compute real layer outputs — bit-exact against the golden
/// i64 reference — while accounting cycles the way the accelerator's
/// analytic model does. Per-layer precisions are derived from the data itself
/// ([`required_precision`] of the inputs and weights), so a run is
/// self-contained and deterministic.
pub trait FunctionalDatapath: Send + Sync {
    /// Computes one convolutional layer's accumulators (golden filter-major
    /// layout) plus the cycles and reduced-group count the datapath spent.
    fn conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun;

    /// Computes one fully-connected layer's accumulators (output order) plus
    /// cycle accounting.
    fn fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun;
}

/// The Loom engine as a [`FunctionalDatapath`]: the existing bit-serial SIP
/// grid ([`FunctionalLoom`]), with per-layer precisions derived from the data
/// exactly like [`crate::loom::NetworkEngine`] derives them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoomDatapath {
    engine: FunctionalLoom,
}

impl LoomDatapath {
    /// Wraps the functional Loom engine at the given geometry, fanning each
    /// layer across `threads` workers.
    pub fn new(geometry: LoomGeometry, threads: usize) -> Self {
        LoomDatapath {
            engine: FunctionalLoom::new(geometry).with_threads(threads),
        }
    }
}

impl FunctionalDatapath for LoomDatapath {
    fn conv(&self, spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> FunctionalRun {
        let pa = required_precision(input.as_slice());
        let pw = required_precision(weights.as_slice());
        self.engine.run_conv(spec, input, weights, pa, pw)
    }

    fn fc(&self, spec: &FcSpec, input: &[i32], weights: &[i32]) -> FunctionalRun {
        let pw = required_precision(weights);
        self.engine.run_fc(spec, input, weights, pw)
    }
}

/// Any [`FunctionalDatapath`] as a [`GraphCompute`] backend with per-item
/// cycle and reduced-group accounting, mirroring the Loom engine's private
/// adapter. The batch entry points are overridden so each item's cycles land
/// on that item, not on item zero.
struct DatapathCompute<'a> {
    backend: &'a dyn FunctionalDatapath,
    cycles: Vec<u64>,
    reduced_groups: Vec<u64>,
}

impl DatapathCompute<'_> {
    fn ensure_items(&mut self, items: usize) {
        if self.cycles.len() < items {
            self.cycles.resize(items, 0);
            self.reduced_groups.resize(items, 0);
        }
    }

    fn record(&mut self, item: usize, run: FunctionalRun) -> Vec<i64> {
        self.cycles[item] += run.cycles;
        self.reduced_groups[item] += run.reduced_groups;
        run.outputs
    }
}

impl GraphCompute for DatapathCompute<'_> {
    fn conv(
        &mut self,
        _layer: &str,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
    ) -> Vec<i64> {
        self.ensure_items(1);
        let run = self.backend.conv(spec, input, weights);
        self.record(0, run)
    }

    fn fc(&mut self, _layer: &str, spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64> {
        self.ensure_items(1);
        let run = self.backend.fc(spec, input, weights);
        self.record(0, run)
    }

    fn conv_batch(
        &mut self,
        _layer: &str,
        spec: &ConvSpec,
        inputs: &[Tensor3],
        weights: &Tensor4,
    ) -> Vec<Vec<i64>> {
        self.ensure_items(inputs.len());
        inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let run = self.backend.conv(spec, input, weights);
                self.record(i, run)
            })
            .collect()
    }

    fn fc_batch(
        &mut self,
        _layer: &str,
        spec: &FcSpec,
        inputs: &[Vec<i32>],
        weights: &[i32],
    ) -> Vec<Vec<i64>> {
        self.ensure_items(inputs.len());
        inputs
            .iter()
            .enumerate()
            .map(|(i, input)| {
                let run = self.backend.fc(spec, input, weights);
                self.record(i, run)
            })
            .collect()
    }
}

/// Runs one input through a graph on any functional datapath, sharing the
/// golden executor for everything that is not an inner product. Exactly
/// [`run_network_batch`] with a batch of one.
///
/// # Errors
///
/// As [`LayerGraph::run`]: shape mismatches, empty graphs, or malformed
/// concatenations.
pub fn run_network(
    backend: &dyn FunctionalDatapath,
    graph: &LayerGraph,
    params: &NetworkParams,
    input: &Tensor3,
    options: InferenceOptions,
) -> Result<NetworkRun, InferenceError> {
    Ok(
        run_network_batch(backend, graph, params, std::slice::from_ref(input), options)?
            .pop()
            .expect("one run per input"),
    )
}

/// Runs every input through a graph on any functional datapath, with
/// per-item cycle and reduced-group attribution.
///
/// # Errors
///
/// As [`LayerGraph::run_batch`].
pub fn run_network_batch(
    backend: &dyn FunctionalDatapath,
    graph: &LayerGraph,
    params: &NetworkParams,
    inputs: &[Tensor3],
    options: InferenceOptions,
) -> Result<Vec<NetworkRun>, InferenceError> {
    let mut compute = DatapathCompute {
        backend,
        cycles: vec![0; inputs.len()],
        reduced_groups: vec![0; inputs.len()],
    };
    let traces = graph.run_batch_with(params, inputs, options, &[], &mut compute)?;
    Ok(traces
        .into_iter()
        .zip(compute.cycles)
        .zip(compute.reduced_groups)
        .map(|((trace, cycles), reduced_groups)| NetworkRun {
            trace,
            cycles,
            reduced_groups,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;

    use loom_model::graph::{GraphBuilder, GRAPH_INPUT};
    use loom_model::synthetic::{synthetic_activations, ValueDistribution};
    use loom_model::tensor::Shape3;
    use loom_model::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branching_graph() -> LayerGraph {
        let b3 = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(4, 6, 6, 3, 3)
        };
        GraphBuilder::new("fork")
            .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 8, 8, 4, 3))
            .conv("b1", "stem", ConvSpec::simple(4, 6, 6, 2, 1))
            .conv("b3", "stem", b3)
            .concat("merge", &["b1", "b3"])
            .fully_connected("fc", "merge", FcSpec::new((2 + 3) * 36, 6))
            .build()
            .unwrap()
    }

    fn input(seed: u64) -> Tensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor3::from_vec(
            Shape3::new(2, 8, 8),
            synthetic_activations(
                &mut rng,
                2 * 8 * 8,
                Precision::new(8).unwrap(),
                ValueDistribution::activations(),
            ),
        )
        .unwrap()
    }

    #[test]
    fn every_builtin_datapath_matches_golden_on_a_branching_graph() {
        let graph = branching_graph();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(7).unwrap()], 3);
        let options = InferenceOptions::default();
        let inputs = [input(1), input(2)];
        let golden = graph.run_batch(&params, &inputs, options).unwrap();

        let geo = EquivalentConfig::BASELINE_128;
        let backends: Vec<(&str, Box<dyn FunctionalDatapath>)> = vec![
            ("dpnn", Box::new(FunctionalDpnn::new(geo.dpnn()))),
            ("stripes", Box::new(FunctionalStripes::new(geo.dpnn()))),
            ("dstripes", Box::new(FunctionalDStripes::new(geo.dpnn()))),
            (
                "loom",
                Box::new(LoomDatapath::new(
                    geo.loom(crate::config::LoomVariant::Lm1b),
                    2,
                )),
            ),
        ];
        for (name, backend) in &backends {
            let runs =
                run_network_batch(backend.as_ref(), &graph, &params, &inputs, options).unwrap();
            assert_eq!(runs.len(), 2, "{name}");
            for (run, golden) in runs.iter().zip(golden.iter()) {
                assert_eq!(&run.trace, golden, "{name} diverged from golden");
                assert!(run.cycles > 0, "{name}");
            }
            // Batch of N equals N batches of one.
            for (i, one) in inputs.iter().enumerate() {
                let single = run_network(backend.as_ref(), &graph, &params, one, options).unwrap();
                assert_eq!(&single, &runs[i], "{name} batch/single divergence");
            }
        }
    }
}
