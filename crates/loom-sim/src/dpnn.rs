//! DPNN: the bit-parallel, fixed-precision baseline (§3.1), a DaDianNao-style
//! tile with `N = 16` activation lanes broadcast to `k` inner-product units.
//!
//! Every cycle the tile consumes 16 activations and 16 weights per filter for
//! `k` filters. The cycle count of a layer therefore follows directly from the
//! tiling:
//!
//! * **CVL** — `windows × ceil(filters / k) × ceil(weights_per_filter / 16)`
//! * **FCL** — `ceil(outputs / k) × ceil(inputs / 16)`
//!
//! Pooling and activation functions are handled by dedicated units off the
//! critical path (as in DaDianNao) and contribute no datapath cycles.
//!
//! These are the *analytic* cycle models; the value-computing counterpart
//! ([`crate::datapath::FunctionalDpnn`]) executes the same tiling on real
//! tensors, bit-exact against the golden reference, and reports cycle counts
//! that equal these formulas by construction.

use crate::config::DpnnGeometry;
use loom_model::layer::{ConvSpec, FcSpec};

/// Compute cycles DPNN spends on a convolutional layer.
pub fn conv_cycles(geometry: &DpnnGeometry, spec: &ConvSpec) -> u64 {
    let windows = spec.windows() as u64;
    let filter_groups = (spec.filters as u64).div_ceil(geometry.filters as u64);
    let weight_chunks = (spec.weights_per_filter() as u64).div_ceil(geometry.lanes as u64);
    windows * filter_groups * weight_chunks
}

/// Compute cycles DPNN spends on a fully-connected layer.
pub fn fc_cycles(geometry: &DpnnGeometry, spec: &FcSpec) -> u64 {
    let output_groups = (spec.out_features as u64).div_ceil(geometry.filters as u64);
    let input_chunks = (spec.in_features as u64).div_ceil(geometry.lanes as u64);
    output_groups * input_chunks
}

/// Datapath utilisation of a convolutional layer: the fraction of the
/// `lanes × filters` MAC slots that perform useful work.
pub fn conv_utilization(geometry: &DpnnGeometry, spec: &ConvSpec) -> f64 {
    let ideal = spec.macs() as f64;
    let actual = conv_cycles(geometry, spec) as f64 * geometry.macs_per_cycle() as f64;
    (ideal / actual).min(1.0)
}

/// Datapath utilisation of a fully-connected layer.
pub fn fc_utilization(geometry: &DpnnGeometry, spec: &FcSpec) -> f64 {
    let ideal = spec.macs() as f64;
    let actual = fc_cycles(geometry, spec) as f64 * geometry.macs_per_cycle() as f64;
    (ideal / actual).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EquivalentConfig;

    fn geo() -> DpnnGeometry {
        EquivalentConfig::BASELINE_128.dpnn()
    }

    #[test]
    fn paper_quantum_takes_256_cycles() {
        // "DPNN would process 16 sets of 16 activations and 128 filters over
        // 256 cycles": a layer slice with 16 windows, 128 filters and 16-long
        // inner products.
        let spec = ConvSpec {
            in_channels: 16,
            in_height: 4,
            in_width: 4,
            filters: 128,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        };
        assert_eq!(spec.windows(), 16);
        assert_eq!(spec.weights_per_filter(), 16);
        assert_eq!(conv_cycles(&geo(), &spec), 256);
        assert_eq!(conv_utilization(&geo(), &spec), 1.0);
    }

    #[test]
    fn fc_quantum_matches_paper() {
        // 256 inputs × 128 outputs = 32768 MACs = 256 DPNN cycles.
        let spec = FcSpec::new(256, 128);
        assert_eq!(fc_cycles(&geo(), &spec), 256);
        assert_eq!(fc_utilization(&geo(), &spec), 1.0);
    }

    #[test]
    fn ragged_layers_round_up() {
        // 9 filters need two filter groups of 8; 17-long inner products need
        // two 16-wide chunks.
        let spec = ConvSpec {
            in_channels: 17,
            in_height: 3,
            in_width: 3,
            filters: 9,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
            groups: 1,
        };
        assert_eq!(conv_cycles(&geo(), &spec), 9 * 2 * 2);
        assert!(conv_utilization(&geo(), &spec) < 0.5);
    }

    #[test]
    fn cycles_scale_inversely_with_filter_count_of_the_tile() {
        let spec = FcSpec::new(4096, 4096);
        let small = EquivalentConfig::new(32).unwrap().dpnn();
        let large = EquivalentConfig::new(256).unwrap().dpnn();
        assert_eq!(fc_cycles(&small, &spec), 8 * fc_cycles(&large, &spec));
    }

    #[test]
    fn alexnet_conv_cycles_track_macs() {
        // A perfectly tiled approximation: cycles*128 should be within 2x of
        // the MAC count for real layers (under-utilisation only from rounding).
        let net = loom_model::zoo::alexnet();
        for (layer, spec) in net.conv_layers() {
            let cycles = conv_cycles(&geo(), spec);
            let ideal = layer.macs().div_ceil(128);
            assert!(cycles >= ideal, "{}", layer.name);
            assert!(
                cycles <= ideal * 2,
                "{}: {cycles} vs ideal {ideal}",
                layer.name
            );
        }
    }
}
