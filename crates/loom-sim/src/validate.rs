//! Cross-validation between models — functional vs analytic, and backend vs
//! backend.
//!
//! The repository carries two independent implementations of every
//! accelerator: a *functional* model ([`crate::loom::functional`] for Loom,
//! [`crate::datapath`] for the DPNN/Stripes/DStripes comparators), which
//! actually computes every output, and the *analytic* cycle models, which
//! only count cycles but run fast enough to sweep whole networks. This module
//! checks them against each other (and against the golden reference from
//! `loom-model`) on concrete layers, which is how the repository establishes
//! that the fast models used for every table and figure are trustworthy.
//!
//! [`cross_validate`] closes the loop at the network level: every accelerator
//! in a [`Registry`] that exposes a
//! [`functional_datapath`](crate::accelerator::Accelerator::functional_datapath)
//! runs the same inputs through the shared graph executor, and all of them
//! must land bit-exactly on the golden model — and therefore on each other.

use crate::accelerator::Registry;
use crate::config::LoomGeometry;
use crate::datapath::run_network_batch;
use crate::loom::functional::FunctionalLoom;
use crate::loom::schedule::{conv_schedule, fc_schedule};
use loom_model::layer::{ConvSpec, FcSpec};
use loom_model::reference::{conv_forward, fc_forward};
use loom_model::tensor::{Tensor3, Tensor4};
use loom_model::Precision;
use loom_precision::trace::LayerPrecisionSpec;
use std::fmt;

/// Outcome of validating one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Whether the functional model's outputs match the golden reference
    /// exactly.
    pub outputs_match: bool,
    /// Cycles reported by the functional model.
    pub functional_cycles: u64,
    /// Cycles reported by the analytic schedule.
    pub analytic_cycles: u64,
    /// Relative cycle disagreement `|functional - analytic| / analytic`.
    pub cycle_error: f64,
}

impl ValidationReport {
    /// Whether the two models agree: outputs are exact and the cycle counts
    /// differ by at most `tolerance` (relative).
    pub fn agrees_within(&self, tolerance: f64) -> bool {
        self.outputs_match && self.cycle_error <= tolerance
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outputs {} | functional {} cycles vs analytic {} cycles ({:.2}% apart)",
            if self.outputs_match {
                "exact"
            } else {
                "MISMATCH"
            },
            self.functional_cycles,
            self.analytic_cycles,
            self.cycle_error * 100.0
        )
    }
}

/// Validates a convolutional layer: the functional engine (dynamic precision
/// disabled, so both models see the same static precisions) must produce the
/// reference outputs and a cycle count matching the analytic schedule.
pub fn validate_conv(
    geometry: LoomGeometry,
    spec: &ConvSpec,
    input: &Tensor3,
    weights: &Tensor4,
    pa: Precision,
    pw: Precision,
) -> ValidationReport {
    let reference = conv_forward(spec, input, weights);
    let functional = FunctionalLoom::new(geometry)
        .without_dynamic_precision()
        .run_conv(spec, input, weights, pa, pw);
    let analytic = conv_schedule(&geometry, spec, &LayerPrecisionSpec::static_profile(pa, pw));
    report(
        functional.outputs == reference,
        functional.cycles,
        analytic.cycles,
    )
}

/// Validates a fully-connected layer the same way.
pub fn validate_fc(
    geometry: LoomGeometry,
    spec: &FcSpec,
    input: &[i32],
    weights: &[i32],
    pw: Precision,
) -> ValidationReport {
    let reference = fc_forward(spec, input, weights);
    let functional = FunctionalLoom::new(geometry).run_fc(spec, input, weights, pw);
    let analytic = fc_schedule(
        &geometry,
        spec,
        &LayerPrecisionSpec::static_profile(Precision::FULL, pw),
        true,
    );
    report(
        functional.outputs == reference,
        functional.cycles,
        analytic.cycles,
    )
}

/// Validates any [`crate::accelerator::Accelerator`] implementation whose
/// analytic convolutional cycle model should agree with the bit-exact
/// functional Loom engine: the functional outputs must match the golden
/// reference and the trait impl's cycle count must match the functional run.
///
/// This is the check to run when registering a new Loom-like backend — it
/// grounds the backend's fast cycle model in a datapath that demonstrably
/// computes the right answers.
///
/// # Panics
///
/// Panics if `geometry` disagrees with the accelerator's own reported grid
/// shape — comparing a functional run of one datapath against the analytic
/// cycles of another would validate nothing.
pub fn validate_accelerator_conv(
    accelerator: &dyn crate::accelerator::Accelerator,
    geometry: LoomGeometry,
    spec: &ConvSpec,
    input: &Tensor3,
    weights: &Tensor4,
    pa: Precision,
    pw: Precision,
) -> ValidationReport {
    let summary = accelerator.geometry();
    assert_eq!(
        (summary.rows, summary.columns),
        (geometry.filter_rows, geometry.window_columns),
        "functional geometry does not match the accelerator's grid ({})",
        accelerator.name()
    );
    let reference = conv_forward(spec, input, weights);
    let functional = FunctionalLoom::new(geometry)
        .without_dynamic_precision()
        .run_conv(spec, input, weights, pa, pw);
    let (cycles, _utilization) =
        accelerator.conv_cycles(spec, &LayerPrecisionSpec::static_profile(pa, pw));
    report(functional.outputs == reference, functional.cycles, cycles)
}

/// Cross-checks the three SIP kernels on a convolutional layer: the 256-lane
/// wide datapath (the default), the 64-lane packed AND+popcount datapath and
/// the legacy bit-serial loop must produce *identical*
/// [`crate::loom::FunctionalRun`]s — outputs, cycles, and dynamically reduced
/// groups. CI's functional benchmark fails the build if this ever returns
/// `false`.
pub fn conv_kernels_agree(
    geometry: LoomGeometry,
    spec: &ConvSpec,
    input: &Tensor3,
    weights: &Tensor4,
    pa: Precision,
    pw: Precision,
) -> bool {
    use crate::loom::functional::SipKernel;
    let wide = FunctionalLoom::new(geometry).run_conv(spec, input, weights, pa, pw);
    [SipKernel::Packed, SipKernel::BitSerial]
        .into_iter()
        .all(|kernel| {
            FunctionalLoom::new(geometry)
                .with_kernel(kernel)
                .run_conv(spec, input, weights, pa, pw)
                == wide
        })
}

/// Outcome of validating a whole network: the batched functional engine
/// against the golden graph executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkValidation {
    /// Whether every batch item's functional trace is bit-identical to the
    /// golden model's.
    pub traces_match: bool,
    /// Number of layer nodes each trace covers.
    pub layers: usize,
    /// Total bit-serial cycles over the batch.
    pub cycles: u64,
    /// Total dynamically reduced activation groups over the batch.
    pub reduced_groups: u64,
}

/// Validates a whole network end to end: runs `inputs` through the golden
/// graph executor and through the batched functional engine
/// ([`crate::loom::NetworkEngine`] with `threads` workers), and compares the
/// traces bit-for-bit — every layer's inputs, accumulators, re-quantization
/// shift and outputs. This is the zoo-level check CI's functional suite
/// fails on: the graphs come from `loom_model::zoo::graphs`.
///
/// # Errors
///
/// Propagates executor errors (shape mismatches, malformed concats) from
/// either path.
pub fn validate_network(
    geometry: LoomGeometry,
    graph: &loom_model::graph::LayerGraph,
    params: &loom_model::inference::NetworkParams,
    inputs: &[loom_model::tensor::Tensor3],
    options: loom_model::inference::InferenceOptions,
    threads: usize,
) -> Result<NetworkValidation, loom_model::inference::InferenceError> {
    let golden = graph.run_batch(params, inputs, options)?;
    let runs = crate::loom::NetworkEngine::new(geometry)
        .with_threads(threads)
        .run_batch(graph, params, inputs, options)?;
    Ok(NetworkValidation {
        traces_match: runs.iter().map(|r| &r.trace).eq(golden.iter()),
        layers: golden.first().map(|t| t.layers.len()).unwrap_or(0),
        cycles: runs.iter().map(|r| r.cycles).sum(),
        reduced_groups: runs.iter().map(|r| r.reduced_groups).sum(),
    })
}

/// One registered backend's conformance result in a [`CrossValidation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendConformance {
    /// The accelerator's display name.
    pub accelerator: String,
    /// Whether every batch item's trace is bit-identical to the golden
    /// model's (layer inputs, accumulators, re-quantization and outputs).
    pub matches_golden: bool,
    /// Total cycles this backend spent over the batch.
    pub cycles: u64,
    /// Total dynamically reduced activation groups over the batch.
    pub reduced_groups: u64,
}

/// Outcome of running every registered functional datapath over one network:
/// the differential conformance record the harness and CI key off.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrossValidation {
    /// The network the backends ran.
    pub network: String,
    /// Per-backend results, in registry order.
    pub backends: Vec<BackendConformance>,
}

impl CrossValidation {
    /// Whether at least one backend ran and every backend matched the golden
    /// model — which, by transitivity, means all backends also agree with
    /// each other bit-for-bit.
    pub fn all_match(&self) -> bool {
        !self.backends.is_empty() && self.backends.iter().all(|b| b.matches_golden)
    }
}

/// Runs `inputs` through the golden graph executor once, then through every
/// accelerator in `registry` that exposes a functional datapath (with
/// `threads` workers each), and records which backends reproduce the golden
/// traces bit-exactly. Backends without a functional datapath are skipped —
/// they simply don't appear in the result.
///
/// # Errors
///
/// Propagates executor errors (shape mismatches, malformed concats) from the
/// golden run or any backend run.
pub fn cross_validate(
    registry: &Registry,
    graph: &loom_model::graph::LayerGraph,
    params: &loom_model::inference::NetworkParams,
    inputs: &[loom_model::tensor::Tensor3],
    options: loom_model::inference::InferenceOptions,
    threads: usize,
) -> Result<CrossValidation, loom_model::inference::InferenceError> {
    let golden = graph.run_batch(params, inputs, options)?;
    let mut backends = Vec::new();
    for acc in registry.iter() {
        let Some(datapath) = acc.functional_datapath(threads) else {
            continue;
        };
        let runs = run_network_batch(datapath.as_ref(), graph, params, inputs, options)?;
        backends.push(BackendConformance {
            accelerator: acc.name(),
            matches_golden: runs.iter().map(|r| &r.trace).eq(golden.iter()),
            cycles: runs.iter().map(|r| r.cycles).sum(),
            reduced_groups: runs.iter().map(|r| r.reduced_groups).sum(),
        });
    }
    Ok(CrossValidation {
        network: graph.name().to_string(),
        backends,
    })
}

fn report(outputs_match: bool, functional_cycles: u64, analytic_cycles: u64) -> ValidationReport {
    let cycle_error = if analytic_cycles == 0 {
        if functional_cycles == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (functional_cycles as f64 - analytic_cycles as f64).abs() / analytic_cycles as f64
    };
    ValidationReport {
        outputs_match,
        functional_cycles,
        analytic_cycles,
        cycle_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::synthetic::{synthetic_activations, synthetic_weights, ValueDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn geometry() -> LoomGeometry {
        LoomGeometry {
            filter_rows: 8,
            window_columns: 4,
            sip_lanes: 4,
            act_bits_per_cycle: 1,
        }
    }

    #[test]
    fn conv_models_agree() {
        let spec = ConvSpec::simple(3, 9, 9, 8, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let pa = Precision::new(7).unwrap();
        let pw = Precision::new(6).unwrap();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            synthetic_activations(
                &mut rng,
                spec.input_shape().len(),
                pa,
                ValueDistribution::activations(),
            ),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            synthetic_weights(
                &mut rng,
                spec.weight_shape().len(),
                pw,
                ValueDistribution::weights(),
            ),
        )
        .unwrap();
        let r = validate_conv(geometry(), &spec, &input, &weights, pa, pw);
        assert!(r.outputs_match, "{r}");
        // The analytic model adds a one-cycle pipeline fill; otherwise exact.
        assert!(r.agrees_within(0.02), "{r}");
        assert!(conv_kernels_agree(
            geometry(),
            &spec,
            &input,
            &weights,
            pa,
            pw
        ));

        // The trait-based check must agree with the direct schedule check
        // when the registered backend wraps the same analytic schedule.
        let acc =
            crate::accelerator::Loom::with_geometry(crate::config::LoomVariant::Lm1b, geometry());
        let rt = validate_accelerator_conv(&acc, geometry(), &spec, &input, &weights, pa, pw);
        assert_eq!(rt.analytic_cycles, r.analytic_cycles);
        assert!(rt.agrees_within(0.02), "{rt}");
    }

    #[test]
    fn fc_models_agree() {
        let spec = FcSpec::new(48, 24);
        let mut rng = StdRng::seed_from_u64(6);
        let pw = Precision::new(9).unwrap();
        let input = synthetic_activations(
            &mut rng,
            48,
            Precision::new(10).unwrap(),
            ValueDistribution::activations(),
        );
        let weights = synthetic_weights(&mut rng, 48 * 24, pw, ValueDistribution::weights());
        let r = validate_fc(geometry(), &spec, &input, &weights, pw);
        assert!(r.agrees_within(0.01), "{r}");
        assert!(r.to_string().contains("exact"));
    }

    #[test]
    fn network_validation_matches_on_a_small_graph() {
        use loom_model::graph::LayerGraph;
        use loom_model::inference::{InferenceOptions, NetworkParams};
        use loom_model::layer::PoolSpec;
        use loom_model::network::NetworkBuilder;
        use loom_model::tensor::Shape3;

        let graph = LayerGraph::from_network(
            &NetworkBuilder::new("tiny")
                .conv("c1", ConvSpec::simple(2, 8, 8, 4, 3))
                .max_pool("p1", PoolSpec::new(4, 6, 6, 2, 2))
                .fully_connected("f1", FcSpec::new(4 * 3 * 3, 5))
                .build()
                .unwrap(),
        );
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 4);
        let mut rng = StdRng::seed_from_u64(12);
        let inputs: Vec<_> = (0..2)
            .map(|_| {
                loom_model::tensor::Tensor3::from_vec(
                    Shape3::new(2, 8, 8),
                    synthetic_activations(
                        &mut rng,
                        2 * 8 * 8,
                        Precision::new(8).unwrap(),
                        ValueDistribution::activations(),
                    ),
                )
                .unwrap()
            })
            .collect();
        let v = validate_network(
            geometry(),
            &graph,
            &params,
            &inputs,
            InferenceOptions::default(),
            2,
        )
        .unwrap();
        assert!(v.traces_match);
        assert_eq!(v.layers, 3);
        assert!(v.cycles > 0);
    }

    #[test]
    fn cross_validation_covers_every_registered_backend() {
        use crate::config::EquivalentConfig;
        use loom_model::graph::LayerGraph;
        use loom_model::inference::{InferenceOptions, NetworkParams};
        use loom_model::network::NetworkBuilder;
        use loom_model::tensor::Shape3;

        let graph = LayerGraph::from_network(
            &NetworkBuilder::new("tiny")
                .conv("c1", ConvSpec::simple(2, 8, 8, 4, 3))
                .fully_connected("f1", FcSpec::new(4 * 6 * 6, 5))
                .build()
                .unwrap(),
        );
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 4);
        let mut rng = StdRng::seed_from_u64(12);
        let inputs = [loom_model::tensor::Tensor3::from_vec(
            Shape3::new(2, 8, 8),
            synthetic_activations(
                &mut rng,
                2 * 8 * 8,
                Precision::new(8).unwrap(),
                ValueDistribution::activations(),
            ),
        )
        .unwrap()];
        let registry = Registry::with_defaults(EquivalentConfig::BASELINE_128);
        let v = cross_validate(
            &registry,
            &graph,
            &params,
            &inputs,
            InferenceOptions::default(),
            2,
        )
        .unwrap();
        assert_eq!(v.network, "tiny");
        // All six defaults expose functional datapaths, so all six appear.
        assert_eq!(v.backends.len(), registry.len());
        assert!(v.all_match(), "{v:?}");
        for b in &v.backends {
            assert!(b.cycles > 0, "{}", b.accelerator);
        }
        // An empty conformance record never counts as agreement.
        assert!(!CrossValidation {
            network: String::new(),
            backends: Vec::new()
        }
        .all_match());
    }

    #[test]
    fn report_flags_cycle_disagreement() {
        let r = report(true, 150, 100);
        assert!(!r.agrees_within(0.3));
        assert!((r.cycle_error - 0.5).abs() < 1e-12);
        let degenerate = report(true, 5, 0);
        assert!(degenerate.cycle_error.is_infinite());
        assert_eq!(report(true, 0, 0).cycle_error, 0.0);
    }
}
