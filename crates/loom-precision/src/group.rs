//! Per-group weight precisions (§4.6 of the paper, following Delmas et al.,
//! "DPRed"): instead of one weight precision per network or per layer, the
//! precision is detected for every group of 16 weights that occupies one SIP's
//! weight registers. The per-group precisions "can be detected at runtime
//! similarly to the activation precisions, or can be detected statically and
//! communicated via per group metadata".

use loom_model::fixed::{required_precision, Precision};

/// Number of weights a SIP holds concurrently (its 16 one-bit weight
/// registers), and therefore the group size for per-group weight precisions.
pub const WEIGHT_GROUP: usize = 16;

/// Detects the precision of each consecutive group of `group_size` signed
/// weights.
///
/// # Panics
///
/// Panics if `group_size` is zero.
pub fn weight_group_precisions(weights: &[i32], group_size: usize) -> Vec<Precision> {
    assert!(group_size > 0, "group size must be non-zero");
    weights.chunks(group_size).map(required_precision).collect()
}

/// The average effective weight precision of a layer for groups of
/// [`WEIGHT_GROUP`] weights — the quantity Table 3 of the paper reports.
pub fn layer_effective_weight_bits(weights: &[i32]) -> f64 {
    let groups = weight_group_precisions(weights, WEIGHT_GROUP);
    if groups.is_empty() {
        return 0.0;
    }
    groups.iter().map(|p| f64::from(p.bits())).sum::<f64>() / groups.len() as f64
}

/// Per-group metadata overhead in bits: communicating one 4-bit precision per
/// group of `group_size` weights (the static-detection option the paper
/// mentions). Returned as bits of metadata per weight.
pub fn metadata_overhead_bits_per_weight(group_size: usize) -> f64 {
    assert!(group_size > 0, "group size must be non-zero");
    4.0 / group_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::fixed::signed_bits;
    use loom_model::synthetic::{synthetic_weights, ValueDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn group_precisions_reflect_group_maxima() {
        let mut weights = vec![1i32; 32];
        weights[20] = -200; // second group needs 9 bits
        let groups = weight_group_precisions(&weights, 16);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].bits(), 2);
        assert_eq!(groups[1].bits(), signed_bits(-200));
    }

    #[test]
    fn effective_bits_below_nominal_for_synthetic_weights() {
        // The whole point of per-group precisions: most groups need far fewer
        // bits than the layer-wide profile precision, as in Table 3 where
        // effective precisions of 5-10 bits are reported against nominal 10-12.
        let mut rng = StdRng::seed_from_u64(5);
        let nominal = Precision::new(11).unwrap();
        let weights = synthetic_weights(&mut rng, 16 * 1024, nominal, ValueDistribution::weights());
        let effective = layer_effective_weight_bits(&weights);
        assert!(effective < 11.0, "effective {effective} not below nominal");
        assert!(effective > 3.0, "effective {effective} implausibly low");
    }

    #[test]
    fn effective_bits_of_empty_layer_is_zero() {
        assert_eq!(layer_effective_weight_bits(&[]), 0.0);
    }

    #[test]
    fn metadata_overhead_shrinks_with_group_size() {
        assert!(metadata_overhead_bits_per_weight(16) < metadata_overhead_bits_per_weight(4));
        assert!((metadata_overhead_bits_per_weight(16) - 0.25).abs() < 1e-12);
    }
}
