//! Bit-length statistics of value populations.
//!
//! The per-group precision mechanisms (runtime activation detection, per-group
//! weight metadata) work because the *distribution* of bit-lengths in real
//! tensors is heavily skewed toward small values. This module measures that
//! distribution — a histogram of how many values need 1, 2, …, 16 bits — and
//! derives from it the quantity the hardware actually experiences: the
//! expected precision of the maximum over a group of `n` values. That is the
//! analytical bridge between a value distribution (measured or synthetic) and
//! the effective precisions reported in Table 3 / used by the cycle models'
//! `Scaled` precision source.

use loom_model::fixed::{signed_bits, unsigned_bits, Precision, MAX_PRECISION};

/// Histogram of bit-lengths over a population of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitLengthHistogram {
    counts: [u64; MAX_PRECISION as usize],
    total: u64,
}

impl BitLengthHistogram {
    /// Builds the histogram of signed two's-complement bit-lengths (weights).
    pub fn of_signed(values: &[i32]) -> Self {
        Self::build(values.iter().map(|&v| signed_bits(v)))
    }

    /// Builds the histogram of unsigned magnitude bit-lengths (post-ReLU
    /// activations).
    pub fn of_unsigned(values: &[i32]) -> Self {
        Self::build(values.iter().map(|&v| unsigned_bits(v.max(0) as u32)))
    }

    fn build(bit_lengths: impl Iterator<Item = u8>) -> Self {
        let mut counts = [0u64; MAX_PRECISION as usize];
        let mut total = 0u64;
        for bits in bit_lengths {
            let idx = bits.clamp(1, MAX_PRECISION) as usize - 1;
            counts[idx] += 1;
            total += 1;
        }
        BitLengthHistogram { counts, total }
    }

    /// Number of values in the population.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of values that need exactly `bits` bits.
    pub fn count(&self, bits: u8) -> u64 {
        if (1..=MAX_PRECISION).contains(&bits) {
            self.counts[bits as usize - 1]
        } else {
            0
        }
    }

    /// Fraction of values that need at most `bits` bits (the CDF).
    pub fn cumulative_fraction(&self, bits: u8) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let upto: u64 = (1..=bits.min(MAX_PRECISION))
            .map(|b| self.counts[b as usize - 1])
            .sum();
        upto as f64 / self.total as f64
    }

    /// Mean bit-length of a single value.
    pub fn mean_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as f64 + 1.0) * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// The smallest precision that covers every value in the population.
    pub fn max_bits(&self) -> Precision {
        let bits = (1..=MAX_PRECISION)
            .rev()
            .find(|&b| self.counts[b as usize - 1] > 0)
            .unwrap_or(1);
        Precision::saturating(bits)
    }

    /// Expected bit-length of the maximum over a group of `group_size` values
    /// drawn independently from this distribution:
    /// `E[max] = Σ_b b · (F(b)^n − F(b−1)^n)` where `F` is the CDF.
    ///
    /// This is the expected *effective group precision* a per-group detector
    /// observes, and therefore (divided by the profile precision) the
    /// `fraction` parameter of the `Scaled` precision source.
    pub fn expected_group_precision(&self, group_size: usize) -> f64 {
        if self.total == 0 || group_size == 0 {
            return 0.0;
        }
        let n = group_size as f64;
        let mut expectation = 0.0;
        let mut prev_cdf_pow = 0.0f64;
        for bits in 1..=MAX_PRECISION {
            let cdf_pow = self.cumulative_fraction(bits).powf(n);
            expectation += f64::from(bits) * (cdf_pow - prev_cdf_pow);
            prev_cdf_pow = cdf_pow;
        }
        expectation
    }

    /// The `fraction` of the population's own maximum precision that a
    /// per-group detector with groups of `group_size` values observes on
    /// average — directly usable as
    /// [`crate::trace::GroupPrecisionSource::Scaled`]'s parameter.
    pub fn scaled_fraction(&self, group_size: usize) -> f64 {
        let max = f64::from(self.max_bits().bits());
        if max == 0.0 {
            return 1.0;
        }
        (self.expected_group_precision(group_size) / max).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::WEIGHT_GROUP;
    use loom_model::synthetic::{synthetic_weights, ValueDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn histogram_counts_and_cdf() {
        // Values needing 1, 2, 2, 4 bits (unsigned).
        let h = BitLengthHistogram::of_unsigned(&[1, 2, 3, 9]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.count(3), 0);
        assert!((h.cumulative_fraction(2) - 0.75).abs() < 1e-12);
        assert_eq!(h.cumulative_fraction(16), 1.0);
        assert!((h.mean_bits() - (1.0 + 2.0 + 2.0 + 4.0) / 4.0).abs() < 1e-12);
        assert_eq!(h.max_bits().bits(), 4);
    }

    #[test]
    fn signed_histogram_counts_twos_complement_widths() {
        let h = BitLengthHistogram::of_signed(&[-1, 0, -128, 127]);
        assert_eq!(h.count(1), 2); // -1 and 0 both fit in one bit
        assert_eq!(h.count(8), 2); // -128 and 127 need eight
    }

    #[test]
    fn group_expectation_grows_with_group_size_and_is_bounded() {
        let mut rng = StdRng::seed_from_u64(12);
        let nominal = Precision::new(11).unwrap();
        let weights = synthetic_weights(&mut rng, 32 * 1024, nominal, ValueDistribution::weights());
        let h = BitLengthHistogram::of_signed(&weights);
        let single = h.expected_group_precision(1);
        let group16 = h.expected_group_precision(WEIGHT_GROUP);
        let group256 = h.expected_group_precision(256);
        assert!((single - h.mean_bits()).abs() < 1e-9);
        assert!(group16 > single);
        assert!(group256 > group16);
        assert!(group256 <= f64::from(h.max_bits().bits()) + 1e-9);
    }

    #[test]
    fn expected_group_precision_predicts_the_measured_detector() {
        // The analytical expectation over groups of 16 must agree with the
        // empirical per-group detector from `crate::group` to within ~0.3 bits
        // (values are i.i.d. by construction here).
        let mut rng = StdRng::seed_from_u64(4);
        let nominal = Precision::new(11).unwrap();
        let weights = synthetic_weights(&mut rng, 64 * 1024, nominal, ValueDistribution::weights());
        let analytical = BitLengthHistogram::of_signed(&weights).expected_group_precision(16);
        let measured = crate::group::layer_effective_weight_bits(&weights);
        assert!(
            (analytical - measured).abs() < 0.3,
            "analytical {analytical} vs measured {measured}"
        );
    }

    #[test]
    fn scaled_fraction_is_a_valid_fraction() {
        let mut rng = StdRng::seed_from_u64(9);
        let weights = synthetic_weights(
            &mut rng,
            8192,
            Precision::new(12).unwrap(),
            ValueDistribution::weights(),
        );
        let h = BitLengthHistogram::of_signed(&weights);
        let f = h.scaled_fraction(256);
        assert!(f > 0.3 && f <= 1.0, "fraction {f}");
        // Degenerate empty histogram.
        let empty = BitLengthHistogram::of_signed(&[]);
        assert_eq!(empty.expected_group_precision(16), 0.0);
        assert_eq!(empty.cumulative_fraction(4), 1.0);
    }
}
