//! The paper's Table 1: profile-derived per-layer activation precisions and
//! per-network weight precisions for the convolutional layers, and per-layer
//! weight precisions for the fully-connected layers, at the 100% and 99%
//! relative top-1 accuracy targets.
//!
//! These published profiles are embedded verbatim and used as the canonical
//! inputs to the headline experiments (Table 2, Figure 4, Figure 5); the
//! profiler in [`crate::profiler`] demonstrates the *method* that produced
//! them on networks we can actually run.

use crate::profile::{profile_from_bits, AccuracyTarget, NetworkProfile};

/// Returns the Table 1 profile for `network` under `target`, if the network is
/// one of the six evaluated ones.
pub fn profile(network: &str, target: AccuracyTarget) -> Option<NetworkProfile> {
    let canonical = canonical_name(network)?;
    Some(match (canonical, target) {
        // ------------------------------------------------------ 100% accuracy
        ("NiN", AccuracyTarget::Lossless) => profile_from_bits(
            "NiN",
            target,
            &[8, 8, 8, 9, 7, 8, 8, 9, 9, 8, 8, 8],
            11,
            &[],
        ),
        ("AlexNet", AccuracyTarget::Lossless) => {
            profile_from_bits("AlexNet", target, &[9, 8, 5, 5, 7], 11, &[10, 9, 9])
        }
        ("GoogLeNet", AccuracyTarget::Lossless) => profile_from_bits(
            "GoogLeNet",
            target,
            &[10, 8, 10, 9, 8, 10, 9, 8, 9, 10, 7],
            11,
            &[7],
        ),
        ("VGGS", AccuracyTarget::Lossless) => {
            profile_from_bits("VGGS", target, &[7, 8, 9, 7, 9], 12, &[10, 9, 9])
        }
        ("VGGM", AccuracyTarget::Lossless) => {
            profile_from_bits("VGGM", target, &[7, 7, 7, 8, 7], 12, &[10, 8, 8])
        }
        ("VGG19", AccuracyTarget::Lossless) => profile_from_bits(
            "VGG19",
            target,
            &[
                12, 12, 12, 11, 12, 10, 11, 11, 13, 12, 13, 13, 13, 13, 13, 13,
            ],
            12,
            &[10, 9, 9],
        ),
        // ------------------------------------------------------- 99% accuracy
        ("NiN", AccuracyTarget::Relative99) => profile_from_bits(
            "NiN",
            target,
            &[8, 8, 7, 9, 7, 8, 8, 9, 9, 8, 7, 8],
            10,
            &[],
        ),
        ("AlexNet", AccuracyTarget::Relative99) => {
            profile_from_bits("AlexNet", target, &[9, 7, 4, 5, 7], 11, &[9, 8, 8])
        }
        ("GoogLeNet", AccuracyTarget::Relative99) => profile_from_bits(
            "GoogLeNet",
            target,
            &[10, 8, 9, 8, 8, 9, 10, 8, 9, 10, 8],
            10,
            &[7],
        ),
        ("VGGS", AccuracyTarget::Relative99) => {
            profile_from_bits("VGGS", target, &[7, 8, 9, 7, 9], 11, &[9, 9, 8])
        }
        ("VGGM", AccuracyTarget::Relative99) => {
            profile_from_bits("VGGM", target, &[6, 8, 7, 7, 7], 12, &[9, 8, 8])
        }
        ("VGG19", AccuracyTarget::Relative99) => profile_from_bits(
            "VGG19",
            target,
            &[9, 9, 9, 8, 12, 10, 10, 12, 13, 11, 12, 13, 13, 13, 13, 13],
            12,
            &[10, 9, 8],
        ),
        _ => unreachable!("canonical_name only returns the six known networks"),
    })
}

/// Returns all Table 1 profiles for the given accuracy target, in the paper's
/// table order.
pub fn all_profiles(target: AccuracyTarget) -> Vec<NetworkProfile> {
    loom_model::zoo::NETWORK_NAMES
        .iter()
        .map(|n| profile(n, target).expect("all canonical networks have profiles"))
        .collect()
}

fn canonical_name(name: &str) -> Option<&'static str> {
    match name.to_ascii_lowercase().as_str() {
        "nin" => Some("NiN"),
        "alexnet" => Some("AlexNet"),
        "googlenet" | "google" => Some("GoogLeNet"),
        "vggs" | "vgg-s" => Some("VGGS"),
        "vggm" | "vgg-m" => Some("VGGM"),
        "vgg19" | "vgg-19" => Some("VGG19"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::zoo;

    #[test]
    fn every_profile_matches_its_network_layer_counts() {
        for target in [AccuracyTarget::Lossless, AccuracyTarget::Relative99] {
            for net in zoo::all() {
                let p = profile(net.name(), target).unwrap();
                p.validate_against(&net)
                    .unwrap_or_else(|e| panic!("{target}: {e}"));
            }
        }
    }

    #[test]
    fn paper_ranges_hold() {
        // §4.2: lossless CVL activation precisions vary from 5 to 13 bits and
        // weights from 10 to 12; FCL weight precisions vary from 7 to 10.
        let profiles = all_profiles(AccuracyTarget::Lossless);
        let act_min = profiles
            .iter()
            .flat_map(|p| p.conv_activations.iter())
            .map(|p| p.bits())
            .min()
            .unwrap();
        let act_max = profiles
            .iter()
            .flat_map(|p| p.conv_activations.iter())
            .map(|p| p.bits())
            .max()
            .unwrap();
        assert_eq!(act_min, 5);
        assert_eq!(act_max, 13);
        for p in &profiles {
            assert!((10..=12).contains(&p.conv_weight.bits()), "{}", p.network);
            for fc in &p.fc_weights {
                assert!((7..=10).contains(&fc.bits()), "{}", p.network);
            }
        }
    }

    #[test]
    fn ninety_nine_percent_profiles_never_need_more_weight_bits() {
        for net in zoo::NETWORK_NAMES {
            let full = profile(net, AccuracyTarget::Lossless).unwrap();
            let relaxed = profile(net, AccuracyTarget::Relative99).unwrap();
            assert!(relaxed.conv_weight <= full.conv_weight, "{net}");
        }
    }

    #[test]
    fn unknown_network_returns_none() {
        assert!(profile("resnet50", AccuracyTarget::Lossless).is_none());
    }

    #[test]
    fn all_profiles_in_table_order() {
        let names: Vec<String> = all_profiles(AccuracyTarget::Lossless)
            .into_iter()
            .map(|p| p.network)
            .collect();
        assert_eq!(
            names,
            vec!["NiN", "AlexNet", "GoogLeNet", "VGGS", "VGGM", "VGG19"]
        );
    }
}
