//! The paper's Table 3: average effective per-layer weight precisions for
//! groups of 16 weights, used by the Table 4 experiment ("for these estimates
//! we assume that performance scales linearly with weight precision").
//!
//! The values are fractional because they are averages over all groups of 16
//! weights in each layer.

/// Returns the Table 3 average effective weight precision of every
/// convolutional layer of `network`, in layer order, if the network is one of
/// the six evaluated ones.
pub fn effective_conv_weight_bits(network: &str) -> Option<Vec<f64>> {
    let values: &[f64] = match network.to_ascii_lowercase().as_str() {
        "nin" => &[
            8.85, 10.29, 10.21, 7.65, 9.13, 9.04, 7.63, 8.65, 8.62, 7.79, 7.96, 8.18,
        ],
        "alexnet" => &[8.36, 7.62, 7.62, 7.44, 7.55],
        "googlenet" | "google" => &[
            6.19, 5.75, 6.80, 6.28, 5.34, 6.70, 6.31, 5.02, 5.49, 7.89, 4.83,
        ],
        "vggs" | "vgg-s" => &[9.94, 6.96, 8.53, 8.13, 8.10],
        "vggm" | "vgg-m" => &[9.87, 7.55, 8.52, 8.16, 8.14],
        "vgg19" | "vgg-19" => &[
            10.98, 9.81, 9.31, 9.09, 8.58, 8.04, 7.89, 7.86, 7.51, 7.20, 7.36, 7.47, 7.61, 7.66,
            7.66, 7.63,
        ],
        _ => return None,
    };
    Some(values.to_vec())
}

/// Estimated effective per-group weight precisions for the fully-connected
/// layers. Table 3 only reports convolutional layers; for the all-layer
/// estimates of Table 4 the fully-connected weight precisions are scaled by the
/// same effective/nominal ratio observed on the network's convolutional layers
/// (documented substitution — see `EXPERIMENTS.md`).
pub fn effective_fc_weight_bits(
    network: &str,
    nominal_fc_bits: &[u8],
    nominal_conv_bits: u8,
) -> Vec<f64> {
    let conv = match effective_conv_weight_bits(network) {
        Some(v) => v,
        None => return nominal_fc_bits.iter().map(|&b| f64::from(b)).collect(),
    };
    if conv.is_empty() || nominal_conv_bits == 0 {
        return nominal_fc_bits.iter().map(|&b| f64::from(b)).collect();
    }
    let mean_conv: f64 = conv.iter().sum::<f64>() / conv.len() as f64;
    let ratio = (mean_conv / f64::from(nominal_conv_bits)).min(1.0);
    nominal_fc_bits
        .iter()
        .map(|&b| (f64::from(b) * ratio).max(1.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::zoo;

    #[test]
    fn entry_counts_match_conv_layer_counts() {
        for net in zoo::all() {
            let bits = effective_conv_weight_bits(net.name()).unwrap();
            assert_eq!(bits.len(), net.conv_layers().count(), "{}", net.name());
        }
    }

    #[test]
    fn effective_bits_are_below_the_nominal_profiles() {
        use crate::profile::AccuracyTarget;
        use crate::table1;
        for net in zoo::NETWORK_NAMES {
            let nominal = table1::profile(net, AccuracyTarget::Lossless)
                .unwrap()
                .conv_weight;
            let effective = effective_conv_weight_bits(net).unwrap();
            let mean: f64 = effective.iter().sum::<f64>() / effective.len() as f64;
            assert!(
                mean < f64::from(nominal.bits()),
                "{net}: mean effective {mean} vs nominal {nominal}"
            );
        }
    }

    #[test]
    fn unknown_network_returns_none() {
        assert!(effective_conv_weight_bits("resnet").is_none());
    }

    #[test]
    fn fc_estimates_scale_by_conv_ratio() {
        let fc = effective_fc_weight_bits("AlexNet", &[10, 9, 9], 11);
        assert_eq!(fc.len(), 3);
        for (est, &nominal) in fc.iter().zip([10u8, 9, 9].iter()) {
            assert!(*est < f64::from(nominal));
            assert!(*est >= 1.0);
        }
        // Unknown network falls back to nominal.
        let fallback = effective_fc_weight_bits("resnet", &[10], 11);
        assert_eq!(fallback, vec![10.0]);
    }
}
