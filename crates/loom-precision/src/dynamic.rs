//! Dynamic per-group activation precision detection (Lascorz et al.,
//! "Dynamic Stripes"), as adopted by Loom: "LM determines \[and\] adjusts
//! precision per group of 256 activations that it processes concurrently. Per
//! bit position OR trees produce a 16-bit vector indicating the positions where
//! any of the activations has a 1. A leading one detector identifies the most
//! significant position and thus the precision in bits that is sufficient."
//!
//! This module is a software model of exactly that hardware: an OR-reduction
//! across the group followed by a leading-one detector, plus helpers to apply
//! it over whole layers.

use loom_model::fixed::{required_precision, unsigned_bits, Precision};

/// Number of activations Loom processes concurrently and therefore the group
/// size over which it detects precision at runtime (16 windows × 16 activation
/// lanes for the "128" configuration).
pub const ACTIVATION_GROUP: usize = 256;

/// OR-reduces the magnitudes of a group of non-negative activations into the
/// per-bit-position vector the hardware's OR trees produce.
///
/// # Examples
///
/// ```
/// use loom_precision::dynamic::or_reduce;
/// assert_eq!(or_reduce(&[0b0001, 0b0100]), 0b0101);
/// assert_eq!(or_reduce(&[]), 0);
/// ```
pub fn or_reduce(values: &[i32]) -> u16 {
    values
        .iter()
        .fold(0u16, |acc, &v| acc | (v.max(0) as u32 & 0xFFFF) as u16)
}

/// Detects the precision sufficient for a group of non-negative (post-ReLU)
/// activations: the position of the leading one in the OR-reduced vector.
///
/// Returns 1 bit for an all-zero group (the hardware still spends one cycle).
pub fn detect_group_precision(values: &[i32]) -> Precision {
    let vector = or_reduce(values);
    Precision::saturating(unsigned_bits(u32::from(vector)))
}

/// Detects the precision sufficient for a group of possibly-negative
/// activations (e.g. the signed network input layer): the two's-complement
/// width of the widest value.
pub fn detect_group_precision_signed(values: &[i32]) -> Precision {
    required_precision(values)
}

/// Splits `values` into consecutive groups of `group_size` (the last group may
/// be shorter) and detects the precision of each.
///
/// # Panics
///
/// Panics if `group_size` is zero.
pub fn group_precisions(values: &[i32], group_size: usize) -> Vec<Precision> {
    assert!(group_size > 0, "group size must be non-zero");
    values
        .chunks(group_size)
        .map(detect_group_precision)
        .collect()
}

/// Average number of bits over a set of detected group precisions.
pub fn average_bits(precisions: &[Precision]) -> f64 {
    if precisions.is_empty() {
        return 0.0;
    }
    precisions.iter().map(|p| f64::from(p.bits())).sum::<f64>() / precisions.len() as f64
}

/// The effective (group-averaged) activation precision of a whole layer's
/// activation values using the hardware group size of 256.
pub fn layer_effective_activation_bits(values: &[i32]) -> f64 {
    average_bits(&group_precisions(values, ACTIVATION_GROUP))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::fixed::truncate_to_precision;

    #[test]
    fn or_reduce_matches_manual() {
        assert_eq!(or_reduce(&[1, 2, 4, 8]), 0b1111);
        assert_eq!(or_reduce(&[0, 0, 0]), 0);
        // Negative values (should not occur post-ReLU) are treated as zero.
        assert_eq!(or_reduce(&[-5, 3]), 3);
    }

    #[test]
    fn detect_group_precision_is_leading_one_position() {
        assert_eq!(detect_group_precision(&[0, 0]).bits(), 1);
        assert_eq!(detect_group_precision(&[1]).bits(), 1);
        assert_eq!(detect_group_precision(&[2]).bits(), 2);
        assert_eq!(detect_group_precision(&[5, 200, 3]).bits(), 8);
        assert_eq!(detect_group_precision(&[1 << 15]).bits(), 16);
    }

    #[test]
    fn detection_is_lossless() {
        // Keeping only the detected number of magnitude bits must not change
        // any value in the group: this is the safety property of dynamic
        // reduction (post-ReLU activations are unsigned).
        let groups: [&[i32]; 3] = [&[0, 1, 5, 9], &[255, 3, 128], &[1023, 0, 0, 7]];
        for g in groups {
            let p = detect_group_precision(g);
            for &v in g {
                let mask = if p.bits() >= 31 {
                    !0u32
                } else {
                    (1u32 << p.bits()) - 1
                };
                assert_eq!((v as u32) & mask, v as u32, "value {v} at {p}");
            }
        }
        // For signed groups the two's-complement truncation is the identity.
        let signed: &[i32] = &[-100, 37, -5];
        let p = detect_group_precision_signed(signed);
        for &v in signed {
            assert_eq!(truncate_to_precision(v, p), v, "value {v} at {p}");
        }
    }

    #[test]
    fn signed_detection_covers_negative_values() {
        assert_eq!(detect_group_precision_signed(&[-128, 5]).bits(), 8);
        assert_eq!(detect_group_precision_signed(&[-1, 0]).bits(), 1);
    }

    #[test]
    fn group_precisions_chunks_correctly() {
        let values = vec![1, 1, 1, 1, 200, 1, 1, 1, 3];
        let ps = group_precisions(&values, 4);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].bits(), 1);
        assert_eq!(ps[1].bits(), 8);
        assert_eq!(ps[2].bits(), 2);
        assert!((average_bits(&ps) - (1.0 + 8.0 + 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_bits_of_empty_is_zero() {
        assert_eq!(average_bits(&[]), 0.0);
    }

    #[test]
    fn layer_effective_bits_below_layer_maximum_for_skewed_values() {
        // A layer where only one group holds a large value: the average
        // effective precision is far below the layer-wide requirement.
        let mut values = vec![1i32; 1024];
        values[0] = 1 << 12;
        let effective = layer_effective_activation_bits(&values);
        assert!(effective < 5.0, "got {effective}");
    }
}
