//! Per-network precision profiles.
//!
//! A [`NetworkProfile`] captures exactly what Table 1 of the paper reports for
//! each network: one activation precision per convolutional layer, a single
//! weight precision shared by all convolutional layers, and one weight
//! precision per fully-connected layer. Profiles exist for two accuracy
//! targets: no accuracy loss ("100%") and a 1% relative top-1 loss ("99%").

use loom_model::network::Network;
use loom_model::Precision;
use std::fmt;

/// The accuracy constraint under which a profile was derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccuracyTarget {
    /// No loss in top-1 accuracy relative to the 16-bit baseline.
    Lossless,
    /// At most a 1% relative top-1 accuracy loss ("99%" profiles).
    Relative99,
}

impl fmt::Display for AccuracyTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccuracyTarget::Lossless => write!(f, "100%"),
            AccuracyTarget::Relative99 => write!(f, "99%"),
        }
    }
}

/// Error produced when a profile does not line up with a network's layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileMismatch {
    /// The network name.
    pub network: String,
    /// Description of what did not match.
    pub detail: String,
}

impl fmt::Display for ProfileMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile does not match network {}: {}",
            self.network, self.detail
        )
    }
}

impl std::error::Error for ProfileMismatch {}

/// A per-network precision profile, mirroring one row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkProfile {
    /// Network name (matches [`loom_model::zoo`] names).
    pub network: String,
    /// Accuracy target the profile was derived for.
    pub target: AccuracyTarget,
    /// Activation precision of each convolutional layer, in layer order.
    pub conv_activations: Vec<Precision>,
    /// Weight precision shared by all convolutional layers ("network precision
    /// of weights" in the paper's wording).
    pub conv_weight: Precision,
    /// Weight precision of each fully-connected layer, in layer order (empty
    /// for networks without FCLs, e.g. NiN).
    pub fc_weights: Vec<Precision>,
}

impl NetworkProfile {
    /// Activation precision for convolutional layer `index` (0-based, counting
    /// only convolutional layers).
    pub fn conv_activation(&self, index: usize) -> Precision {
        self.conv_activations
            .get(index)
            .copied()
            .unwrap_or(Precision::FULL)
    }

    /// Weight precision for fully-connected layer `index` (0-based, counting
    /// only fully-connected layers).
    pub fn fc_weight(&self, index: usize) -> Precision {
        self.fc_weights
            .get(index)
            .copied()
            .unwrap_or(Precision::FULL)
    }

    /// Activation precision used for fully-connected layers. The paper's FCL
    /// profiles only constrain weights; activations stay at the full 16 bits
    /// because trimming them cannot improve FCL performance (§2).
    pub fn fc_activation(&self) -> Precision {
        Precision::FULL
    }

    /// Checks that the profile has exactly one activation entry per
    /// convolutional layer and one weight entry per fully-connected layer of
    /// `network`.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileMismatch`] describing the first inconsistency found.
    pub fn validate_against(&self, network: &Network) -> Result<(), ProfileMismatch> {
        let convs = network.conv_layers().count();
        let fcs = network.fc_layers().count();
        if convs != self.conv_activations.len() {
            return Err(ProfileMismatch {
                network: self.network.clone(),
                detail: format!(
                    "{} conv layers but {} activation precisions",
                    convs,
                    self.conv_activations.len()
                ),
            });
        }
        if fcs != self.fc_weights.len() {
            return Err(ProfileMismatch {
                network: self.network.clone(),
                detail: format!(
                    "{} fc layers but {} weight precisions",
                    fcs,
                    self.fc_weights.len()
                ),
            });
        }
        Ok(())
    }

    /// MAC-weighted average activation precision over the convolutional
    /// layers, a useful summary statistic when comparing against the paper.
    pub fn mean_conv_activation(&self, network: &Network) -> f64 {
        let mut weighted = 0.0f64;
        let mut total = 0.0f64;
        for (i, (layer, _)) in network.conv_layers().enumerate() {
            let macs = layer.macs() as f64;
            weighted += macs * f64::from(self.conv_activation(i).bits());
            total += macs;
        }
        if total == 0.0 {
            0.0
        } else {
            weighted / total
        }
    }
}

/// Convenience constructor used by the embedded tables: builds a profile from
/// raw bit counts.
///
/// # Panics
///
/// Panics if any bit count is outside `1..=16`.
pub fn profile_from_bits(
    network: &str,
    target: AccuracyTarget,
    conv_activations: &[u8],
    conv_weight: u8,
    fc_weights: &[u8],
) -> NetworkProfile {
    let to_prec = |b: &u8| Precision::new(*b).expect("profile bit widths are 1..=16");
    NetworkProfile {
        network: network.to_string(),
        target,
        conv_activations: conv_activations.iter().map(to_prec).collect(),
        conv_weight: Precision::new(conv_weight).expect("profile bit widths are 1..=16"),
        fc_weights: fc_weights.iter().map(to_prec).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::zoo;

    #[test]
    fn profile_lookup_defaults_to_full_precision() {
        let p = profile_from_bits("X", AccuracyTarget::Lossless, &[5, 6], 11, &[9]);
        assert_eq!(p.conv_activation(0).bits(), 5);
        assert_eq!(p.conv_activation(7).bits(), 16);
        assert_eq!(p.fc_weight(0).bits(), 9);
        assert_eq!(p.fc_weight(3).bits(), 16);
        assert_eq!(p.fc_activation().bits(), 16);
    }

    #[test]
    fn validate_detects_wrong_layer_counts() {
        let net = zoo::alexnet();
        let good = profile_from_bits(
            "AlexNet",
            AccuracyTarget::Lossless,
            &[9, 8, 5, 5, 7],
            11,
            &[10, 9, 9],
        );
        assert!(good.validate_against(&net).is_ok());
        let bad = profile_from_bits(
            "AlexNet",
            AccuracyTarget::Lossless,
            &[9, 8],
            11,
            &[10, 9, 9],
        );
        let err = bad.validate_against(&net).unwrap_err();
        assert!(err.to_string().contains("conv layers"));
    }

    #[test]
    fn mean_conv_activation_is_mac_weighted() {
        let net = zoo::alexnet();
        let p = profile_from_bits(
            "AlexNet",
            AccuracyTarget::Lossless,
            &[9, 8, 5, 5, 7],
            11,
            &[10, 9, 9],
        );
        let mean = p.mean_conv_activation(&net);
        assert!(mean > 5.0 && mean < 9.0, "got {mean}");
    }

    #[test]
    fn accuracy_target_display() {
        assert_eq!(AccuracyTarget::Lossless.to_string(), "100%");
        assert_eq!(AccuracyTarget::Relative99.to_string(), "99%");
    }
}
