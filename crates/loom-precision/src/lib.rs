//! # loom-precision
//!
//! Precision machinery for the Loom accelerator reproduction: everything that
//! determines *how many bits* each piece of data needs.
//!
//! * [`profile`] — per-network precision profiles (per-layer activation
//!   precisions, per-network conv weight precision, per-layer FC weight
//!   precisions) and accuracy targets.
//! * [`table1`] — the paper's published Table 1 profiles, embedded verbatim.
//! * [`table3`] — the paper's published Table 3 average effective per-group
//!   weight precisions.
//! * [`profiler`] — the Judd et al. search procedure that derives profiles,
//!   demonstrated with an output-fidelity proxy on runnable networks.
//! * [`dynamic`] — runtime per-group-of-256 activation precision detection
//!   (Lascorz et al. "Dynamic Stripes"), the OR-tree + leading-one model.
//! * [`group`] — per-group-of-16 weight precision detection (DPRed, §4.6).
//! * [`stats`] — bit-length histograms and the expected group-maximum
//!   precision that links value distributions to effective precisions.
//! * [`trace`] — the per-layer precision specifications the cycle simulators
//!   consume, including the calibrated statistical model used when real
//!   activation values are unavailable.
//!
//! # Example
//!
//! ```
//! use loom_precision::{table1, profile::AccuracyTarget};
//!
//! let alexnet = table1::profile("AlexNet", AccuracyTarget::Lossless).unwrap();
//! assert_eq!(alexnet.conv_activations.len(), 5);
//! assert_eq!(alexnet.conv_weight.bits(), 11);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dynamic;
pub mod group;
pub mod profile;
pub mod profiler;
pub mod stats;
pub mod table1;
pub mod table3;
pub mod trace;

pub use profile::{AccuracyTarget, NetworkProfile};
pub use trace::{GroupPrecisionSource, LayerPrecisionSpec};
