//! Per-layer precision profiling: the method of Judd et al. ("Reduced-Precision
//! Strategies for Bounded Memory in Deep Neural Nets") that produced the
//! paper's Table 1.
//!
//! The original work measures ImageNet top-1 accuracy while lowering one
//! layer's precision at a time; this reproduction uses an output-fidelity proxy
//! (relative RMSE of the final-layer accumulators against the full-precision
//! reference over a batch of inputs) because the ImageNet validation set and
//! trained models are unavailable. The *search procedure* is the same: find,
//! per layer, the smallest precision whose fidelity degradation stays within a
//! target, then verify all layers combined.

use crate::profile::{AccuracyTarget, NetworkProfile};
use loom_model::fixed::{required_precision, Precision};
use loom_model::inference::{
    run_chain, run_chain_with_precisions, InferenceOptions, InferenceTrace, NetworkParams,
};
use loom_model::network::Network;
use loom_model::quant::relative_rmse;
use loom_model::tensor::Tensor3;

/// Configuration of the precision search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Maximum tolerated relative RMSE of the final-layer accumulators versus
    /// the full-precision reference. Plays the role of the accuracy constraint.
    pub fidelity_threshold: f64,
    /// Activation precision ceiling (16 for the paper's baseline).
    pub max_precision: Precision,
    /// Storage precision the quantized inference scales inter-layer
    /// activations to. Real fixed-point deployments scale activations into a
    /// 12–13 bit range rather than the full 16 bits; the profile-derived
    /// precisions are searched below this ceiling.
    pub inference_activation_precision: Precision,
}

impl ProfilerConfig {
    /// Configuration mimicking the "100%" (no accuracy loss) target: a very
    /// tight fidelity budget.
    pub fn lossless() -> Self {
        ProfilerConfig {
            fidelity_threshold: 0.02,
            max_precision: Precision::FULL,
            inference_activation_precision: Precision::saturating(13),
        }
    }

    /// Configuration mimicking the "99%" (1% relative loss) target: a looser
    /// fidelity budget.
    pub fn relaxed() -> Self {
        ProfilerConfig {
            fidelity_threshold: 0.08,
            max_precision: Precision::FULL,
            inference_activation_precision: Precision::saturating(13),
        }
    }

    /// The accuracy target label this configuration corresponds to.
    pub fn target(&self) -> AccuracyTarget {
        if self.fidelity_threshold <= 0.02 {
            AccuracyTarget::Lossless
        } else {
            AccuracyTarget::Relative99
        }
    }
}

/// The outcome of profiling one network.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedProfile {
    /// The derived per-compute-layer input activation precisions (conv and FC
    /// layers, in network order).
    pub activation_precisions: Vec<Precision>,
    /// The smallest weight precision (shared across layers) that keeps the
    /// fidelity within budget.
    pub weight_precision: Precision,
    /// Fidelity (relative RMSE) of the final combined configuration.
    pub combined_fidelity: f64,
}

impl DerivedProfile {
    /// Converts the derived precisions into a [`NetworkProfile`] for `network`,
    /// mapping compute-layer precisions onto conv/FC layer positions.
    pub fn to_network_profile(&self, network: &Network, target: AccuracyTarget) -> NetworkProfile {
        let mut conv_acts = Vec::new();
        let mut fc_weights = Vec::new();
        for (idx, layer) in network.compute_layers().enumerate() {
            let p = self
                .activation_precisions
                .get(idx)
                .copied()
                .unwrap_or(Precision::FULL);
            if layer.kind.is_conv() {
                conv_acts.push(p);
            } else {
                fc_weights.push(self.weight_precision);
            }
        }
        NetworkProfile {
            network: network.name().to_string(),
            target,
            conv_activations: conv_acts,
            conv_weight: self.weight_precision,
            fc_weights,
        }
    }
}

/// Profiles `network` with the given synthetic parameters and input batch.
///
/// For every compute layer the profiler finds, by descending search, the
/// smallest input-activation precision that keeps the final-output fidelity
/// within `config.fidelity_threshold`; it then finds the smallest shared
/// weight precision the same way (weights are clamped, not re-trained), and
/// finally verifies the combined profile, backing precisions off one bit at a
/// time (round-robin) if the combination violates the budget.
///
/// # Panics
///
/// Panics if `inputs` is empty or the network cannot be run as a linear chain
/// (profiles only make sense for runnable networks).
pub fn profile_network(
    network: &Network,
    params: &NetworkParams,
    inputs: &[Tensor3],
    config: ProfilerConfig,
) -> DerivedProfile {
    assert!(!inputs.is_empty(), "profiling requires at least one input");
    let options = InferenceOptions {
        activation_precision: config.inference_activation_precision,
        relu: true,
    };
    let references: Vec<InferenceTrace> = inputs
        .iter()
        .map(|input| run_chain(network, params, input, options).expect("network must be runnable"))
        .collect();

    let n_compute = network.compute_layers().count();
    let mut per_layer = vec![config.max_precision; n_compute];

    // Phase 1: independent per-layer activation search.
    for layer_idx in 0..n_compute {
        let mut best = config.max_precision;
        for bits in (1..=config.max_precision.bits()).rev() {
            let candidate = Precision::new(bits).expect("bits in range");
            let mut trial = vec![config.max_precision; n_compute];
            trial[layer_idx] = candidate;
            let fidelity = batch_fidelity(network, params, inputs, &references, options, &trial);
            if fidelity <= config.fidelity_threshold {
                best = candidate;
            } else {
                break;
            }
        }
        per_layer[layer_idx] = best;
    }

    // Phase 2: shared weight precision search (clamping weights).
    let weight_precision = search_weight_precision(network, params, inputs, &references, config);

    // Phase 3: verify the combination; relax the most aggressive layer one bit
    // at a time until the budget holds again.
    let mut combined = per_layer.clone();
    let mut fidelity = batch_fidelity(network, params, inputs, &references, options, &combined);
    while fidelity > config.fidelity_threshold {
        let (idx, _) = combined
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| p.bits())
            .expect("at least one compute layer");
        if combined[idx] == config.max_precision {
            break;
        }
        combined[idx] = Precision::saturating(combined[idx].bits() + 1);
        fidelity = batch_fidelity(network, params, inputs, &references, options, &combined);
    }

    DerivedProfile {
        activation_precisions: combined,
        weight_precision,
        combined_fidelity: fidelity,
    }
}

/// Fidelity of a per-layer activation precision assignment over a batch: the
/// worst relative RMSE of the final accumulators across all inputs.
fn batch_fidelity(
    network: &Network,
    params: &NetworkParams,
    inputs: &[Tensor3],
    references: &[InferenceTrace],
    options: InferenceOptions,
    precisions: &[Precision],
) -> f64 {
    inputs
        .iter()
        .zip(references.iter())
        .map(|(input, reference)| {
            let trial = run_chain_with_precisions(network, params, input, options, precisions)
                .expect("network must be runnable");
            relative_rmse(reference.final_accumulators(), trial.final_accumulators())
        })
        .fold(0.0f64, f64::max)
}

/// Finds the smallest shared weight precision whose clamping keeps fidelity
/// within budget.
fn search_weight_precision(
    network: &Network,
    params: &NetworkParams,
    inputs: &[Tensor3],
    references: &[InferenceTrace],
    config: ProfilerConfig,
) -> Precision {
    let options = InferenceOptions {
        activation_precision: config.inference_activation_precision,
        relu: true,
    };
    // Weights never need more bits than the widest value present.
    let needed = params
        .layers()
        .iter()
        .map(|w| required_precision(&w.values))
        .max()
        .unwrap_or(Precision::FULL);
    let mut best = needed;
    for bits in (1..needed.bits()).rev() {
        let candidate = Precision::new(bits).expect("bits in range");
        let clamped = clamp_params(params, candidate);
        let fidelity: f64 = inputs
            .iter()
            .zip(references.iter())
            .map(|(input, reference)| {
                let trial =
                    run_chain(network, &clamped, input, options).expect("network must be runnable");
                relative_rmse(reference.final_accumulators(), trial.final_accumulators())
            })
            .fold(0.0f64, f64::max);
        if fidelity <= config.fidelity_threshold {
            best = candidate;
        } else {
            break;
        }
    }
    best
}

/// Clamps every weight in `params` to `precision`.
fn clamp_params(params: &NetworkParams, precision: Precision) -> NetworkParams {
    let layers = params
        .layers()
        .iter()
        .map(|w| loom_model::inference::LayerWeights {
            layer_name: w.layer_name.clone(),
            values: loom_model::quant::apply_precision(&w.values, precision),
        })
        .collect();
    NetworkParams::new(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::layer::{ConvSpec, FcSpec, PoolSpec};
    use loom_model::network::NetworkBuilder;
    use loom_model::synthetic::{synthetic_activations, ValueDistribution};
    use loom_model::tensor::Shape3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_net() -> Network {
        NetworkBuilder::new("profiler-test")
            .conv("conv1", ConvSpec::simple(2, 10, 10, 6, 3))
            .max_pool("pool1", PoolSpec::new(6, 8, 8, 2, 2))
            .conv("conv2", ConvSpec::simple(6, 4, 4, 8, 3))
            .fully_connected("fc1", FcSpec::new(8 * 2 * 2, 10))
            .build()
            .unwrap()
    }

    fn test_inputs(n: usize) -> Vec<Tensor3> {
        (0..n)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i as u64);
                Tensor3::from_vec(
                    Shape3::new(2, 10, 10),
                    synthetic_activations(
                        &mut rng,
                        200,
                        Precision::new(8).unwrap(),
                        ValueDistribution::activations(),
                    ),
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn profiler_finds_reduced_precisions() {
        let net = test_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 9);
        let inputs = test_inputs(2);
        let derived = profile_network(&net, &params, &inputs, ProfilerConfig::lossless());
        assert_eq!(derived.activation_precisions.len(), 3);
        // At least one layer should need fewer than the full 16 bits: the
        // values themselves only span ~8-13 bits.
        assert!(derived.activation_precisions.iter().any(|p| p.bits() < 16));
        assert!(derived.weight_precision.bits() <= 16);
        assert!(derived.combined_fidelity <= ProfilerConfig::lossless().fidelity_threshold);
    }

    #[test]
    fn relaxed_target_never_needs_more_bits_than_lossless() {
        let net = test_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 9);
        let inputs = test_inputs(1);
        let tight = profile_network(&net, &params, &inputs, ProfilerConfig::lossless());
        let loose = profile_network(&net, &params, &inputs, ProfilerConfig::relaxed());
        for (t, l) in tight
            .activation_precisions
            .iter()
            .zip(loose.activation_precisions.iter())
        {
            assert!(l <= t, "relaxed {l:?} vs lossless {t:?}");
        }
        assert!(loose.weight_precision <= tight.weight_precision);
    }

    #[test]
    fn derived_profile_converts_to_network_profile() {
        let net = test_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 9);
        let inputs = test_inputs(1);
        let derived = profile_network(&net, &params, &inputs, ProfilerConfig::lossless());
        let profile = derived.to_network_profile(&net, AccuracyTarget::Lossless);
        assert_eq!(profile.conv_activations.len(), 2);
        assert_eq!(profile.fc_weights.len(), 1);
        profile.validate_against(&net).unwrap();
    }

    #[test]
    fn profiler_config_targets() {
        assert_eq!(
            ProfilerConfig::lossless().target(),
            AccuracyTarget::Lossless
        );
        assert_eq!(
            ProfilerConfig::relaxed().target(),
            AccuracyTarget::Relative99
        );
    }
}
