//! Precision traces: the per-group effective precisions the cycle simulators
//! consume.
//!
//! For small networks the traces come from real values (the inference golden
//! model plus the detectors in [`crate::dynamic`] and [`crate::group`]). For
//! the six paper networks — whose trained weights and ImageNet inputs are not
//! available — a calibrated statistical model supplies the same information:
//! the average fraction of the profile precision that the runtime detectors
//! actually observe. The calibration constants are derived from the paper's own
//! published results (see `EXPERIMENTS.md`), which is exactly the substitution
//! documented in `DESIGN.md` §2: the cycle model sees precision statistics
//! pinned to the published data.

use loom_model::Precision;

/// Where a layer's per-group effective precisions come from.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupPrecisionSource {
    /// Every group uses the layer's nominal (profile) precision — i.e. dynamic
    /// detection disabled. This is what the plain `Stripes` comparator and a
    /// Loom configuration without dynamic reduction see.
    Nominal,
    /// Groups average `fraction × nominal` bits (0 < fraction ≤ 1): the
    /// statistical model of runtime detection.
    Scaled {
        /// Mean effective precision as a fraction of the nominal precision.
        fraction: f64,
    },
    /// Explicit measured per-group precisions (from real activation or weight
    /// values); indexed cyclically if the simulator needs more groups than
    /// provided.
    Explicit(Vec<Precision>),
    /// Explicit measured average effective bits (possibly fractional), e.g.
    /// Table 3's per-layer effective weight precisions.
    AverageBits(f64),
}

impl GroupPrecisionSource {
    /// Effective precision, in (possibly fractional) bits, of group
    /// `group_index` for a layer whose nominal precision is `nominal`.
    ///
    /// The result is always within `[1, nominal]`: dynamic detection can never
    /// exceed the profile precision and the hardware never uses fewer than one
    /// bit.
    pub fn effective_bits(&self, nominal: Precision, group_index: usize) -> f64 {
        let nominal_bits = f64::from(nominal.bits());
        let raw = match self {
            GroupPrecisionSource::Nominal => nominal_bits,
            GroupPrecisionSource::Scaled { fraction } => nominal_bits * fraction,
            GroupPrecisionSource::Explicit(groups) => {
                if groups.is_empty() {
                    nominal_bits
                } else {
                    f64::from(groups[group_index % groups.len()].bits())
                }
            }
            GroupPrecisionSource::AverageBits(bits) => *bits,
        };
        raw.clamp(1.0, nominal_bits)
    }

    /// Average effective bits over `groups` groups.
    pub fn average_effective_bits(&self, nominal: Precision, groups: usize) -> f64 {
        if groups == 0 {
            return f64::from(nominal.bits());
        }
        (0..groups)
            .map(|g| self.effective_bits(nominal, g))
            .sum::<f64>()
            / groups as f64
    }
}

/// Complete precision information for simulating one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPrecisionSpec {
    /// Profile (nominal) activation precision for the layer.
    pub activation: Precision,
    /// Profile (nominal) weight precision for the layer.
    pub weight: Precision,
    /// Runtime per-group activation precision source (dynamic reduction).
    pub dynamic_activation: GroupPrecisionSource,
    /// Per-group weight precision source (§4.6, Table 3/4). `Nominal` means the
    /// per-layer profile precision is used throughout, as in Table 2.
    pub group_weight: GroupPrecisionSource,
}

impl LayerPrecisionSpec {
    /// A spec where both activations and weights use the full 16 bits — the
    /// behaviour of the bit-parallel baseline.
    pub fn full_precision() -> Self {
        LayerPrecisionSpec {
            activation: Precision::FULL,
            weight: Precision::FULL,
            dynamic_activation: GroupPrecisionSource::Nominal,
            group_weight: GroupPrecisionSource::Nominal,
        }
    }

    /// A borrowed full-precision spec with `'static` lifetime, for hot paths
    /// that need a fallback spec without allocating (see
    /// `PrecisionAssignment::for_layer` in `loom-sim`).
    pub fn full_precision_static() -> &'static LayerPrecisionSpec {
        static FULL: LayerPrecisionSpec = LayerPrecisionSpec {
            activation: Precision::FULL,
            weight: Precision::FULL,
            dynamic_activation: GroupPrecisionSource::Nominal,
            group_weight: GroupPrecisionSource::Nominal,
        };
        &FULL
    }

    /// A spec using profile precisions only (no runtime detection), as the
    /// `Stripes` comparator and the static-profile Loom rows use.
    pub fn static_profile(activation: Precision, weight: Precision) -> Self {
        LayerPrecisionSpec {
            activation,
            weight,
            dynamic_activation: GroupPrecisionSource::Nominal,
            group_weight: GroupPrecisionSource::Nominal,
        }
    }

    /// Average effective activation bits over `groups` activation groups.
    pub fn effective_activation_bits(&self, groups: usize) -> f64 {
        self.dynamic_activation
            .average_effective_bits(self.activation, groups)
    }

    /// Average effective weight bits over `groups` weight groups.
    pub fn effective_weight_bits(&self, groups: usize) -> f64 {
        self.group_weight
            .average_effective_bits(self.weight, groups)
    }
}

/// Calibrated mean dynamic-activation fraction per network: the fraction of the
/// profile activation precision that the per-group-of-256 runtime detector
/// observes on average, derived from the gap between the paper's static-profile
/// (`Stripes`-style) and Loom results in Table 2.
///
/// Unknown networks get a conservative default of 0.85.
pub fn dynamic_activation_fraction(network: &str) -> f64 {
    match network.to_ascii_lowercase().as_str() {
        "nin" => 0.83,
        "alexnet" => 0.73,
        "googlenet" | "google" => 0.86,
        "vggs" | "vgg-s" => 0.63,
        "vggm" | "vgg-m" => 0.67,
        "vgg19" | "vgg-19" => 0.75,
        _ => 0.80,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(bits: u8) -> Precision {
        Precision::new(bits).unwrap()
    }

    #[test]
    fn nominal_source_returns_nominal_bits() {
        let s = GroupPrecisionSource::Nominal;
        assert_eq!(s.effective_bits(p(9), 0), 9.0);
        assert_eq!(s.average_effective_bits(p(9), 100), 9.0);
    }

    #[test]
    fn scaled_source_never_exceeds_nominal_or_drops_below_one() {
        let s = GroupPrecisionSource::Scaled { fraction: 0.75 };
        assert!((s.effective_bits(p(8), 0) - 6.0).abs() < 1e-12);
        let high = GroupPrecisionSource::Scaled { fraction: 1.5 };
        assert_eq!(high.effective_bits(p(8), 0), 8.0);
        let low = GroupPrecisionSource::Scaled { fraction: 0.01 };
        assert_eq!(low.effective_bits(p(8), 0), 1.0);
    }

    #[test]
    fn explicit_source_cycles_through_groups() {
        let s = GroupPrecisionSource::Explicit(vec![p(3), p(5)]);
        assert_eq!(s.effective_bits(p(8), 0), 3.0);
        assert_eq!(s.effective_bits(p(8), 1), 5.0);
        assert_eq!(s.effective_bits(p(8), 2), 3.0);
        assert_eq!(s.average_effective_bits(p(8), 4), 4.0);
        // Explicit precisions above nominal are clamped (detection can never
        // require more than the profile guarantees).
        let s = GroupPrecisionSource::Explicit(vec![p(12)]);
        assert_eq!(s.effective_bits(p(8), 0), 8.0);
        let empty = GroupPrecisionSource::Explicit(vec![]);
        assert_eq!(empty.effective_bits(p(8), 0), 8.0);
    }

    #[test]
    fn average_bits_source_is_clamped_to_nominal() {
        let s = GroupPrecisionSource::AverageBits(7.62);
        assert!((s.effective_bits(p(11), 0) - 7.62).abs() < 1e-12);
        assert_eq!(s.effective_bits(p(6), 0), 6.0);
    }

    #[test]
    fn layer_spec_constructors() {
        let full = LayerPrecisionSpec::full_precision();
        assert_eq!(full.activation.bits(), 16);
        assert_eq!(full.effective_activation_bits(10), 16.0);
        let spec = LayerPrecisionSpec::static_profile(p(7), p(11));
        assert_eq!(spec.effective_weight_bits(5), 11.0);
    }

    #[test]
    fn zero_groups_average_falls_back_to_nominal() {
        let s = GroupPrecisionSource::Scaled { fraction: 0.5 };
        assert_eq!(s.average_effective_bits(p(10), 0), 10.0);
    }

    #[test]
    fn calibration_fractions_are_sane() {
        for net in loom_model::zoo::NETWORK_NAMES {
            let f = dynamic_activation_fraction(net);
            assert!(f > 0.5 && f <= 1.0, "{net}: {f}");
        }
        assert_eq!(dynamic_activation_fraction("unknown"), 0.80);
    }
}
