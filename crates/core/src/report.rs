//! Plain-text table rendering used by every reproduction binary.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        cells.resize(self.header.len().max(cells.len()), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio with two decimals, rendering NaN (layers that do not exist,
/// e.g. NiN's FCLs) the way the paper prints them: `n/a`.
pub fn fmt_ratio(value: f64) -> String {
    if value.is_nan() {
        "n/a".to_string()
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Network", "Perf", "Eff"]);
        t.row(vec!["AlexNet", "4.25", "3.43"]);
        t.row(vec!["NiN", "2.97", "2.40"]);
        let s = t.render();
        assert!(s.contains("AlexNet"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Columns align: every line has the same width.
        let widths: Vec<usize> = s.lines().map(|l| l.len()).collect();
        assert_eq!(widths[0], widths[2]);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["A", "B", "C"]);
        t.row(vec!["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(4.254), "4.25");
        assert_eq!(fmt_ratio(f64::NAN), "n/a");
    }
}
