//! # loom-core
//!
//! Top-level library of the Loom reproduction (Sharify et al., DAC 2018): it
//! ties the CNN model substrate, precision machinery, cycle simulators, memory
//! hierarchy and energy/area models together into the experiments the paper
//! reports.
//!
//! * [`experiment`] — precision-assignment construction and per-network
//!   evaluation of every accelerator (DPNN, Stripes, DStripes, LM1b/2b/4b).
//! * [`sweep`] — the parallel sweep runner: fans (network × accelerator ×
//!   settings) jobs across the shared worker pool with a memoizing result
//!   cache.
//! * [`threads`] — the one thread-budget policy every binary shares
//!   (`--threads` beats `LOOM_THREADS` beats available parallelism), plus
//!   physical-core detection for bench provenance.
//! * [`tables`] — Table 2, Table 4 and Figure 4 reproductions.
//! * [`scaling`] — the Figure 5 scaling study with a realistic memory system.
//! * [`report`] — plain-text table rendering shared by the reproduction
//!   binaries in the `loom-bench` crate.
//! * [`export`] — CSV export of every experiment's data for external plotting.
//!
//! # Quick start
//!
//! ```
//! use loom_core::experiment::{evaluate_network, ExperimentSettings};
//! use loom_sim::engine::AcceleratorKind;
//! use loom_sim::LoomVariant;
//!
//! let alexnet = loom_model::zoo::alexnet();
//! let eval = evaluate_network(&alexnet, &ExperimentSettings::default());
//! let lm1b = eval.result_for(AcceleratorKind::Loom(LoomVariant::Lm1b)).unwrap();
//! assert!(lm1b.conv_speedup > 1.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiment;
pub mod export;
pub mod report;
pub mod scaling;
pub mod sweep;
pub mod tables;
pub mod threads;

pub use experiment::{evaluate_all_networks, evaluate_network, ExperimentSettings};
pub use scaling::{figure5, figure5_with, Figure5};
pub use sweep::{SweepOptions, SweepRunner};
pub use tables::{figure4, figure4_with, table2, table2_with, table4, table4_with};

// Re-export the crates a downstream user needs to drive the library without
// having to depend on each one individually.
pub use loom_energy;
pub use loom_mem;
pub use loom_model;
pub use loom_precision;
pub use loom_sim;
