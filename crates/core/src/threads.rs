//! The one thread-budget policy every binary shares: **`--threads` flag beats
//! `LOOM_THREADS` beats [`available`]** (the machine's available
//! parallelism). Bench binaries and the sweep runner resolve their worker
//! count through [`resolve`] so the precedence cannot drift between tools,
//! and [`physical_cores`] reports the physical core count for bench
//! provenance (SMT siblings share execution ports, so scaling floors are
//! judged against physical cores, not logical CPUs).

/// Logical CPUs available to this process (1 if undeterminable).
pub fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `LOOM_THREADS` environment override, if set to a positive integer.
/// Zero or unparsable values are ignored (callers fall through to
/// [`available`]).
pub fn env_override() -> Option<usize> {
    std::env::var("LOOM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Resolves a worker-thread count with the shared precedence: an explicit
/// `--threads` flag value beats `LOOM_THREADS` beats [`available`]. A flag
/// value of `Some(0)` is treated as unset (the CLI parsers already reject
/// zero, this keeps the helper total).
pub fn resolve(flag: Option<usize>) -> usize {
    flag.filter(|&n| n > 0)
        .or_else(env_override)
        .unwrap_or_else(available)
}

/// Physical core count: unique `(physical id, core id)` pairs from
/// `/proc/cpuinfo`, falling back to [`available`] when the file is missing
/// or unparsable (non-Linux hosts, restricted containers).
pub fn physical_cores() -> usize {
    physical_cores_from(&std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default())
        .unwrap_or_else(available)
}

/// Parses `/proc/cpuinfo` text into a physical core count. `None` when the
/// text holds no topology lines (the caller falls back).
fn physical_cores_from(cpuinfo: &str) -> Option<usize> {
    let mut cores = std::collections::HashSet::new();
    let (mut package, mut core) = (None::<u64>, None::<u64>);
    for line in cpuinfo.lines() {
        let Some((key, value)) = line.split_once(':') else {
            // Blank line: one logical-CPU stanza ended.
            if let (Some(p), Some(c)) = (package, core) {
                cores.insert((p, c));
            }
            (package, core) = (None, None);
            continue;
        };
        match key.trim() {
            "physical id" => package = value.trim().parse().ok(),
            "core id" => core = value.trim().parse().ok(),
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (package, core) {
        cores.insert((p, c));
    }
    (!cores.is_empty()).then_some(cores.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_beats_env_beats_available() {
        // The flag always wins outright; zero flags are treated as unset.
        assert_eq!(resolve(Some(3)), 3);
        assert!(resolve(Some(0)) >= 1);
        assert!(resolve(None) >= 1);
    }

    #[test]
    fn cpuinfo_topology_counts_unique_cores() {
        // Two packages × two cores, each core with two SMT siblings: eight
        // stanzas, four physical cores.
        let mut text = String::new();
        for cpu in 0..8 {
            text.push_str(&format!(
                "processor\t: {cpu}\nphysical id\t: {}\ncore id\t: {}\n\n",
                cpu / 4,
                (cpu / 2) % 2
            ));
        }
        assert_eq!(physical_cores_from(&text), Some(4));
        // No topology lines (ARM-style cpuinfo): the caller falls back.
        assert_eq!(physical_cores_from("processor\t: 0\n\n"), None);
        assert_eq!(physical_cores_from(""), None);
        // Missing trailing blank line still counts the last stanza.
        assert_eq!(
            physical_cores_from("physical id\t: 0\ncore id\t: 0\n"),
            Some(1)
        );
    }

    #[test]
    fn physical_cores_never_exceeds_reason() {
        let cores = physical_cores();
        assert!(cores >= 1);
    }
}
