//! The parallel sweep runner: fans (network × accelerator × settings) jobs
//! across the shared [`loom_sim::pool`] worker pool with deterministic
//! result ordering and a memoizing result cache keyed by
//! `(network, kind, settings)`.
//!
//! Every table and figure of the paper is a sweep over this product space, so
//! the reproduction binaries (`table2`, `table4`, `figure4`, `figure5`,
//! `all`, `sweep_bench`) all drive a [`SweepRunner`]. A runner with one
//! thread executes jobs inline in submission order, which makes the serial
//! and parallel paths literally the same code — the determinism tests assert
//! the outputs are identical.

use crate::experiment::{
    assemble_evaluation, build_assignment, comparator_kinds, ExperimentSettings, NetworkEvaluation,
};
use loom_model::network::Network;
use loom_model::zoo;
use loom_sim::accelerator;
use loom_sim::counts::NetworkSim;
use loom_sim::engine::{AcceleratorKind, PrecisionAssignment};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// How many worker threads a sweep uses by default: the machine's available
/// parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    crate::threads::available()
}

/// Command-line options shared by the sweep-driving binaries: `--threads N`
/// (or the `LOOM_THREADS` environment variable) and
/// `--filter <network|accelerator>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepOptions {
    /// Worker threads for the sweep.
    pub threads: usize,
    /// Case-insensitive substring restricting networks and/or accelerators.
    pub filter: Option<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: default_threads(),
            filter: None,
        }
    }
}

impl SweepOptions {
    /// Parses options from an iterator of command-line arguments (excluding
    /// the program name). Unrecognised arguments are ignored so binaries can
    /// layer their own flags on top. Precedence for the thread count (the
    /// shared [`crate::threads::resolve`] policy): `--threads` beats
    /// `LOOM_THREADS` beats [`default_threads`].
    pub fn parse<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut flag: Option<usize> = None;
        let mut filter: Option<String> = None;
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_ref() {
                "--threads" => {
                    if let Some(n) = args.next().and_then(|v| v.as_ref().parse::<usize>().ok()) {
                        if n > 0 {
                            flag = Some(n);
                        }
                    }
                }
                "--filter" => {
                    filter = args.next().map(|v| v.as_ref().to_string());
                }
                other => {
                    if let Some(n) = other.strip_prefix("--threads=") {
                        if let Ok(n) = n.parse::<usize>() {
                            if n > 0 {
                                flag = Some(n);
                            }
                        }
                    } else if let Some(f) = other.strip_prefix("--filter=") {
                        filter = Some(f.to_string());
                    }
                }
            }
        }
        SweepOptions {
            threads: crate::threads::resolve(flag),
            filter,
        }
    }

    /// Parses the current process's command-line arguments.
    pub fn from_env() -> Self {
        SweepOptions::parse(std::env::args().skip(1))
    }

    /// Whether `name` matches the filter (no filter matches everything).
    pub fn matches(&self, name: &str) -> bool {
        match &self.filter {
            None => true,
            Some(f) => name.to_ascii_lowercase().contains(&f.to_ascii_lowercase()),
        }
    }

    /// True when a filter is set but matches none of `names`. Binaries use
    /// this to warn the user (a typo'd `--filter` falls back to the full
    /// matrix — see [`SweepOptions::apply`] — and that should be loud, not
    /// silent).
    pub fn matches_nothing_in<I, S>(&self, names: I) -> bool
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.filter.is_some() && !names.into_iter().any(|n| self.matches(n.as_ref()))
    }

    /// Applies the filter to a (networks × accelerators) matrix. The filter
    /// restricts a dimension only when it matches something in it, so
    /// `--filter alexnet` keeps every accelerator and `--filter stripes`
    /// keeps every network. A filter that matches neither dimension leaves
    /// the full matrix in place — pair with
    /// [`SweepOptions::matches_nothing_in`] to warn in that case.
    pub fn apply(
        &self,
        networks: Vec<Network>,
        kinds: Vec<AcceleratorKind>,
    ) -> (Vec<Network>, Vec<AcceleratorKind>) {
        if self.filter.is_none() {
            return (networks, kinds);
        }
        let matched_networks: Vec<Network> = networks
            .iter()
            .filter(|n| self.matches(n.name()))
            .cloned()
            .collect();
        let matched_kinds: Vec<AcceleratorKind> = kinds
            .iter()
            .copied()
            .filter(|k| self.matches(&k.to_string()))
            .collect();
        (
            if matched_networks.is_empty() {
                networks
            } else {
                matched_networks
            },
            if matched_kinds.is_empty() {
                kinds
            } else {
                matched_kinds
            },
        )
    }
}

/// One job of a sweep: simulate `network` on `kind` under `settings`.
///
/// The network is identified by name plus a cheap structural fingerprint
/// (layer count and total MACs), so two structurally different networks that
/// happen to share a name cannot silently serve each other's cached results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SweepKey {
    /// Network name (unique within the zoo).
    pub network: String,
    /// Structural fingerprint: (layer count, total MACs).
    pub fingerprint: (usize, u64),
    /// Accelerator kind.
    pub kind: AcceleratorKind,
    /// Experiment settings (design point, accuracy target, dynamic
    /// activations, weight granularity).
    pub settings: ExperimentSettings,
}

impl SweepKey {
    fn new(network: &Network, kind: AcceleratorKind, settings: &ExperimentSettings) -> Self {
        let layers = network.layers();
        SweepKey {
            network: network.name().to_string(),
            fingerprint: (layers.len(), layers.iter().map(|l| l.kind.macs()).sum()),
            kind,
            settings: *settings,
        }
    }
}

/// The parallel sweep runner: a worker pool plus a memoizing result cache.
///
/// Results are cached by [`SweepKey`], so a binary that reuses one runner
/// across tables (as `all` does) simulates each (network, accelerator,
/// settings) point exactly once regardless of how many tables consume it.
/// Precision assignments are memoized separately per (network, settings), so
/// the six per-network accelerator runs share one assignment build.
pub struct SweepRunner {
    threads: usize,
    cache: Mutex<HashMap<SweepKey, Arc<NetworkSim>>>,
    assignments: Mutex<HashMap<(String, ExperimentSettings), Arc<PrecisionAssignment>>>,
}

impl SweepRunner {
    /// A runner with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
            assignments: Mutex::new(HashMap::new()),
        }
    }

    /// A single-threaded runner: jobs run inline, in submission order.
    pub fn serial() -> Self {
        SweepRunner::new(1)
    }

    /// A runner configured from parsed [`SweepOptions`].
    pub fn from_options(options: &SweepOptions) -> Self {
        SweepRunner::new(options.threads)
    }

    /// Worker threads this runner fans jobs across.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of memoized simulation results.
    pub fn cached_results(&self) -> usize {
        self.cache.lock().expect("sweep cache poisoned").len()
    }

    /// The memoized precision assignment for `network` under `settings`.
    fn assignment(
        &self,
        network: &Network,
        settings: &ExperimentSettings,
    ) -> Arc<PrecisionAssignment> {
        let key = (network.name().to_string(), *settings);
        if let Some(hit) = self
            .assignments
            .lock()
            .expect("assignment cache poisoned")
            .get(&key)
            .cloned()
        {
            return hit;
        }
        let assignment = Arc::new(build_assignment(network, settings));
        self.assignments
            .lock()
            .expect("assignment cache poisoned")
            .entry(key)
            .or_insert_with(|| assignment.clone())
            .clone()
    }

    /// Simulates one sweep point, memoized. Concurrent calls for the same key
    /// may both compute (the cache lock is not held while simulating), but
    /// both produce identical results and one wins the insert. Only the
    /// accelerator needed for the job is instantiated — no full registry.
    pub fn simulate(
        &self,
        network: &Network,
        kind: AcceleratorKind,
        settings: &ExperimentSettings,
    ) -> Arc<NetworkSim> {
        let key = SweepKey::new(network, kind, settings);
        if let Some(hit) = self
            .cache
            .lock()
            .expect("sweep cache poisoned")
            .get(&key)
            .cloned()
        {
            return hit;
        }
        let assignment = self.assignment(network, settings);
        let accelerator = accelerator::build(kind, settings.config);
        let sim = Arc::new(accelerator.simulate_network(network, &assignment));
        self.cache
            .lock()
            .expect("sweep cache poisoned")
            .entry(key)
            .or_insert_with(|| sim.clone())
            .clone()
    }

    /// Runs `f` over every item, fanning the items across the shared
    /// [`loom_sim::pool`] worker pool (the same persistent workers the layer
    /// engines use, so a sweep and the inference it drives never fight over
    /// oversubscribed scoped threads). The result vector is in item order
    /// regardless of which worker ran which item or in what order they
    /// finished.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        loom_sim::pool::ordered_map(self.threads, items.len(), |i| f(&items[i]))
    }

    /// Evaluates `networks` under `settings` on the baseline and every
    /// comparator, fanning the (network × accelerator) product across the
    /// worker pool. The output is ordered by the input network order and is
    /// identical to calling [`crate::experiment::evaluate_network`] per
    /// network.
    pub fn evaluate_networks(
        &self,
        networks: &[Network],
        settings: &ExperimentSettings,
    ) -> Vec<NetworkEvaluation> {
        self.evaluate_networks_on(networks, &comparator_kinds(), settings)
    }

    /// Like [`SweepRunner::evaluate_networks`] but against a subset of
    /// comparators (e.g. a `--filter`ed partial sweep). The DPNN baseline is
    /// always simulated — every relative result is normalised to it — and is
    /// skipped from `comparators` if present.
    pub fn evaluate_networks_on(
        &self,
        networks: &[Network],
        comparators: &[AcceleratorKind],
        settings: &ExperimentSettings,
    ) -> Vec<NetworkEvaluation> {
        let mut kinds = vec![AcceleratorKind::Dpnn];
        kinds.extend(
            comparators
                .iter()
                .copied()
                .filter(|&k| k != AcceleratorKind::Dpnn),
        );
        let jobs: Vec<(usize, AcceleratorKind)> = (0..networks.len())
            .flat_map(|ni| kinds.iter().map(move |&k| (ni, k)))
            .collect();
        let sims = self.parallel_map(&jobs, |&(ni, kind)| {
            self.simulate(&networks[ni], kind, settings)
        });
        let per_network = kinds.len();
        networks
            .iter()
            .enumerate()
            .map(|(ni, network)| {
                let base = ni * per_network;
                // Only the baseline is cloned out of its Arc (the evaluation
                // owns it); comparator sims are borrowed, consumed into
                // relative results, and stay shared in the cache.
                let dpnn = sims[base].as_ref().clone();
                let comparator_sims = kinds[1..]
                    .iter()
                    .enumerate()
                    .map(|(ci, &kind)| (kind, sims[base + 1 + ci].as_ref()));
                assemble_evaluation(network, settings, dpnn, comparator_sims)
            })
            .collect()
    }

    /// Evaluates all six paper networks under `settings`, in table order —
    /// the parallel equivalent of
    /// [`crate::experiment::evaluate_all_networks`].
    pub fn evaluate_zoo(&self, settings: &ExperimentSettings) -> Vec<NetworkEvaluation> {
        self.evaluate_networks(&zoo::all(), settings)
    }
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("cached_results", &self.cached_results())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_item_order() {
        let runner = SweepRunner::new(4);
        let items: Vec<usize> = (0..64).collect();
        let doubled = runner.parallel_map(&items, |&i| i * 2);
        assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        // Serial fast path produces the same thing.
        assert_eq!(
            SweepRunner::serial().parallel_map(&items, |&i| i * 2),
            doubled
        );
    }

    #[test]
    fn cache_returns_the_same_arc_on_the_second_call() {
        let runner = SweepRunner::serial();
        let net = zoo::nin();
        let settings = ExperimentSettings::default();
        let first = runner.simulate(&net, AcceleratorKind::Dpnn, &settings);
        let second = runner.simulate(&net, AcceleratorKind::Dpnn, &settings);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(runner.cached_results(), 1);
        // A different settings key is a different cache entry.
        let other = runner.simulate(
            &net,
            AcceleratorKind::Dpnn,
            &ExperimentSettings::per_group_weights(),
        );
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!(runner.cached_results(), 2);
    }

    #[test]
    fn options_parsing_and_precedence() {
        let o = SweepOptions::parse(["--threads", "3", "--filter", "alexnet"]);
        assert_eq!(o.threads, 3);
        assert_eq!(o.filter.as_deref(), Some("alexnet"));
        let o = SweepOptions::parse(["--threads=7", "--filter=Stripes"]);
        assert_eq!(o.threads, 7);
        assert_eq!(o.filter.as_deref(), Some("Stripes"));
        // Zero and garbage thread counts are ignored.
        let o = SweepOptions::parse(["--threads", "0"]);
        assert!(o.threads >= 1);
        let o = SweepOptions::parse(["--threads", "banana"]);
        assert!(o.threads >= 1);
        assert!(o.matches("anything"));
    }

    #[test]
    fn no_match_filters_are_detectable() {
        let options = SweepOptions {
            threads: 1,
            filter: Some("alexnt".to_string()), // typo
        };
        let names = zoo::all()
            .iter()
            .map(|n| n.name().to_string())
            .collect::<Vec<_>>();
        assert!(options.matches_nothing_in(names.iter()));
        let options = SweepOptions {
            threads: 1,
            filter: Some("alexnet".to_string()),
        };
        assert!(!options.matches_nothing_in(names.iter()));
        assert!(!SweepOptions::default().matches_nothing_in(names.iter()));
    }

    #[test]
    fn sweep_key_fingerprints_structurally_different_networks() {
        use loom_model::layer::ConvSpec;
        use loom_model::network::NetworkBuilder;
        let small = NetworkBuilder::new("Impostor")
            .conv("c1", ConvSpec::simple(3, 9, 9, 8, 3))
            .build()
            .unwrap();
        let large = NetworkBuilder::new("Impostor")
            .conv("c1", ConvSpec::simple(3, 17, 17, 16, 3))
            .build()
            .unwrap();
        let settings = ExperimentSettings::default();
        let a = SweepKey::new(&small, AcceleratorKind::Dpnn, &settings);
        let b = SweepKey::new(&large, AcceleratorKind::Dpnn, &settings);
        assert_eq!(a.network, b.network);
        assert_ne!(a, b, "same name, different structure must not collide");
    }

    #[test]
    fn filter_restricts_only_the_matching_dimension() {
        let options = SweepOptions {
            threads: 1,
            filter: Some("alexnet".to_string()),
        };
        let (nets, kinds) = options.apply(zoo::all(), AcceleratorKind::all());
        assert_eq!(nets.len(), 1);
        assert_eq!(nets[0].name(), "AlexNet");
        assert_eq!(kinds.len(), 6, "no accelerator matches 'alexnet'");

        let options = SweepOptions {
            threads: 1,
            filter: Some("stripes".to_string()),
        };
        let (nets, kinds) = options.apply(zoo::all(), AcceleratorKind::all());
        assert_eq!(nets.len(), 6, "no network matches 'stripes'");
        assert_eq!(kinds.len(), 2, "Stripes and DStripes");

        let options = SweepOptions {
            threads: 1,
            filter: Some("no-such-thing".to_string()),
        };
        let (nets, kinds) = options.apply(zoo::all(), AcceleratorKind::all());
        assert_eq!((nets.len(), kinds.len()), (6, 6));
    }

    #[test]
    fn parallel_evaluation_matches_the_serial_path() {
        let settings = ExperimentSettings::default();
        let networks = [zoo::nin(), zoo::alexnet()];
        let parallel = SweepRunner::new(4).evaluate_networks(&networks, &settings);
        for (eval, network) in parallel.iter().zip(networks.iter()) {
            let serial = crate::experiment::evaluate_network(network, &settings);
            assert_eq!(eval.network, serial.network);
            assert_eq!(eval.dpnn, serial.dpnn);
            assert_eq!(eval.relatives.len(), serial.relatives.len());
            for ((pk, pr), (sk, sr)) in eval.relatives.iter().zip(serial.relatives.iter()) {
                assert_eq!(pk, sk);
                // Bit-wise comparison: NaN (absent layer classes) must match
                // NaN, which `==` on floats would reject.
                for (p, s) in [
                    (pr.conv_speedup, sr.conv_speedup),
                    (pr.fc_speedup, sr.fc_speedup),
                    (pr.all_speedup, sr.all_speedup),
                    (pr.conv_efficiency, sr.conv_efficiency),
                    (pr.fc_efficiency, sr.fc_efficiency),
                    (pr.all_efficiency, sr.all_efficiency),
                ] {
                    assert_eq!(p.to_bits(), s.to_bits(), "{} on {pk}", eval.network);
                }
            }
        }
    }
}
