//! Experiment plumbing shared by every table and figure of the evaluation:
//! building precision assignments from the published profiles, running all
//! accelerators over a network, and collecting speedup / efficiency numbers.

use loom_energy::EnergyModel;
use loom_model::network::Network;
use loom_model::zoo;
use loom_precision::table1;
use loom_precision::table3;
use loom_precision::trace::dynamic_activation_fraction;
use loom_precision::AccuracyTarget;
use loom_sim::counts::NetworkSim;
use loom_sim::engine::{assignment_from_profile, AcceleratorKind, PrecisionAssignment, Simulator};
use loom_sim::{EquivalentConfig, LoomVariant};

/// Which weight-precision granularity an experiment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightGranularity {
    /// One weight precision per network/layer as in Table 1 (Table 2, Figure 4).
    PerLayerProfile,
    /// Per-group effective weight precisions as in Table 3 (Table 4).
    PerGroupEffective,
}

/// Settings for one experimental run.
///
/// Settings are `Eq + Hash` so they can key the sweep runner's memoizing
/// result cache (see [`crate::sweep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExperimentSettings {
    /// Design point (equivalent peak MACs per cycle).
    pub config: EquivalentConfig,
    /// Accuracy target selecting the Table 1 profile.
    pub target: AccuracyTarget,
    /// Whether Loom and DStripes apply runtime per-group activation precision
    /// reduction (the paper's default).
    pub dynamic_activation: bool,
    /// Weight precision granularity.
    pub weights: WeightGranularity,
}

impl Default for ExperimentSettings {
    fn default() -> Self {
        ExperimentSettings {
            config: EquivalentConfig::BASELINE_128,
            target: AccuracyTarget::Lossless,
            dynamic_activation: true,
            weights: WeightGranularity::PerLayerProfile,
        }
    }
}

impl ExperimentSettings {
    /// The Table 4 configuration: per-group weight precisions, 100% profile.
    pub fn per_group_weights() -> Self {
        ExperimentSettings {
            weights: WeightGranularity::PerGroupEffective,
            ..Default::default()
        }
    }
}

/// The precision assignment an experiment uses for `network` under `settings`.
///
/// `for_loom` selects whether the assignment is for an accelerator that
/// exploits runtime activation detection (Loom, DStripes); static-only
/// accelerators (Stripes) and the baseline ignore the dynamic source anyway.
pub fn build_assignment(network: &Network, settings: &ExperimentSettings) -> PrecisionAssignment {
    let profile = table1::profile(network.name(), settings.target)
        .unwrap_or_else(|| panic!("no Table 1 profile for network {}", network.name()));
    let fraction = if settings.dynamic_activation {
        Some(dynamic_activation_fraction(network.name()))
    } else {
        None
    };
    let conv_bits_storage;
    let fc_bits_storage;
    let group_bits = match settings.weights {
        WeightGranularity::PerLayerProfile => None,
        WeightGranularity::PerGroupEffective => {
            conv_bits_storage = table3::effective_conv_weight_bits(network.name())
                .unwrap_or_else(|| panic!("no Table 3 data for network {}", network.name()));
            let nominal_fc: Vec<u8> = profile.fc_weights.iter().map(|p| p.bits()).collect();
            fc_bits_storage = table3::effective_fc_weight_bits(
                network.name(),
                &nominal_fc,
                profile.conv_weight.bits(),
            );
            Some((conv_bits_storage.as_slice(), fc_bits_storage.as_slice()))
        }
    };
    assignment_from_profile(network, &profile, fraction, group_bits)
}

/// Speedup and energy efficiency of one accelerator relative to the baseline,
/// split by layer class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeResult {
    /// Speedup over the convolutional layers.
    pub conv_speedup: f64,
    /// Speedup over the fully-connected layers (NaN when the network has none).
    pub fc_speedup: f64,
    /// Speedup over all layers combined.
    pub all_speedup: f64,
    /// Energy efficiency over the convolutional layers.
    pub conv_efficiency: f64,
    /// Energy efficiency over the fully-connected layers.
    pub fc_efficiency: f64,
    /// Energy efficiency over all layers combined.
    pub all_efficiency: f64,
}

/// The evaluation of one network: the baseline run plus every comparator.
#[derive(Debug, Clone)]
pub struct NetworkEvaluation {
    /// Network name.
    pub network: String,
    /// Whether the network has fully-connected layers at all (NiN does not).
    pub has_fc: bool,
    /// The baseline simulation.
    pub dpnn: NetworkSim,
    /// Per-accelerator relative results, keyed by the accelerator kind.
    pub relatives: Vec<(AcceleratorKind, RelativeResult)>,
}

impl NetworkEvaluation {
    /// The relative result for one accelerator, if it was evaluated.
    pub fn result_for(&self, kind: AcceleratorKind) -> Option<RelativeResult> {
        self.relatives
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, r)| *r)
    }
}

/// The non-baseline accelerators every evaluation compares against DPNN, in
/// table order.
pub fn comparator_kinds() -> [AcceleratorKind; 5] {
    [
        AcceleratorKind::Stripes,
        AcceleratorKind::DStripes,
        AcceleratorKind::Loom(LoomVariant::Lm1b),
        AcceleratorKind::Loom(LoomVariant::Lm2b),
        AcceleratorKind::Loom(LoomVariant::Lm4b),
    ]
}

/// Assembles a [`NetworkEvaluation`] from already-simulated runs: the DPNN
/// baseline plus one [`NetworkSim`] per comparator. This is the common tail
/// of the serial path ([`evaluate_network`]) and the parallel sweep runner
/// ([`crate::sweep::SweepRunner`]), which produce the sims differently but
/// must attach energy and relative results identically.
pub fn assemble_evaluation<'a>(
    network: &Network,
    settings: &ExperimentSettings,
    dpnn: NetworkSim,
    comparator_sims: impl IntoIterator<Item = (AcceleratorKind, &'a NetworkSim)>,
) -> NetworkEvaluation {
    let energy = EnergyModel::new(settings.config);
    let relatives = comparator_sims
        .into_iter()
        .map(|(kind, sim)| (kind, relative_result(&energy, &dpnn, sim, kind)))
        .collect();
    NetworkEvaluation {
        network: network.name().to_string(),
        has_fc: network.fc_layers().count() > 0,
        dpnn,
        relatives,
    }
}

/// Runs `network` under `settings` on the baseline and all comparators.
pub fn evaluate_network(network: &Network, settings: &ExperimentSettings) -> NetworkEvaluation {
    let assignment = build_assignment(network, settings);
    let simulator = Simulator::new(settings.config);
    let dpnn = simulator.simulate(AcceleratorKind::Dpnn, network, &assignment);
    let comparator_sims: Vec<(AcceleratorKind, NetworkSim)> = comparator_kinds()
        .iter()
        .map(|&kind| (kind, simulator.simulate(kind, network, &assignment)))
        .collect();
    assemble_evaluation(
        network,
        settings,
        dpnn,
        comparator_sims.iter().map(|(k, s)| (*k, s)),
    )
}

/// Evaluates all six paper networks under `settings`, in table order.
pub fn evaluate_all_networks(settings: &ExperimentSettings) -> Vec<NetworkEvaluation> {
    zoo::all()
        .iter()
        .map(|net| evaluate_network(net, settings))
        .collect()
}

fn relative_result(
    energy: &EnergyModel,
    dpnn: &NetworkSim,
    sim: &NetworkSim,
    kind: AcceleratorKind,
) -> RelativeResult {
    // Per-class efficiency: the paper's Table 2 reports efficiency separately
    // for FCLs and CVLs; the energy model is applied to the per-class cycle
    // and traffic subsets. Off-chip energy is excluded here, matching the §4.3
    // setting (it is accounted for separately in the Figure 5 study).
    let conv_eff = class_efficiency(energy, dpnn, sim, kind, LayerFilter::Conv);
    let fc_eff = class_efficiency(energy, dpnn, sim, kind, LayerFilter::Fc);
    let all_eff = class_efficiency(energy, dpnn, sim, kind, LayerFilter::All);
    RelativeResult {
        conv_speedup: sim.conv_speedup_vs(dpnn),
        fc_speedup: sim.fc_speedup_vs(dpnn),
        all_speedup: sim.speedup_vs(dpnn),
        conv_efficiency: conv_eff,
        fc_efficiency: fc_eff,
        all_efficiency: all_eff,
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LayerFilter {
    Conv,
    Fc,
    All,
}

fn filtered(sim: &NetworkSim, filter: LayerFilter) -> NetworkSim {
    use loom_sim::counts::LayerClass;
    NetworkSim {
        accelerator: sim.accelerator.clone(),
        network: sim.network.clone(),
        layers: sim
            .layers
            .iter()
            .filter(|l| match filter {
                LayerFilter::Conv => l.class == LayerClass::Conv,
                LayerFilter::Fc => l.class == LayerClass::FullyConnected,
                LayerFilter::All => true,
            })
            .cloned()
            .collect(),
    }
}

fn class_efficiency(
    energy: &EnergyModel,
    dpnn: &NetworkSim,
    sim: &NetworkSim,
    kind: AcceleratorKind,
    filter: LayerFilter,
) -> f64 {
    let dpnn_f = filtered(dpnn, filter);
    let sim_f = filtered(sim, filter);
    if dpnn_f.total_cycles() == 0 || sim_f.total_cycles() == 0 {
        return f64::NAN;
    }
    energy.efficiency(AcceleratorKind::Dpnn, &dpnn_f, 0, kind, &sim_f, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_headline_numbers_are_in_the_paper_band() {
        let eval = evaluate_network(&zoo::alexnet(), &ExperimentSettings::default());
        let lm1b = eval
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        // Paper Table 2, AlexNet, 100% profile: conv 4.25x / 3.43x eff,
        // FC 1.65x / 1.34x eff. Allow a generous band for the substitutions.
        assert!(
            (3.4..=5.2).contains(&lm1b.conv_speedup),
            "conv {}",
            lm1b.conv_speedup
        );
        assert!(
            (1.4..=1.9).contains(&lm1b.fc_speedup),
            "fc {}",
            lm1b.fc_speedup
        );
        assert!(
            lm1b.conv_efficiency > 2.0,
            "conv eff {}",
            lm1b.conv_efficiency
        );
        assert!(lm1b.fc_efficiency > 1.0, "fc eff {}", lm1b.fc_efficiency);
    }

    #[test]
    fn stripes_matches_its_published_alexnet_numbers() {
        let eval = evaluate_network(&zoo::alexnet(), &ExperimentSettings::default());
        let stripes = eval.result_for(AcceleratorKind::Stripes).unwrap();
        // Paper: Stripes AlexNet conv 2.34x, FC 1.00x.
        assert!(
            (2.1..=2.6).contains(&stripes.conv_speedup),
            "conv {}",
            stripes.conv_speedup
        );
        assert!(
            (0.99..=1.01).contains(&stripes.fc_speedup),
            "fc {}",
            stripes.fc_speedup
        );
    }

    #[test]
    fn nin_has_no_fc_results() {
        let eval = evaluate_network(&zoo::nin(), &ExperimentSettings::default());
        assert!(!eval.has_fc);
        let lm = eval
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        assert!(lm.fc_efficiency.is_nan());
        assert!(lm.conv_speedup > 2.0);
    }

    #[test]
    fn per_group_weights_improve_over_per_layer() {
        let net = zoo::alexnet();
        let per_layer = evaluate_network(&net, &ExperimentSettings::default());
        let per_group = evaluate_network(&net, &ExperimentSettings::per_group_weights());
        let a = per_layer
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        let b = per_group
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        assert!(b.all_speedup > a.all_speedup);
    }

    #[test]
    fn ninety_nine_percent_profile_is_at_least_as_fast() {
        let net = zoo::alexnet();
        let full = evaluate_network(&net, &ExperimentSettings::default());
        let relaxed = evaluate_network(
            &net,
            &ExperimentSettings {
                target: AccuracyTarget::Relative99,
                ..Default::default()
            },
        );
        let f = full
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        let r = relaxed
            .result_for(AcceleratorKind::Loom(LoomVariant::Lm1b))
            .unwrap();
        assert!(r.all_speedup >= f.all_speedup * 0.99);
    }
}
