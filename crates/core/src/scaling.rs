//! The Figure 5 scaling study: how Loom and DStripes compare to an
//! equally-provisioned DPNN as the equivalent peak compute bandwidth grows from
//! 32 to 512 MACs/cycle, with a realistic memory hierarchy (finite activation
//! memory, single-channel LPDDR4-4267 off-chip memory).

use crate::experiment::ExperimentSettings;
use crate::sweep::SweepRunner;
use loom_energy::area::area;
use loom_energy::EnergyModel;
use loom_mem::compress::CompressedPlanes;
use loom_mem::hierarchy::{required_am_bytes, MemoryConfig, MemorySystem};
use loom_mem::traffic::StoragePrecision;
use loom_model::network::Network;
use loom_model::synthetic;
use loom_model::zoo;
use loom_model::Precision;
use loom_precision::table1;
use loom_sim::counts::{geomean, NetworkSim};
use loom_sim::engine::AcceleratorKind;
use loom_sim::{EquivalentConfig, LoomVariant};
use std::sync::OnceLock;

/// One design point of the scaling study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Equivalent peak compute bandwidth (MACs/cycle).
    pub config: usize,
    /// Loom-1b performance relative to DPNN, all layers (geomean).
    pub loom_all: f64,
    /// Loom-1b performance relative to DPNN, convolutional layers only.
    pub loom_conv: f64,
    /// DStripes performance relative to DPNN, all layers.
    pub dstripes_all: f64,
    /// DStripes performance relative to DPNN, convolutional layers only.
    pub dstripes_conv: f64,
    /// Loom-1b absolute throughput in frames per second (geomean, all layers).
    pub loom_fps_all: f64,
    /// Loom-1b absolute throughput in frames per second (conv layers only).
    pub loom_fps_conv: f64,
    /// Weight-memory capacity provisioned at this design point, bytes.
    pub weight_memory_bytes: u64,
    /// Loom-1b total area (core + memories) relative to DPNN.
    pub area_overhead: f64,
    /// Loom-1b energy efficiency relative to DPNN including off-chip traffic.
    pub energy_efficiency: f64,
    /// Loom-1b performance relative to DPNN, all layers, when weights stream
    /// from DRAM in the compressed bit-plane format (zero and
    /// sign-extension planes elided).
    pub loom_all_compressed: f64,
    /// Loom-1b off-chip bits per frame with dense packed weight streams
    /// (geomean across networks).
    pub loom_offchip_bits: f64,
    /// Loom-1b off-chip bits per frame with compressed weight streams
    /// (geomean across networks).
    pub loom_offchip_compressed_bits: f64,
    /// Modeled compressed-over-packed weight-stream ratio (geomean across
    /// networks); below 1.0 means the compressed format beats packed
    /// precision-`pw` storage.
    pub weight_compression: f64,
}

/// The assembled Figure 5 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5 {
    /// One entry per design point, in sweep order (32..512).
    pub points: Vec<ScalingPoint>,
}

/// Weight-memory capacity the study provisions at each design point (the
/// paper's annotations: 512 KB at "32" up to 8 MB at "512").
pub fn weight_memory_bytes(config: usize) -> u64 {
    16 * 1024 * config as u64
}

/// Values the compression-ratio table is measured over per precision; large
/// enough that the truncated-geometric weight statistics are stable.
const COMPRESSION_SAMPLE: usize = 4096;

/// Modeled compressed-over-packed weight-stream ratio for weights stored at
/// `precision` bits: synthetic weights with the calibrated distribution are
/// compressed into the bit-plane format (zero and sign-extension planes
/// elided) and the stream size is compared against packed `precision`-bit
/// storage. Each 256-lane block ships whichever of the two encodings is
/// smaller (the compressed header has room for the format-select flag), so
/// compression never loses: low-precision layers fall back to packed storage,
/// high-precision layers elide their mostly-empty upper planes. Memoized per
/// precision — the statistics depend only on the distribution and the
/// precision, not the layer.
fn weight_compression_ratio(precision: Precision) -> f64 {
    static TABLE: OnceLock<Vec<f64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut ratios = vec![1.0];
        for bits in 1..=16u8 {
            let prec = Precision::new(bits).expect("1..=16 are valid precisions");
            let weights =
                synthetic::seeded_weights(0x10f5_c0de ^ u64::from(bits), COMPRESSION_SAMPLE, prec);
            let mut packed_bits = 0u64;
            let mut stream_bits = 0u64;
            for chunk in weights.chunks(256) {
                let block = CompressedPlanes::compress_values(chunk);
                let packed = chunk.len() as u64 * u64::from(bits);
                packed_bits += packed;
                stream_bits += block.compressed_bits().min(packed);
            }
            ratios.push(stream_bits as f64 / packed_bits as f64);
        }
        ratios
    });
    table[precision.bits() as usize]
}

/// Per-frame costs with the memory system.
struct FrameCosts {
    /// Execution cycles: per layer, the maximum of compute cycles and
    /// off-chip transfer cycles (compute and transfers overlap via double
    /// buffering), summed over the network.
    cycles: u64,
    /// Off-chip bits moved per frame.
    offchip_bits: u64,
    /// Weight bits streamed per frame (the component compression shrinks).
    weight_bits: u64,
}

/// Evaluates a network's per-frame memory costs; with `compressed` the weight
/// streams are scaled by the modeled compression ratio at each layer's
/// storage precision.
fn frame_costs(
    sim: &NetworkSim,
    network: &Network,
    system: &MemorySystem,
    compressed: bool,
) -> FrameCosts {
    let mut costs = FrameCosts {
        cycles: 0,
        offchip_bits: 0,
        weight_bits: 0,
    };
    for (layer_sim, layer) in sim.layers.iter().zip(network.layers().iter()) {
        let storage = StoragePrecision {
            activation: layer_sim.storage.activation,
            weight: layer_sim.storage.weight,
        };
        let usage = if compressed {
            system.evaluate_layer_compressed(
                &layer.kind,
                storage,
                weight_compression_ratio(storage.weight),
            )
        } else {
            system.evaluate_layer(&layer.kind, storage)
        };
        costs.cycles += layer_sim.cycles.max(usage.offchip_cycles);
        costs.offchip_bits += usage.offchip_bits;
        costs.weight_bits += usage.traffic.weight_bits;
    }
    costs
}

/// Per-frame execution cycles with the memory system (dense weight streams).
fn frame_cycles(sim: &NetworkSim, network: &Network, system: &MemorySystem) -> u64 {
    frame_costs(sim, network, system, false).cycles
}

/// Runs the full scaling sweep (all six networks, geomean aggregation)
/// serially.
pub fn figure5() -> Figure5 {
    figure5_with(&SweepRunner::serial())
}

/// Runs the full scaling sweep using `runner`, fanning the design points
/// across its worker pool and memoizing the per-point simulations.
pub fn figure5_with(runner: &SweepRunner) -> Figure5 {
    let configs = EquivalentConfig::scaling_sweep();
    let points = runner.parallel_map(&configs, |&config| scaling_point(runner, config));
    Figure5 { points }
}

fn scaling_point(runner: &SweepRunner, config: EquivalentConfig) -> ScalingPoint {
    let settings = ExperimentSettings {
        config,
        ..Default::default()
    };
    let energy = EnergyModel::new(config);
    let wm = weight_memory_bytes(config.macs_per_cycle());

    let mut loom_all = Vec::new();
    let mut loom_conv = Vec::new();
    let mut dstripes_all = Vec::new();
    let mut dstripes_conv = Vec::new();
    let mut loom_fps_all = Vec::new();
    let mut loom_fps_conv = Vec::new();
    let mut efficiency = Vec::new();
    let mut loom_all_compressed = Vec::new();
    let mut offchip_dense = Vec::new();
    let mut offchip_compressed = Vec::new();
    let mut weight_compression = Vec::new();

    for network in zoo::all() {
        // DPNN keeps 16-bit data and needs the 2 MB AM of §4.5; Loom's packed
        // storage fits the same layers in 1 MB.
        let dpnn_system = MemorySystem::with_lpddr4(MemoryConfig {
            am_bytes: MemoryConfig::dpnn_default().am_bytes,
            wm_bytes: wm,
        });
        let loom_system = MemorySystem::with_lpddr4(MemoryConfig {
            am_bytes: MemoryConfig::loom_default().am_bytes,
            wm_bytes: wm,
        });

        let dpnn = runner.simulate(&network, AcceleratorKind::Dpnn, &settings);
        let lm = runner.simulate(
            &network,
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            &settings,
        );
        let ds = runner.simulate(&network, AcceleratorKind::DStripes, &settings);

        let dpnn_frame = frame_cycles(&dpnn, &network, &dpnn_system);
        let lm_costs = frame_costs(&lm, &network, &loom_system, false);
        let lm_costs_c = frame_costs(&lm, &network, &loom_system, true);
        let lm_frame = lm_costs.cycles;
        let ds_frame = frame_cycles(&ds, &network, &dpnn_system);

        loom_all.push(dpnn_frame as f64 / lm_frame as f64);
        dstripes_all.push(dpnn_frame as f64 / ds_frame as f64);
        loom_fps_all.push(1e9 / lm_frame as f64);

        // The compressed-weights series: same compute, weight streams shrunk
        // by the modeled bit-plane compression ratio.
        loom_all_compressed.push(dpnn_frame as f64 / lm_costs_c.cycles as f64);
        offchip_dense.push((lm_costs.offchip_bits.max(1)) as f64);
        offchip_compressed.push((lm_costs_c.offchip_bits.max(1)) as f64);
        weight_compression.push(lm_costs_c.weight_bits as f64 / lm_costs.weight_bits.max(1) as f64);

        // Convolutional layers only (compute bound, §4.5).
        loom_conv.push(lm.conv_speedup_vs(&dpnn));
        dstripes_conv.push(ds.conv_speedup_vs(&dpnn));
        loom_fps_conv.push(1e9 / lm.conv_cycles().max(1) as f64);

        // Energy including off-chip traffic.
        let dpnn_off =
            dpnn_system.network_offchip_bits(&network, |_, _| StoragePrecision::baseline());
        let profile = table1::profile(network.name(), settings.target).unwrap();
        let loom_off = loom_system.network_offchip_bits(&network, |i, kind| {
            if kind.is_compute() {
                // Conv layers use the per-layer profile; index `i` walks all
                // layers so translate to the compute-layer storage the
                // simulator chose instead.
                let _ = i;
            }
            StoragePrecision::packed(
                Precision::new(8).unwrap_or(Precision::FULL),
                profile.conv_weight,
            )
        });
        efficiency.push(energy.efficiency(
            AcceleratorKind::Dpnn,
            &dpnn,
            dpnn_off,
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            &lm,
            loom_off,
        ));
    }

    let lm_area = area(
        AcceleratorKind::Loom(LoomVariant::Lm1b),
        config,
        MemoryConfig::loom_default().am_bytes,
        wm,
    );
    let dpnn_area = area(
        AcceleratorKind::Dpnn,
        config,
        MemoryConfig::dpnn_default().am_bytes,
        wm,
    );

    ScalingPoint {
        config: config.macs_per_cycle(),
        loom_all: geomean(&loom_all),
        loom_conv: geomean(&loom_conv),
        dstripes_all: geomean(&dstripes_all),
        dstripes_conv: geomean(&dstripes_conv),
        loom_fps_all: geomean(&loom_fps_all),
        loom_fps_conv: geomean(&loom_fps_conv),
        weight_memory_bytes: wm,
        area_overhead: lm_area.total_mm2() / dpnn_area.total_mm2(),
        energy_efficiency: geomean(&efficiency),
        loom_all_compressed: geomean(&loom_all_compressed),
        loom_offchip_bits: geomean(&offchip_dense),
        loom_offchip_compressed_bits: geomean(&offchip_compressed),
        weight_compression: geomean(&weight_compression),
    }
}

impl Figure5 {
    /// Renders the figure's data as a text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 5 — Scaling vs equivalent DPNN peak compute bandwidth (LPDDR4-4267 off-chip)\n\n",
        );
        let mut table = crate::report::TextTable::new(vec![
            "Config",
            "Loom-all",
            "Loom-conv",
            "DStripes-all",
            "DStripes-conv",
            "Loom fps(all)",
            "Loom fps(conv)",
            "WM",
            "Area ovh",
            "Energy eff",
            "Loom-all(cw)",
            "W-comp",
            "Offchip Mb",
            "Offchip Mb(cw)",
        ]);
        for p in &self.points {
            table.row(vec![
                p.config.to_string(),
                format!("{:.2}", p.loom_all),
                format!("{:.2}", p.loom_conv),
                format!("{:.2}", p.dstripes_all),
                format!("{:.2}", p.dstripes_conv),
                format!("{:.0}", p.loom_fps_all),
                format!("{:.0}", p.loom_fps_conv),
                format!("{} KB", p.weight_memory_bytes / 1024),
                format!("{:.2}", p.area_overhead),
                format!("{:.2}", p.energy_efficiency),
                format!("{:.2}", p.loom_all_compressed),
                format!("{:.2}", p.weight_compression),
                format!("{:.1}", p.loom_offchip_bits / 1e6),
                format!("{:.1}", p.loom_offchip_compressed_bits / 1e6),
            ]);
        }
        out.push_str(&table.render());
        out
    }
}

/// The §4.5 on-chip activation-memory sizing claim: the capacity each design
/// needs so that most layers avoid off-chip activation spills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmSizing {
    /// Bytes the baseline (16-bit storage) needs for the network.
    pub dpnn_bytes: u64,
    /// Bytes Loom (packed storage at ~profile precision) needs.
    pub loom_bytes: u64,
}

/// Computes the activation-memory requirement of a network for both designs.
pub fn am_sizing(network: &Network) -> AmSizing {
    AmSizing {
        dpnn_bytes: required_am_bytes(network, Precision::FULL),
        loom_bytes: required_am_bytes(network, Precision::new(8).expect("8 is valid")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_memory_matches_paper_annotations() {
        assert_eq!(weight_memory_bytes(32), 512 * 1024);
        assert_eq!(weight_memory_bytes(128), 2 * 1024 * 1024);
        assert_eq!(weight_memory_bytes(512), 8 * 1024 * 1024);
    }

    #[test]
    fn loom_advantage_shrinks_at_large_configs() {
        let fig = figure5();
        assert_eq!(fig.points.len(), 5);
        let first = &fig.points[0];
        let last = &fig.points[4];
        // Loom's relative conv advantage drops as the grid outgrows the layers.
        assert!(first.loom_conv > last.loom_conv);
        // DStripes' relative performance stays roughly constant.
        assert!((last.dstripes_conv / first.dstripes_conv - 1.0).abs() < 0.25);
        // Loom outperforms DPNN at every design point.
        for p in &fig.points {
            assert!(p.loom_all > 1.0, "config {}", p.config);
        }
        // Absolute throughput still grows with the configuration.
        assert!(last.loom_fps_conv > first.loom_fps_conv);
        assert!(fig.render().contains("Figure 5"));
    }

    #[test]
    fn compressed_weight_streams_cut_traffic_and_never_hurt() {
        // The compression table itself: the per-block format select means
        // compression never loses to packed storage, and the win grows with
        // precision (more elidable high planes).
        for bits in 1..=16u8 {
            let r = weight_compression_ratio(Precision::new(bits).unwrap());
            assert!(r > 0.0 && r <= 1.0, "ratio {r} at {bits} bits");
        }
        assert!(
            weight_compression_ratio(Precision::new(16).unwrap())
                < weight_compression_ratio(Precision::new(8).unwrap())
        );
        assert!(weight_compression_ratio(Precision::FULL) < 1.0);
        let fig = figure5();
        for p in &fig.points {
            assert!(
                p.weight_compression > 0.0 && p.weight_compression <= 1.0,
                "config {}: weight compression {}",
                p.config,
                p.weight_compression
            );
            assert!(
                p.loom_offchip_compressed_bits <= p.loom_offchip_bits,
                "config {}",
                p.config
            );
            // Shrinking transfers can only help overlapped frame time.
            assert!(
                p.loom_all_compressed >= p.loom_all * (1.0 - 1e-12),
                "config {}",
                p.config
            );
        }
        let rendered = fig.render();
        assert!(rendered.contains("Loom-all(cw)"));
        assert!(rendered.contains("W-comp"));
    }

    #[test]
    fn dstripes_catches_up_at_the_largest_configs() {
        // Paper: "At 256 LM and DStripes perform nearly identically and at 512
        // the latter performs better" (convolutional layers). The reproduction
        // should show the gap closing monotonically.
        let fig = figure5();
        let gap_at = |i: usize| fig.points[i].loom_conv / fig.points[i].dstripes_conv;
        assert!(gap_at(0) > gap_at(3));
        assert!(gap_at(3) > gap_at(4) * 0.95);
    }

    #[test]
    fn am_sizing_matches_section_4_5() {
        // DPNN needs about 2 MB for most networks; Loom about half of that.
        // VGG-19 is the documented outlier that cannot fit on chip.
        for net in zoo::all() {
            let s = am_sizing(&net);
            if net.name() == "VGG19" {
                assert!(s.dpnn_bytes > 4 * 1024 * 1024);
            } else {
                assert!(
                    s.dpnn_bytes <= 2 * 1024 * 1024 + 512 * 1024,
                    "{}",
                    net.name()
                );
            }
            assert!(s.loom_bytes * 2 <= s.dpnn_bytes + 1, "{}", net.name());
        }
    }
}
