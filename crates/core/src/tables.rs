//! Reproductions of the paper's Tables 2 and 4 and Figure 4.

use crate::experiment::{ExperimentSettings, NetworkEvaluation, RelativeResult};
use crate::report::{fmt_ratio, TextTable};
use crate::sweep::SweepRunner;
use loom_precision::AccuracyTarget;
use loom_sim::counts::geomean;
use loom_sim::engine::AcceleratorKind;
use loom_sim::LoomVariant;

/// One accelerator column of Table 2 / Table 4: performance and efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfEff {
    /// Relative execution-time speedup over DPNN.
    pub perf: f64,
    /// Relative energy efficiency over DPNN.
    pub eff: f64,
}

/// Table 2: per-network speedup and efficiency for Stripes and the three Loom
/// variants, separately for fully-connected and convolutional layers, under
/// one accuracy target.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// The accuracy target (100% or 99%).
    pub target: AccuracyTarget,
    /// Rows: (network, per-accelerator FCL results, per-accelerator CVL results).
    pub rows: Vec<Table2Row>,
}

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Network name.
    pub network: String,
    /// FCL (perf, eff) for Stripes, LM1b, LM2b, LM4b; `None` for networks
    /// without FCLs (NiN).
    pub fcl: Option<[PerfEff; 4]>,
    /// CVL (perf, eff) for Stripes, LM1b, LM2b, LM4b.
    pub cvl: [PerfEff; 4],
}

const TABLE_ACCELERATORS: [AcceleratorKind; 4] = [
    AcceleratorKind::Stripes,
    AcceleratorKind::Loom(LoomVariant::Lm1b),
    AcceleratorKind::Loom(LoomVariant::Lm2b),
    AcceleratorKind::Loom(LoomVariant::Lm4b),
];

fn extract(eval: &NetworkEvaluation, pick: impl Fn(&RelativeResult) -> PerfEff) -> [PerfEff; 4] {
    let mut out = [PerfEff {
        perf: 0.0,
        eff: 0.0,
    }; 4];
    for (i, kind) in TABLE_ACCELERATORS.iter().enumerate() {
        let r = eval.result_for(*kind).expect("all comparators evaluated");
        out[i] = pick(&r);
    }
    out
}

/// Generates Table 2 for the given accuracy target at the headline 128
/// configuration, running the sweep serially.
pub fn table2(target: AccuracyTarget) -> Table2 {
    table2_with(&SweepRunner::serial(), target)
}

/// Generates Table 2 using `runner`'s worker pool and result cache.
pub fn table2_with(runner: &SweepRunner, target: AccuracyTarget) -> Table2 {
    let settings = ExperimentSettings {
        target,
        ..Default::default()
    };
    let rows = runner
        .evaluate_zoo(&settings)
        .iter()
        .map(|eval| Table2Row {
            network: eval.network.clone(),
            fcl: if eval.has_fc {
                Some(extract(eval, |r| PerfEff {
                    perf: r.fc_speedup,
                    eff: r.fc_efficiency,
                }))
            } else {
                None
            },
            cvl: extract(eval, |r| PerfEff {
                perf: r.conv_speedup,
                eff: r.conv_efficiency,
            }),
        })
        .collect();
    Table2 { target, rows }
}

impl Table2 {
    /// Geometric means over the networks (FCL geomeans skip NiN, as the paper
    /// does).
    pub fn geomeans(&self) -> (Option<[PerfEff; 4]>, [PerfEff; 4]) {
        let mut fcl = [PerfEff {
            perf: 0.0,
            eff: 0.0,
        }; 4];
        let mut cvl = [PerfEff {
            perf: 0.0,
            eff: 0.0,
        }; 4];
        for i in 0..4 {
            let fcl_perf: Vec<f64> = self
                .rows
                .iter()
                .filter_map(|r| r.fcl.map(|f| f[i].perf))
                .collect();
            let fcl_eff: Vec<f64> = self
                .rows
                .iter()
                .filter_map(|r| r.fcl.map(|f| f[i].eff))
                .collect();
            fcl[i] = PerfEff {
                perf: geomean(&fcl_perf),
                eff: geomean(&fcl_eff),
            };
            let cvl_perf: Vec<f64> = self.rows.iter().map(|r| r.cvl[i].perf).collect();
            let cvl_eff: Vec<f64> = self.rows.iter().map(|r| r.cvl[i].eff).collect();
            cvl[i] = PerfEff {
                perf: geomean(&cvl_perf),
                eff: geomean(&cvl_eff),
            };
        }
        (Some(fcl), cvl)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Table 2 — Speedup and energy efficiency vs DPNN ({} top-1 accuracy profile)\n\n",
            self.target
        );
        for (title, pick_fcl) in [
            ("FULLY-CONNECTED LAYERS", true),
            ("CONVOLUTIONAL LAYERS", false),
        ] {
            out.push_str(title);
            out.push('\n');
            let mut table = TextTable::new(vec![
                "Network",
                "Stripes Perf",
                "Eff",
                "Loom1b Perf",
                "Eff",
                "Loom2b Perf",
                "Eff",
                "Loom4b Perf",
                "Eff",
            ]);
            for row in &self.rows {
                let cells: Vec<String> = if pick_fcl {
                    match &row.fcl {
                        Some(f) => flatten_cells(&row.network, f),
                        None => vec![
                            row.network.clone(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                            "n/a".into(),
                        ],
                    }
                } else {
                    flatten_cells(&row.network, &row.cvl)
                };
                table.row(cells);
            }
            let (fcl_geo, cvl_geo) = self.geomeans();
            let geo = if pick_fcl { fcl_geo.unwrap() } else { cvl_geo };
            table.row(flatten_cells("Geomean", &geo));
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

fn flatten_cells(name: &str, cols: &[PerfEff; 4]) -> Vec<String> {
    let mut cells = vec![name.to_string()];
    for c in cols {
        cells.push(fmt_ratio(c.perf));
        cells.push(fmt_ratio(c.eff));
    }
    cells
}

/// Table 4: all-layer speedup and efficiency of the Loom variants when the
/// per-group effective weight precisions of Table 3 are exploited.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Rows: (network, [LM1b, LM2b, LM4b]).
    pub rows: Vec<(String, [PerfEff; 3])>,
}

/// Generates Table 4 (100% profile, per-group weight precisions), running
/// the sweep serially.
pub fn table4() -> Table4 {
    table4_with(&SweepRunner::serial())
}

/// Generates Table 4 using `runner`'s worker pool and result cache.
pub fn table4_with(runner: &SweepRunner) -> Table4 {
    let settings = ExperimentSettings::per_group_weights();
    let variants = [LoomVariant::Lm1b, LoomVariant::Lm2b, LoomVariant::Lm4b];
    let rows = runner
        .evaluate_zoo(&settings)
        .iter()
        .map(|eval| {
            let mut cols = [PerfEff {
                perf: 0.0,
                eff: 0.0,
            }; 3];
            for (i, v) in variants.iter().enumerate() {
                let r = eval
                    .result_for(AcceleratorKind::Loom(*v))
                    .expect("all variants evaluated");
                cols[i] = PerfEff {
                    perf: r.all_speedup,
                    eff: r.all_efficiency,
                };
            }
            (eval.network.clone(), cols)
        })
        .collect();
    Table4 { rows }
}

impl Table4 {
    /// Geometric mean over the networks.
    pub fn geomeans(&self) -> [PerfEff; 3] {
        let mut out = [PerfEff {
            perf: 0.0,
            eff: 0.0,
        }; 3];
        for i in 0..3 {
            let perf: Vec<f64> = self.rows.iter().map(|(_, c)| c[i].perf).collect();
            let eff: Vec<f64> = self.rows.iter().map(|(_, c)| c[i].eff).collect();
            out[i] = PerfEff {
                perf: geomean(&perf),
                eff: geomean(&eff),
            };
        }
        out
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out =
            "Table 4 — All layers combined, per-group weight precisions (100% accuracy)\n\n"
                .to_string();
        let mut table = TextTable::new(vec![
            "Network",
            "Loom1b Perf",
            "Eff",
            "Loom2b Perf",
            "Eff",
            "Loom4b Perf",
            "Eff",
        ]);
        for (name, cols) in &self.rows {
            let mut cells = vec![name.clone()];
            for c in cols {
                cells.push(fmt_ratio(c.perf));
                cells.push(fmt_ratio(c.eff));
            }
            table.row(cells);
        }
        let geo = self.geomeans();
        let mut cells = vec!["Geomean".to_string()];
        for c in &geo {
            cells.push(fmt_ratio(c.perf));
            cells.push(fmt_ratio(c.eff));
        }
        table.row(cells);
        out.push_str(&table.render());
        out
    }
}

/// Figure 4: per-network all-layer performance (a) and energy efficiency (b)
/// of Stripes, DStripes and the Loom variants relative to DPNN, 100% profile.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Series names in plot order.
    pub series: Vec<String>,
    /// Rows: (network, per-series performance, per-series efficiency).
    pub rows: Vec<(String, Vec<f64>, Vec<f64>)>,
}

/// Generates Figure 4's data, running the sweep serially.
pub fn figure4() -> Figure4 {
    figure4_with(&SweepRunner::serial())
}

/// Generates Figure 4's data using `runner`'s worker pool and result cache.
pub fn figure4_with(runner: &SweepRunner) -> Figure4 {
    let settings = ExperimentSettings::default();
    let kinds = crate::experiment::comparator_kinds();
    let rows = runner
        .evaluate_zoo(&settings)
        .iter()
        .map(|eval| {
            let perf: Vec<f64> = kinds
                .iter()
                .map(|k| eval.result_for(*k).unwrap().all_speedup)
                .collect();
            let eff: Vec<f64> = kinds
                .iter()
                .map(|k| eval.result_for(*k).unwrap().all_efficiency)
                .collect();
            (eval.network.clone(), perf, eff)
        })
        .collect();
    Figure4 {
        series: kinds.iter().map(|k| k.to_string()).collect(),
        rows,
    }
}

impl Figure4 {
    /// Geometric means of each series (performance, efficiency).
    pub fn geomeans(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.series.len();
        let perf = (0..n)
            .map(|i| geomean(&self.rows.iter().map(|(_, p, _)| p[i]).collect::<Vec<_>>()))
            .collect();
        let eff = (0..n)
            .map(|i| geomean(&self.rows.iter().map(|(_, _, e)| e[i]).collect::<Vec<_>>()))
            .collect();
        (perf, eff)
    }

    /// Renders both panels of the figure as text tables.
    pub fn render(&self) -> String {
        let mut out = "Figure 4 — Performance (a) and energy efficiency (b) vs DPNN, all layers, 100% accuracy\n\n".to_string();
        for (panel, idx) in [
            ("(a) Performance", 0usize),
            ("(b) Energy efficiency", 1usize),
        ] {
            out.push_str(panel);
            out.push('\n');
            let mut header = vec!["Network".to_string()];
            header.extend(self.series.iter().cloned());
            let mut table = TextTable::new(header);
            for (net, perf, eff) in &self.rows {
                let values = if idx == 0 { perf } else { eff };
                let mut cells = vec![net.clone()];
                cells.extend(values.iter().map(|v| fmt_ratio(*v)));
                table.row(cells);
            }
            let (gp, ge) = self.geomeans();
            let values = if idx == 0 { gp } else { ge };
            let mut cells = vec!["Geomean".to_string()];
            cells.extend(values.iter().map(|v| fmt_ratio(*v)));
            table.row(cells);
            out.push_str(&table.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_rows_and_nin_has_no_fcl() {
        let t = table2(AccuracyTarget::Lossless);
        assert_eq!(t.rows.len(), 6);
        assert!(t
            .rows
            .iter()
            .find(|r| r.network == "NiN")
            .unwrap()
            .fcl
            .is_none());
        let rendered = t.render();
        assert!(rendered.contains("CONVOLUTIONAL LAYERS"));
        assert!(rendered.contains("Geomean"));
    }

    #[test]
    fn table2_geomeans_land_in_paper_band() {
        // Paper, 100% profile geomeans: Stripes CVL 1.84x, LM1b CVL 3.25x,
        // LM1b FCL 1.74x. The reproduction should land in the same band.
        let t = table2(AccuracyTarget::Lossless);
        let (fcl, cvl) = t.geomeans();
        let fcl = fcl.unwrap();
        assert!(
            (1.6..=2.2).contains(&cvl[0].perf),
            "Stripes CVL {}",
            cvl[0].perf
        );
        assert!(
            (2.8..=3.9).contains(&cvl[1].perf),
            "LM1b CVL {}",
            cvl[1].perf
        );
        assert!(
            (1.5..=2.0).contains(&fcl[1].perf),
            "LM1b FCL {}",
            fcl[1].perf
        );
        // Ordering: LM1b fastest on CVLs, LM4b most efficient.
        assert!(cvl[1].perf >= cvl[2].perf && cvl[2].perf >= cvl[3].perf);
        assert!(cvl[3].eff >= cvl[1].eff);
    }

    #[test]
    fn table4_geomeans_exceed_table2_all_layer_numbers() {
        // Per-group weight precisions must improve every variant's all-layer
        // speedup relative to the per-layer profiles (paper: 3.19x -> 4.38x
        // for LM1b).
        let t4 = table4();
        let geo = t4.geomeans();
        assert!(
            (3.5..=5.2).contains(&geo[0].perf),
            "LM1b all {}",
            geo[0].perf
        );
        assert!(geo[0].perf > geo[2].perf, "LM1b > LM4b in performance");
        assert!(t4.render().contains("Geomean"));
    }

    #[test]
    fn figure4_orderings_match_the_paper() {
        let f = figure4();
        assert_eq!(f.series.len(), 5);
        assert_eq!(f.rows.len(), 6);
        let (perf, _eff) = f.geomeans();
        // Stripes < DStripes < LM1b in all-layer performance.
        assert!(perf[0] < perf[1]);
        assert!(perf[1] < perf[2]);
        // LM1b geomean all-layer performance is above 3x (paper: "more than 3x").
        assert!(perf[2] > 3.0, "LM1b all-layer {}", perf[2]);
        assert!(f.render().contains("(b) Energy efficiency"));
    }
}
