//! CSV export of experiment results, for plotting the figures with external
//! tools (the paper's bar charts and scaling curves are easiest to regenerate
//! from flat files).

use crate::experiment::NetworkEvaluation;
use crate::scaling::Figure5;
use crate::tables::{Table2, Table4};
use loom_sim::engine::AcceleratorKind;
use std::fmt::Write as _;

/// Escapes a CSV field (quotes fields containing separators or quotes).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn num(v: f64) -> String {
    if v.is_nan() {
        String::new()
    } else {
        format!("{v:.4}")
    }
}

/// Exports per-network, per-accelerator relative results as CSV with one row
/// per (network, accelerator) pair.
pub fn evaluations_to_csv(evals: &[NetworkEvaluation]) -> String {
    let mut out = String::from(
        "network,accelerator,conv_speedup,fc_speedup,all_speedup,conv_efficiency,fc_efficiency,all_efficiency\n",
    );
    for eval in evals {
        for (kind, r) in &eval.relatives {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                field(&eval.network),
                field(&kind.to_string()),
                num(r.conv_speedup),
                num(r.fc_speedup),
                num(r.all_speedup),
                num(r.conv_efficiency),
                num(r.fc_efficiency),
                num(r.all_efficiency)
            );
        }
    }
    out
}

/// Exports Table 2 as CSV (one row per network and layer class).
pub fn table2_to_csv(table: &Table2) -> String {
    let mut out = String::from(
        "target,network,layer_class,stripes_perf,stripes_eff,lm1b_perf,lm1b_eff,lm2b_perf,lm2b_eff,lm4b_perf,lm4b_eff\n",
    );
    for row in &table.rows {
        for (class, cols) in [("fcl", row.fcl.as_ref()), ("cvl", Some(&row.cvl))] {
            let Some(cols) = cols else { continue };
            let mut line = format!("{},{},{class}", table.target, field(&row.network));
            for c in cols.iter() {
                let _ = write!(line, ",{},{}", num(c.perf), num(c.eff));
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Exports Table 4 as CSV.
pub fn table4_to_csv(table: &Table4) -> String {
    let mut out =
        String::from("network,lm1b_perf,lm1b_eff,lm2b_perf,lm2b_eff,lm4b_perf,lm4b_eff\n");
    for (network, cols) in &table.rows {
        let mut line = field(network);
        for c in cols.iter() {
            let _ = write!(line, ",{},{}", num(c.perf), num(c.eff));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Exports the Figure 5 sweep as CSV (one row per design point).
pub fn figure5_to_csv(figure: &Figure5) -> String {
    let mut out = String::from(
        "config,loom_all,loom_conv,dstripes_all,dstripes_conv,loom_fps_all,loom_fps_conv,weight_memory_bytes,area_overhead,energy_efficiency,loom_all_compressed,weight_compression,loom_offchip_bits,loom_offchip_compressed_bits\n",
    );
    for p in &figure.points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            p.config,
            num(p.loom_all),
            num(p.loom_conv),
            num(p.dstripes_all),
            num(p.dstripes_conv),
            num(p.loom_fps_all),
            num(p.loom_fps_conv),
            p.weight_memory_bytes,
            num(p.area_overhead),
            num(p.energy_efficiency),
            num(p.loom_all_compressed),
            num(p.weight_compression),
            num(p.loom_offchip_bits),
            num(p.loom_offchip_compressed_bits)
        );
    }
    out
}

/// One sweep-benchmark measurement: serial vs parallel wall-clock over the
/// full (network × accelerator) matrix plus per-accelerator cycle totals.
/// Rendered as machine-readable JSON by [`sweep_bench_to_json`] (consumed by
/// CI as `BENCH_sweep.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBenchReport {
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// Networks × accelerators the sweep covered.
    pub jobs: usize,
    /// Wall-clock seconds of the serial (1-thread) sweep.
    pub serial_seconds: f64,
    /// Wall-clock seconds of the parallel sweep.
    pub parallel_seconds: f64,
    /// Whether the parallel results were bit-identical to the serial results.
    pub results_identical: bool,
    /// Total simulated cycles per accelerator, summed over all networks, in
    /// sweep order.
    pub per_accelerator_cycles: Vec<(String, u64)>,
}

impl SweepBenchReport {
    /// Serial-over-parallel wall-clock ratio (1.0 when parallel time is 0).
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds > 0.0 {
            self.serial_seconds / self.parallel_seconds
        } else {
            1.0
        }
    }
}

/// Escapes a JSON string (quotes and control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a [`SweepBenchReport`] as JSON (no external dependencies — the
/// build environment has no serde).
pub fn sweep_bench_to_json(report: &SweepBenchReport) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"threads\": {},", report.threads);
    let _ = writeln!(out, "  \"jobs\": {},", report.jobs);
    let _ = writeln!(out, "  \"serial_seconds\": {:.6},", report.serial_seconds);
    let _ = writeln!(
        out,
        "  \"parallel_seconds\": {:.6},",
        report.parallel_seconds
    );
    let _ = writeln!(out, "  \"speedup\": {:.4},", report.speedup());
    let _ = writeln!(
        out,
        "  \"results_identical\": {},",
        report.results_identical
    );
    out.push_str("  \"per_accelerator_cycles\": [\n");
    for (i, (name, cycles)) in report.per_accelerator_cycles.iter().enumerate() {
        let comma = if i + 1 < report.per_accelerator_cycles.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"accelerator\": {}, \"total_cycles\": {}}}{comma}",
            json_string(name),
            cycles
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// One kernel micro-benchmark point: nanoseconds per `lanes`-lane inner
/// product for the legacy bit-serial loop, the 64-lane packed AND+popcount
/// datapath (tiled over the lanes), and the 256-lane SIMD-wide datapath, at
/// one operand precision.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBench {
    /// Operand precision (both weights and activations), in bits.
    pub precision_bits: u8,
    /// Lanes per inner product (the wide block width, 256).
    pub lanes: usize,
    /// Mean wall-clock per inner product for the bit-serial kernel.
    pub serial_ns: f64,
    /// Mean wall-clock per inner product for the 64-lane packed kernel
    /// (pre-transposed operands, as the engine amortises packing).
    pub packed_ns: f64,
    /// Mean wall-clock per inner product for the 256-lane wide kernel
    /// (pre-transposed operands).
    pub wide_ns: f64,
}

impl KernelBench {
    /// Serial-over-packed speedup (1.0 when the packed time is 0).
    pub fn speedup(&self) -> f64 {
        if self.packed_ns > 0.0 {
            self.serial_ns / self.packed_ns
        } else {
            1.0
        }
    }

    /// Serial-over-wide speedup (1.0 when the wide time is 0).
    pub fn wide_speedup(&self) -> f64 {
        if self.wide_ns > 0.0 {
            self.serial_ns / self.wide_ns
        } else {
            1.0
        }
    }

    /// Packed-over-wide ratio — how much the 256-lane datapath gains over
    /// the 64-lane one at the same work (1.0 when the wide time is 0).
    pub fn wide_vs_packed(&self) -> f64 {
        if self.wide_ns > 0.0 {
            self.packed_ns / self.wide_ns
        } else {
            1.0
        }
    }
}

/// One zoo network run end to end through both the golden graph executor and
/// the batched functional engine, with bit-exact trace comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ZooFunctionalRow {
    /// Network name (a `loom_model::zoo::graphs` graph).
    pub network: String,
    /// Layer-graph nodes the trace covers.
    pub nodes: usize,
    /// Total MACs of the graph.
    pub macs: u64,
    /// Wall-clock seconds of the golden (reference-kernel) forward pass.
    pub golden_seconds: f64,
    /// Wall-clock seconds of the functional (bit-serial datapath) pass.
    pub functional_seconds: f64,
    /// Total bit-serial cycles the functional engine reported.
    pub cycles: u64,
    /// Activation groups dynamic precision detection reduced.
    pub reduced_groups: u64,
    /// Whether the functional trace was bit-identical to the golden trace.
    /// CI fails the job when false.
    pub matches_reference: bool,
}

/// One registered accelerator's functional end-to-end run over a zoo
/// network: the measured (not just modeled) series behind Table 2 / Figure 4.
/// Every backend shares the golden graph executor, so its trace must be
/// bit-identical to the reference; `cycles` is the backend's own datapath
/// accounting, consistent with its analytic `Accelerator` model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathThroughputRow {
    /// Accelerator display name, in registry (Figure 4 plot) order.
    pub accelerator: String,
    /// Network the backend ran.
    pub network: String,
    /// Wall-clock seconds of the functional pass on this backend.
    pub seconds: f64,
    /// Modeled datapath cycles the backend reported.
    pub cycles: u64,
    /// Activation groups runtime precision detection reduced.
    pub reduced_groups: u64,
    /// Modeled-cycle speedup versus the DPNN row of the same network (1.0
    /// for DPNN itself, and when no DPNN row exists to normalise against).
    pub speedup_vs_dpnn: f64,
    /// Whether the run was bit-identical to the golden model. CI fails the
    /// job when false.
    pub matches_reference: bool,
}

/// One point of the batched-throughput scaling curve: the same batch on a
/// given worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Worker threads of this run.
    pub threads: usize,
    /// Wall-clock seconds of the batch.
    pub seconds: f64,
}

/// Batched-throughput measurement: one network run as a batch across a
/// per-thread scaling curve (1/2/4 workers), with bit-exact result
/// comparison at every point. Interpret the speedups against the top-level
/// `available_parallelism` — a single-core runner cannot show one.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBench {
    /// Network the batch ran.
    pub network: String,
    /// Batch size.
    pub batch: usize,
    /// Worker threads of the widest parallel run.
    pub threads: usize,
    /// Wall-clock seconds of the batch on one worker thread.
    pub serial_seconds: f64,
    /// Wall-clock seconds of the batch on `threads` workers.
    pub parallel_seconds: f64,
    /// Whether every run's results were bit-identical to the one-thread run.
    pub identical: bool,
    /// The full per-thread scaling curve, including the 1-thread point.
    pub scaling: Vec<ScalingPoint>,
}

impl BatchBench {
    /// Serial-over-parallel wall-clock ratio (1.0 when parallel time is 0).
    pub fn speedup(&self) -> f64 {
        if self.parallel_seconds > 0.0 {
            self.serial_seconds / self.parallel_seconds
        } else {
            1.0
        }
    }
}

/// Process-wide weight-store and compression statistics at the end of a
/// benchmark run, plus the explicit repack-avoidance probe: the same model
/// prepacked twice, with the second pack required to be served from the
/// store. CI gates on `repack_avoided` and archives the compression stats.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightStoreBench {
    /// Containers packed (store misses) over the whole run.
    pub packs: u64,
    /// Lookups served from the store over the whole run.
    pub hits: u64,
    /// Containers evicted by the store's FIFO cap.
    pub evictions: u64,
    /// Containers resident at the end of the run.
    pub entries: u64,
    /// Approximate resident bytes of the packed (compressed) containers.
    pub resident_bytes: u64,
    /// Wall-clock seconds spent packing, cumulative over every store miss.
    pub pack_seconds: f64,
    /// Resident bytes the equivalent dense block layout would occupy.
    pub dense_bytes: u64,
    /// Resident bytes of the compressed blocks actually held.
    pub compressed_bytes: u64,
    /// Compressed-over-dense modeled DRAM stream ratio.
    pub compression_ratio: f64,
    /// Whether the second prepack of the probe model was fully served from
    /// the store (no repacking). CI fails when `--require-repack-avoidance`
    /// is given and this is false.
    pub repack_avoided: bool,
}

/// One functional-benchmark measurement: the SIP kernel micro-benchmarks, a
/// mid-size convolutional layer run end to end through the functional engine
/// on all three kernels, the zoo networks through the whole-network engine
/// against the golden model, and a batched-throughput scaling curve.
/// Rendered as machine-readable JSON by [`functional_bench_to_json`]
/// (consumed by CI as `BENCH_functional.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalBenchReport {
    /// Kernel micro-benchmark points, one per operand precision.
    pub kernels: Vec<KernelBench>,
    /// Human-readable description of the benchmarked conv layer.
    pub conv_layer: String,
    /// Wall-clock seconds of the conv layer on the bit-serial engine path.
    pub conv_serial_seconds: f64,
    /// Wall-clock seconds of the conv layer on the 64-lane packed path.
    pub conv_packed_seconds: f64,
    /// Wall-clock seconds of the conv layer on the 256-lane wide path.
    pub conv_wide_seconds: f64,
    /// Whether the three engine paths produced identical functional runs
    /// (outputs, cycles, and reduced groups). CI fails the job when false.
    pub kernels_agree: bool,
    /// Cores the benchmarking machine exposed (contextualises the batch
    /// speedup: a single-core runner cannot show one).
    pub available_parallelism: usize,
    /// Physical cores of the machine (SMT siblings collapsed) — scaling
    /// floors are judged against this, not logical CPUs.
    pub physical_cores: usize,
    /// Whether the run was forced past the machine's available parallelism
    /// (`--allow-oversubscribe`). Scaling numbers from such a run are not
    /// comparable to a committed floor.
    pub oversubscribed: bool,
    /// Runtime-detected CPU features relevant to the wide kernels, as
    /// `(name, detected)` pairs in a stable order.
    pub cpu_features: Vec<(String, bool)>,
    /// Per-tier kernel availability, as `(tier name, detected)` pairs
    /// slowest to fastest.
    pub kernel_tiers: Vec<(String, bool)>,
    /// The kernel tier the wide datapath dispatched to on this machine.
    pub active_kernel_tier: String,
    /// Whole-network zoo runs, in suite order.
    pub zoo: Vec<ZooFunctionalRow>,
    /// Per-accelerator functional throughput rows (every registered backend
    /// over the conformance network), in registry order.
    pub datapaths: Vec<DatapathThroughputRow>,
    /// Batched-throughput measurement, if the benchmark ran one.
    pub batch: Option<BatchBench>,
    /// Batch-of-1 latency scaling measurement (the same network as a single
    /// inference, intra-layer tasks fanned across the pool), if run.
    pub latency: Option<BatchBench>,
    /// Weight-store counters, compression footprint and the repack-avoidance
    /// probe outcome.
    pub weight_store: WeightStoreBench,
}

impl FunctionalBenchReport {
    /// Serial-over-wide wall-clock ratio for the conv layer (1.0 when the
    /// wide time is 0) — the headline speedup the CI perf guard floors.
    pub fn conv_speedup(&self) -> f64 {
        if self.conv_wide_seconds > 0.0 {
            self.conv_serial_seconds / self.conv_wide_seconds
        } else {
            1.0
        }
    }

    /// Serial-over-packed wall-clock ratio for the conv layer (1.0 when the
    /// packed time is 0) — the 64-lane datapath's speedup, for comparison.
    pub fn conv_packed_speedup(&self) -> f64 {
        if self.conv_packed_seconds > 0.0 {
            self.conv_serial_seconds / self.conv_packed_seconds
        } else {
            1.0
        }
    }

    /// Whether every bit-exactness check in the report passed: the three SIP
    /// kernels, every zoo network against the golden model, every
    /// per-accelerator datapath row, and every parallel batch run against
    /// the serial one. CI fails the job when false.
    pub fn all_agree(&self) -> bool {
        self.kernels_agree
            && self.zoo.iter().all(|z| z.matches_reference)
            && self.datapaths.iter().all(|d| d.matches_reference)
            && self.batch.as_ref().map_or(true, |b| b.identical)
            && self.latency.as_ref().map_or(true, |l| l.identical)
    }
}

/// Renders a [`FunctionalBenchReport`] as JSON (no external dependencies —
/// the build environment has no serde).
pub fn functional_bench_to_json(report: &FunctionalBenchReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"kernels\": [\n");
    for (i, k) in report.kernels.iter().enumerate() {
        let comma = if i + 1 < report.kernels.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"precision_bits\": {}, \"lanes\": {}, \"serial_ns\": {:.2}, \"packed_ns\": {:.2}, \"wide_ns\": {:.2}, \"packed_speedup\": {:.2}, \"wide_speedup\": {:.2}, \"wide_vs_packed\": {:.2}}}{comma}",
            k.precision_bits,
            k.lanes,
            k.serial_ns,
            k.packed_ns,
            k.wide_ns,
            k.speedup(),
            k.wide_speedup(),
            k.wide_vs_packed()
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"conv_layer\": {},",
        json_string(&report.conv_layer)
    );
    let _ = writeln!(
        out,
        "  \"conv_serial_seconds\": {:.6},",
        report.conv_serial_seconds
    );
    let _ = writeln!(
        out,
        "  \"conv_packed_seconds\": {:.6},",
        report.conv_packed_seconds
    );
    let _ = writeln!(
        out,
        "  \"conv_wide_seconds\": {:.6},",
        report.conv_wide_seconds
    );
    let _ = writeln!(out, "  \"conv_speedup\": {:.4},", report.conv_speedup());
    let _ = writeln!(
        out,
        "  \"conv_packed_speedup\": {:.4},",
        report.conv_packed_speedup()
    );
    let _ = writeln!(out, "  \"kernels_agree\": {},", report.kernels_agree);
    let _ = writeln!(
        out,
        "  \"available_parallelism\": {},",
        report.available_parallelism
    );
    let _ = writeln!(out, "  \"physical_cores\": {},", report.physical_cores);
    let _ = writeln!(out, "  \"oversubscribed\": {},", report.oversubscribed);
    let flag_map = |pairs: &[(String, bool)]| -> String {
        pairs
            .iter()
            .map(|(name, on)| format!("{}: {on}", json_string(name)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(
        out,
        "  \"cpu_features\": {{{}}},",
        flag_map(&report.cpu_features)
    );
    let _ = writeln!(
        out,
        "  \"kernel_tiers\": {{{}}},",
        flag_map(&report.kernel_tiers)
    );
    let _ = writeln!(
        out,
        "  \"active_kernel_tier\": {},",
        json_string(&report.active_kernel_tier)
    );
    out.push_str("  \"zoo\": [\n");
    for (i, z) in report.zoo.iter().enumerate() {
        let comma = if i + 1 < report.zoo.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"network\": {}, \"nodes\": {}, \"macs\": {}, \"golden_seconds\": {:.6}, \"functional_seconds\": {:.6}, \"cycles\": {}, \"reduced_groups\": {}, \"matches_reference\": {}}}{comma}",
            json_string(&z.network),
            z.nodes,
            z.macs,
            z.golden_seconds,
            z.functional_seconds,
            z.cycles,
            z.reduced_groups,
            z.matches_reference
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"datapaths\": [\n");
    for (i, d) in report.datapaths.iter().enumerate() {
        let comma = if i + 1 < report.datapaths.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"accelerator\": {}, \"network\": {}, \"seconds\": {:.6}, \"cycles\": {}, \"reduced_groups\": {}, \"speedup_vs_dpnn\": {:.4}, \"matches_reference\": {}}}{comma}",
            json_string(&d.accelerator),
            json_string(&d.network),
            d.seconds,
            d.cycles,
            d.reduced_groups,
            d.speedup_vs_dpnn,
            d.matches_reference
        );
    }
    out.push_str("  ],\n");
    let batch_json = |b: &BatchBench| -> String {
        let scaling: Vec<String> = b
            .scaling
            .iter()
            .map(|p| {
                let speedup = if p.seconds > 0.0 {
                    b.serial_seconds / p.seconds
                } else {
                    1.0
                };
                format!(
                    "{{\"threads\": {}, \"seconds\": {:.6}, \"speedup\": {:.4}}}",
                    p.threads, p.seconds, speedup
                )
            })
            .collect();
        format!(
            "{{\"network\": {}, \"batch\": {}, \"threads\": {}, \"serial_seconds\": {:.6}, \"parallel_seconds\": {:.6}, \"speedup\": {:.4}, \"identical\": {}, \"scaling\": [{}]}}",
            json_string(&b.network),
            b.batch,
            b.threads,
            b.serial_seconds,
            b.parallel_seconds,
            b.speedup(),
            b.identical,
            scaling.join(", ")
        )
    };
    match &report.batch {
        Some(b) => {
            let _ = writeln!(out, "  \"batch\": {},", batch_json(b));
        }
        None => out.push_str("  \"batch\": null,\n"),
    }
    match &report.latency {
        Some(l) => {
            let _ = writeln!(out, "  \"latency\": {},", batch_json(l));
        }
        None => out.push_str("  \"latency\": null,\n"),
    }
    let ws = &report.weight_store;
    let _ = writeln!(
        out,
        "  \"weight_store\": {{\"packs\": {}, \"hits\": {}, \"evictions\": {}, \"entries\": {}, \"resident_bytes\": {}, \"pack_seconds\": {:.6}, \"dense_bytes\": {}, \"compressed_bytes\": {}, \"compression_ratio\": {:.4}, \"repack_avoided\": {}}}",
        ws.packs,
        ws.hits,
        ws.evictions,
        ws.entries,
        ws.resident_bytes,
        ws.pack_seconds,
        ws.dense_bytes,
        ws.compressed_bytes,
        ws.compression_ratio,
        ws.repack_avoided
    );
    out.push_str("}\n");
    out
}

/// Convenience: the accelerators in the order the CSV columns assume.
pub fn csv_accelerator_order() -> [AcceleratorKind; 4] {
    use loom_sim::LoomVariant;
    [
        AcceleratorKind::Stripes,
        AcceleratorKind::Loom(LoomVariant::Lm1b),
        AcceleratorKind::Loom(LoomVariant::Lm2b),
        AcceleratorKind::Loom(LoomVariant::Lm4b),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate_network, ExperimentSettings};
    use crate::tables::{table2, table4};
    use loom_precision::AccuracyTarget;

    #[test]
    fn evaluation_csv_has_one_row_per_pair() {
        let eval = evaluate_network(&loom_model::zoo::alexnet(), &ExperimentSettings::default());
        let csv = evaluations_to_csv(&[eval]);
        // Header + 5 comparators.
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("network,accelerator"));
        assert!(csv.contains("AlexNet,Stripes"));
    }

    #[test]
    fn table_csvs_are_well_formed() {
        let t2 = table2(AccuracyTarget::Lossless);
        let csv2 = table2_to_csv(&t2);
        // 6 networks x 2 classes - 1 (NiN has no FCL) + header.
        assert_eq!(csv2.lines().count(), 12);
        let field_count = csv2.lines().next().unwrap().split(',').count();
        for line in csv2.lines().skip(1) {
            assert_eq!(line.split(',').count(), field_count, "{line}");
        }
        let t4 = table4();
        let csv4 = table4_to_csv(&t4);
        assert_eq!(csv4.lines().count(), 7);
    }

    #[test]
    fn sweep_bench_json_is_well_formed() {
        let report = SweepBenchReport {
            threads: 4,
            jobs: 36,
            serial_seconds: 2.5,
            parallel_seconds: 1.25,
            results_identical: true,
            per_accelerator_cycles: vec![("DPNN".into(), 100), ("Loom 1-bit".into(), 30)],
        };
        assert!((report.speedup() - 2.0).abs() < 1e-12);
        let json = sweep_bench_to_json(&report);
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup\": 2.0000"));
        assert!(json.contains("\"accelerator\": \"Loom 1-bit\", \"total_cycles\": 30"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        // Escaping: a pathological name stays a single JSON string.
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let zero = SweepBenchReport {
            parallel_seconds: 0.0,
            ..report
        };
        assert_eq!(zero.speedup(), 1.0);
    }

    #[test]
    fn functional_bench_json_is_well_formed() {
        let report = FunctionalBenchReport {
            kernels: vec![
                KernelBench {
                    precision_bits: 8,
                    lanes: 256,
                    serial_ns: 1000.0,
                    packed_ns: 40.0,
                    wide_ns: 10.0,
                },
                KernelBench {
                    precision_bits: 16,
                    lanes: 256,
                    serial_ns: 4000.0,
                    packed_ns: 100.0,
                    wide_ns: 40.0,
                },
            ],
            conv_layer: "conv 32x16x16 k3".into(),
            conv_serial_seconds: 2.0,
            conv_packed_seconds: 0.2,
            conv_wide_seconds: 0.05,
            kernels_agree: true,
            available_parallelism: 4,
            physical_cores: 2,
            oversubscribed: false,
            cpu_features: vec![("popcnt".into(), true), ("avx512f".into(), false)],
            kernel_tiers: vec![("portable".into(), true), ("avx2".into(), true)],
            active_kernel_tier: "avx2".into(),
            zoo: vec![ZooFunctionalRow {
                network: "MiniGoogLeNet".into(),
                nodes: 30,
                macs: 1_000_000,
                golden_seconds: 0.5,
                functional_seconds: 1.5,
                cycles: 123,
                reduced_groups: 7,
                matches_reference: true,
            }],
            datapaths: vec![
                DatapathThroughputRow {
                    accelerator: "DPNN".into(),
                    network: "MiniAlexNet".into(),
                    seconds: 0.4,
                    cycles: 4000,
                    reduced_groups: 0,
                    speedup_vs_dpnn: 1.0,
                    matches_reference: true,
                },
                DatapathThroughputRow {
                    accelerator: "DStripes".into(),
                    network: "MiniAlexNet".into(),
                    seconds: 0.5,
                    cycles: 1000,
                    reduced_groups: 12,
                    speedup_vs_dpnn: 4.0,
                    matches_reference: true,
                },
            ],
            batch: Some(BatchBench {
                network: "AlexNet".into(),
                batch: 4,
                threads: 4,
                serial_seconds: 8.0,
                parallel_seconds: 2.0,
                identical: true,
                scaling: vec![
                    ScalingPoint {
                        threads: 1,
                        seconds: 8.0,
                    },
                    ScalingPoint {
                        threads: 2,
                        seconds: 4.0,
                    },
                    ScalingPoint {
                        threads: 4,
                        seconds: 2.0,
                    },
                ],
            }),
            latency: Some(BatchBench {
                network: "AlexNet".into(),
                batch: 1,
                threads: 4,
                serial_seconds: 2.0,
                parallel_seconds: 1.0,
                identical: true,
                scaling: vec![
                    ScalingPoint {
                        threads: 1,
                        seconds: 2.0,
                    },
                    ScalingPoint {
                        threads: 4,
                        seconds: 1.0,
                    },
                ],
            }),
            weight_store: WeightStoreBench {
                packs: 12,
                hits: 20,
                evictions: 0,
                entries: 12,
                resident_bytes: 48_000,
                pack_seconds: 0.125,
                dense_bytes: 96_000,
                compressed_bytes: 48_000,
                compression_ratio: 0.55,
                repack_avoided: true,
            },
        };
        assert!((report.conv_speedup() - 40.0).abs() < 1e-12);
        assert!((report.conv_packed_speedup() - 10.0).abs() < 1e-12);
        assert!((report.kernels[0].speedup() - 25.0).abs() < 1e-12);
        assert!((report.kernels[0].wide_speedup() - 100.0).abs() < 1e-12);
        assert!((report.kernels[0].wide_vs_packed() - 4.0).abs() < 1e-12);
        let json = functional_bench_to_json(&report);
        assert!(json.contains("\"precision_bits\": 8"));
        assert!(json.contains("\"lanes\": 256"));
        assert!(json.contains("\"packed_speedup\": 25.00"));
        assert!(json.contains("\"wide_speedup\": 100.00"));
        assert!(json.contains("\"wide_vs_packed\": 4.00"));
        assert!(json.contains("\"conv_speedup\": 40.0000"));
        assert!(json.contains("\"conv_packed_speedup\": 10.0000"));
        assert!(json.contains("\"conv_wide_seconds\": 0.050000"));
        assert!(json.contains("\"kernels_agree\": true"));
        assert!(json.contains("\"network\": \"MiniGoogLeNet\""));
        assert!(json.contains("\"matches_reference\": true"));
        assert!(json.contains("\"speedup\": 4.0000"));
        assert!(json.contains("\"scaling\": [{\"threads\": 1"));
        assert!(json.contains("{\"threads\": 2, \"seconds\": 4.000000, \"speedup\": 2.0000}"));
        assert!(report.all_agree());
        assert!((report.batch.as_ref().unwrap().speedup() - 4.0).abs() < 1e-12);
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"accelerator\": \"DStripes\""));
        assert!(json.contains("\"speedup_vs_dpnn\": 4.0000"));
        // A diverging zoo row, datapath row, or batch flips the gate.
        let mut bad = report.clone();
        bad.zoo[0].matches_reference = false;
        assert!(!bad.all_agree());
        let mut bad = report.clone();
        bad.datapaths[1].matches_reference = false;
        assert!(!bad.all_agree());
        // Machine provenance fields round-trip into the JSON.
        assert!(json.contains("\"physical_cores\": 2"));
        assert!(json.contains("\"oversubscribed\": false"));
        assert!(json.contains("\"cpu_features\": {\"popcnt\": true, \"avx512f\": false}"));
        assert!(json.contains("\"kernel_tiers\": {\"portable\": true, \"avx2\": true}"));
        assert!(json.contains("\"active_kernel_tier\": \"avx2\""));
        // The batch-of-1 latency section mirrors the batch one.
        assert!(json.contains("\"latency\": {\"network\": \"AlexNet\", \"batch\": 1"));
        // The weight-store section carries the pack-once and compression
        // numbers CI archives.
        assert!(json.contains(
            "\"weight_store\": {\"packs\": 12, \"hits\": 20, \"evictions\": 0, \"entries\": 12, \
             \"resident_bytes\": 48000, \"pack_seconds\": 0.125000, \"dense_bytes\": 96000, \
             \"compressed_bytes\": 48000, \"compression_ratio\": 0.5500, \"repack_avoided\": true}"
        ));
        assert!((report.latency.as_ref().unwrap().speedup() - 2.0).abs() < 1e-12);
        let mut bad = report.clone();
        bad.batch.as_mut().unwrap().identical = false;
        assert!(!bad.all_agree());
        let mut bad = report.clone();
        bad.latency.as_mut().unwrap().identical = false;
        assert!(!bad.all_agree());
        let mut no_batch = report.clone();
        no_batch.batch = None;
        no_batch.latency = None;
        assert!(no_batch.all_agree());
        assert!(functional_bench_to_json(&no_batch).contains("\"batch\": null"));
        let degenerate = KernelBench {
            precision_bits: 4,
            lanes: 256,
            serial_ns: 1.0,
            packed_ns: 0.0,
            wide_ns: 0.0,
        };
        assert_eq!(degenerate.speedup(), 1.0);
        assert_eq!(degenerate.wide_speedup(), 1.0);
        assert_eq!(degenerate.wide_vs_packed(), 1.0);
        let zero = FunctionalBenchReport {
            conv_wide_seconds: 0.0,
            conv_packed_seconds: 0.0,
            ..report
        };
        assert_eq!(zero.conv_speedup(), 1.0);
        assert_eq!(zero.conv_packed_speedup(), 1.0);
    }

    #[test]
    fn csv_escaping_handles_commas_and_quotes() {
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(num(f64::NAN), "");
        assert_eq!(csv_accelerator_order().len(), 4);
    }
}
