//! Layer descriptors: the geometry every simulator consumes.
//!
//! A layer descriptor captures exactly the information Loom's and DPNN's cycle
//! models need — input/output shapes, filter dimensions, strides, padding —
//! together with derived quantities such as the multiply-accumulate (MAC)
//! count, number of windows, and weights per filter.

use crate::tensor::{Shape3, Shape4};
use std::fmt;

/// Error produced when a layer's geometry is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerError {
    message: String,
}

impl LayerError {
    fn new(message: impl Into<String>) -> Self {
        LayerError {
            message: message.into(),
        }
    }
}

impl fmt::Display for LayerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid layer geometry: {}", self.message)
    }
}

impl std::error::Error for LayerError {}

/// A convolutional layer (CVL in the paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial height.
    pub in_height: usize,
    /// Input spatial width.
    pub in_width: usize,
    /// Number of filters (output channels).
    pub filters: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
    /// Number of filter groups (AlexNet-style grouped convolution). Each group
    /// sees `in_channels / groups` channels and produces `filters / groups`
    /// outputs.
    pub groups: usize,
}

impl ConvSpec {
    /// Creates a convolution spec with stride 1, no padding and a single group.
    pub fn simple(
        in_channels: usize,
        in_height: usize,
        in_width: usize,
        filters: usize,
        kernel: usize,
    ) -> Self {
        ConvSpec {
            in_channels,
            in_height,
            in_width,
            filters,
            kernel_h: kernel,
            kernel_w: kernel,
            stride: 1,
            padding: 0,
            groups: 1,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if any dimension is zero, the stride is zero, groups do
    /// not divide channels/filters, or the kernel does not fit the padded input.
    pub fn validate(&self) -> Result<(), LayerError> {
        if self.in_channels == 0
            || self.in_height == 0
            || self.in_width == 0
            || self.filters == 0
            || self.kernel_h == 0
            || self.kernel_w == 0
        {
            return Err(LayerError::new("dimensions must be non-zero"));
        }
        if self.stride == 0 {
            return Err(LayerError::new("stride must be non-zero"));
        }
        if self.groups == 0 {
            return Err(LayerError::new("groups must be non-zero"));
        }
        if self.in_channels % self.groups != 0 || self.filters % self.groups != 0 {
            return Err(LayerError::new(
                "groups must divide both input channels and filters",
            ));
        }
        if self.kernel_h > self.in_height + 2 * self.padding
            || self.kernel_w > self.in_width + 2 * self.padding
        {
            return Err(LayerError::new("kernel larger than padded input"));
        }
        Ok(())
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Output shape (`filters × out_h × out_w`).
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(self.filters, self.out_height(), self.out_width())
    }

    /// Input shape.
    pub fn input_shape(&self) -> Shape3 {
        Shape3::new(self.in_channels, self.in_height, self.in_width)
    }

    /// Weight tensor shape (per-group channel count).
    pub fn weight_shape(&self) -> Shape4 {
        Shape4::new(
            self.filters,
            self.in_channels / self.groups,
            self.kernel_h,
            self.kernel_w,
        )
    }

    /// Number of sliding windows = output spatial positions.
    pub fn windows(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Inner-product length for one output: weights per filter.
    pub fn weights_per_filter(&self) -> usize {
        (self.in_channels / self.groups) * self.kernel_h * self.kernel_w
    }

    /// Total number of weights in the layer.
    pub fn total_weights(&self) -> u64 {
        self.filters as u64 * self.weights_per_filter() as u64
    }

    /// Total number of input activations.
    pub fn total_input_activations(&self) -> u64 {
        self.input_shape().len() as u64
    }

    /// Total number of output activations.
    pub fn total_output_activations(&self) -> u64 {
        self.output_shape().len() as u64
    }

    /// Total multiply-accumulate operations for the layer.
    pub fn macs(&self) -> u64 {
        self.windows() as u64 * self.filters as u64 * self.weights_per_filter() as u64
    }
}

/// A fully-connected layer (FCL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcSpec {
    /// Number of input activations.
    pub in_features: usize,
    /// Number of output activations.
    pub out_features: usize,
}

impl FcSpec {
    /// Creates a fully-connected spec.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        FcSpec {
            in_features,
            out_features,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is zero.
    pub fn validate(&self) -> Result<(), LayerError> {
        if self.in_features == 0 || self.out_features == 0 {
            return Err(LayerError::new("dimensions must be non-zero"));
        }
        Ok(())
    }

    /// Total number of weights.
    pub fn total_weights(&self) -> u64 {
        self.in_features as u64 * self.out_features as u64
    }

    /// Total multiply-accumulate operations (one weight, one MAC: no reuse).
    pub fn macs(&self) -> u64 {
        self.total_weights()
    }
}

/// A spatial max-pooling layer. Loom and DPNN both handle pooling with
/// dedicated comparators; it contributes activation traffic but no MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Input channels (= output channels).
    pub channels: usize,
    /// Input spatial height.
    pub in_height: usize,
    /// Input spatial width.
    pub in_width: usize,
    /// Pooling window size.
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding (same on all sides). Padded positions never win the max
    /// (they are skipped, not treated as zeros), matching the padded pooling
    /// layers of GoogLeNet's inception modules.
    pub padding: usize,
}

impl PoolSpec {
    /// Creates an unpadded pooling spec.
    pub fn new(
        channels: usize,
        in_height: usize,
        in_width: usize,
        window: usize,
        stride: usize,
    ) -> Self {
        PoolSpec {
            channels,
            in_height,
            in_width,
            window,
            stride,
            padding: 0,
        }
    }

    /// Sets the padding. The inception modules pool with a 3×3 window at
    /// stride 1 and padding 1, which preserves the spatial size so the branch
    /// can be concatenated with the convolutional branches.
    ///
    /// # Panics
    ///
    /// Panics if `padding >= window` (a window could then cover padding only,
    /// leaving its output undefined).
    pub fn with_padding(mut self, padding: usize) -> Self {
        assert!(
            padding < self.window,
            "pool padding must be smaller than the window"
        );
        self.padding = padding;
        self
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns an error if the padding is not smaller than the window (a
    /// window could then cover padding only, leaving its output undefined).
    pub fn validate(&self) -> Result<(), LayerError> {
        if self.padding >= self.window {
            return Err(LayerError::new(
                "pool padding must be smaller than the window",
            ));
        }
        Ok(())
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        let padded = self.in_height + 2 * self.padding;
        if padded < self.window {
            1
        } else {
            (padded - self.window) / self.stride + 1
        }
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        let padded = self.in_width + 2 * self.padding;
        if padded < self.window {
            1
        } else {
            (padded - self.window) / self.stride + 1
        }
    }

    /// Output shape.
    pub fn output_shape(&self) -> Shape3 {
        Shape3::new(self.channels, self.out_height(), self.out_width())
    }

    /// Input shape.
    pub fn input_shape(&self) -> Shape3 {
        Shape3::new(self.channels, self.in_height, self.in_width)
    }
}

/// The kind of a network layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// A convolutional layer.
    Conv(ConvSpec),
    /// A fully-connected layer.
    FullyConnected(FcSpec),
    /// A max-pooling layer.
    MaxPool(PoolSpec),
}

impl LayerKind {
    /// Total MACs for the layer (zero for pooling).
    pub fn macs(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.macs(),
            LayerKind::FullyConnected(f) => f.macs(),
            LayerKind::MaxPool(_) => 0,
        }
    }

    /// Whether the layer performs inner products (convolutional or
    /// fully-connected) and therefore occupies the accelerator datapath.
    pub fn is_compute(&self) -> bool {
        matches!(self, LayerKind::Conv(_) | LayerKind::FullyConnected(_))
    }

    /// Whether this is a convolutional layer.
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerKind::Conv(_))
    }

    /// Whether this is a fully-connected layer.
    pub fn is_fc(&self) -> bool {
        matches!(self, LayerKind::FullyConnected(_))
    }

    /// Number of weights stored for the layer.
    pub fn total_weights(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.total_weights(),
            LayerKind::FullyConnected(f) => f.total_weights(),
            LayerKind::MaxPool(_) => 0,
        }
    }

    /// Number of input activations consumed by the layer.
    pub fn total_input_activations(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.total_input_activations(),
            LayerKind::FullyConnected(f) => f.in_features as u64,
            LayerKind::MaxPool(p) => p.input_shape().len() as u64,
        }
    }

    /// Number of output activations produced by the layer.
    pub fn total_output_activations(&self) -> u64 {
        match self {
            LayerKind::Conv(c) => c.total_output_activations(),
            LayerKind::FullyConnected(f) => f.out_features as u64,
            LayerKind::MaxPool(p) => p.output_shape().len() as u64,
        }
    }
}

/// A named network layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable layer name (e.g. `conv2`, `fc6`, `inception_4a`).
    pub name: String,
    /// Geometry.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a convolutional layer.
    pub fn conv(name: impl Into<String>, spec: ConvSpec) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Conv(spec),
        }
    }

    /// Creates a fully-connected layer.
    pub fn fully_connected(name: impl Into<String>, spec: FcSpec) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::FullyConnected(spec),
        }
    }

    /// Creates a max-pooling layer.
    pub fn max_pool(name: impl Into<String>, spec: PoolSpec) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::MaxPool(spec),
        }
    }

    /// Total MACs for the layer.
    pub fn macs(&self) -> u64 {
        self.kind.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_dims_stride_and_padding() {
        // AlexNet conv1: 3x227x227, 96 filters of 11x11, stride 4 -> 55x55.
        let c = ConvSpec {
            in_channels: 3,
            in_height: 227,
            in_width: 227,
            filters: 96,
            kernel_h: 11,
            kernel_w: 11,
            stride: 4,
            padding: 0,
            groups: 1,
        };
        c.validate().unwrap();
        assert_eq!(c.out_height(), 55);
        assert_eq!(c.out_width(), 55);
        assert_eq!(c.windows(), 3025);
        assert_eq!(c.weights_per_filter(), 363);
        assert_eq!(c.macs(), 3025 * 96 * 363);
    }

    #[test]
    fn conv_grouped_reduces_weights() {
        // AlexNet conv2 style: 96 in, 256 out, 5x5, 2 groups.
        let c = ConvSpec {
            in_channels: 96,
            in_height: 27,
            in_width: 27,
            filters: 256,
            kernel_h: 5,
            kernel_w: 5,
            stride: 1,
            padding: 2,
            groups: 2,
        };
        c.validate().unwrap();
        assert_eq!(c.out_height(), 27);
        assert_eq!(c.weights_per_filter(), 48 * 25);
        assert_eq!(c.total_weights(), 256 * 48 * 25);
    }

    #[test]
    fn conv_validation_failures() {
        let mut c = ConvSpec::simple(3, 8, 8, 4, 3);
        c.stride = 0;
        assert!(c.validate().is_err());
        let mut c = ConvSpec::simple(3, 8, 8, 4, 3);
        c.groups = 2; // does not divide 3 channels
        assert!(c.validate().is_err());
        let c = ConvSpec::simple(3, 2, 2, 4, 3);
        assert!(c.validate().is_err());
        let c = ConvSpec::simple(0, 8, 8, 4, 3);
        assert!(c.validate().is_err());
    }

    #[test]
    fn fc_macs_equal_weights() {
        let f = FcSpec::new(4096, 1000);
        f.validate().unwrap();
        assert_eq!(f.total_weights(), 4096 * 1000);
        assert_eq!(f.macs(), f.total_weights());
        assert!(FcSpec::new(0, 10).validate().is_err());
    }

    #[test]
    fn pool_output_dims() {
        let p = PoolSpec::new(96, 55, 55, 3, 2);
        assert_eq!(p.out_height(), 27);
        assert_eq!(p.out_width(), 27);
        assert_eq!(p.output_shape().len(), 96 * 27 * 27);
    }

    #[test]
    fn padded_pool_output_dims() {
        // GoogLeNet stem: 3x3 stride-2 pad-1 pooling halves 112 -> 56.
        let p = PoolSpec::new(64, 112, 112, 3, 2).with_padding(1);
        assert_eq!((p.out_height(), p.out_width()), (56, 56));
        // Inception pool branch: 3x3 stride-1 pad-1 preserves the size.
        let p = PoolSpec::new(192, 28, 28, 3, 1).with_padding(1);
        assert_eq!((p.out_height(), p.out_width()), (28, 28));
    }

    #[test]
    #[should_panic(expected = "pool padding")]
    fn pool_padding_must_be_smaller_than_window() {
        let _ = PoolSpec::new(4, 8, 8, 2, 2).with_padding(2);
    }

    #[test]
    fn pool_validate_catches_field_level_overpadding() {
        // The builder asserts, but the fields are public; validate() is the
        // net that Network::new and GraphBuilder::build use.
        let mut p = PoolSpec::new(4, 8, 8, 2, 2);
        assert!(p.validate().is_ok());
        p.padding = 2;
        assert!(p.validate().is_err());
    }

    #[test]
    fn layer_kind_helpers() {
        let conv = LayerKind::Conv(ConvSpec::simple(3, 8, 8, 4, 3));
        let fc = LayerKind::FullyConnected(FcSpec::new(10, 5));
        let pool = LayerKind::MaxPool(PoolSpec::new(3, 8, 8, 2, 2));
        assert!(conv.is_conv() && conv.is_compute());
        assert!(fc.is_fc() && fc.is_compute());
        assert!(!pool.is_compute());
        assert_eq!(pool.macs(), 0);
        assert_eq!(fc.total_weights(), 50);
        assert_eq!(conv.total_input_activations(), 3 * 8 * 8);
        assert_eq!(conv.total_output_activations(), 4 * 6 * 6);
    }
}
