//! Fixed-point value helpers.
//!
//! The Loom paper evaluates networks quantized to 16-bit fixed point
//! ("`DPNN` uses 16-bit fixed-point activations and weights", §3.1) and exploits
//! the fact that most layers only *need* a handful of those bits. Everything in
//! this module is about answering one question precisely: *how many bits does a
//! given value (or set of values) actually require?*
//!
//! Values are carried as `i32` for headroom, but semantically every weight and
//! activation is a signed 16-bit fixed-point number (`Q` format is irrelevant to
//! the accelerator: only the integer bit pattern matters).

/// Maximum precision any value may use, matching the paper's 16-bit baseline.
pub const MAX_PRECISION: u8 = 16;

/// A precision (bit width) in the inclusive range `1..=16`.
///
/// The newtype statically rules out the zero / >16 widths that the cycle models
/// would otherwise have to guard against at every call site.
///
/// # Examples
///
/// ```
/// use loom_model::fixed::Precision;
/// let p = Precision::new(5).unwrap();
/// assert_eq!(p.bits(), 5);
/// assert!(Precision::new(0).is_none());
/// assert!(Precision::new(17).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Precision(u8);

impl Precision {
    /// Full 16-bit precision, the baseline the paper compares against.
    pub const FULL: Precision = Precision(MAX_PRECISION);

    /// Creates a precision, returning `None` unless `1 <= bits <= 16`.
    pub fn new(bits: u8) -> Option<Self> {
        if (1..=MAX_PRECISION).contains(&bits) {
            Some(Precision(bits))
        } else {
            None
        }
    }

    /// Creates a precision, clamping into the valid `1..=16` range.
    pub fn saturating(bits: u8) -> Self {
        Precision(bits.clamp(1, MAX_PRECISION))
    }

    /// The width in bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// The width in bits as a `u64`, convenient for cycle arithmetic.
    pub fn bits_u64(self) -> u64 {
        u64::from(self.0)
    }

    /// Rounds the precision up to a multiple of `step` (used by the LM2b/LM4b
    /// variants which "accommodate precisions that are multiple of 2 and 4").
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    pub fn round_up_to_multiple(self, step: u8) -> Precision {
        assert!(step > 0, "rounding step must be non-zero");
        let bits = self.0.div_ceil(step) * step;
        Precision::saturating(bits)
    }
}

impl Default for Precision {
    fn default() -> Self {
        Precision::FULL
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}b", self.0)
    }
}

/// Returns the number of bits needed to represent `value` as a signed
/// two's-complement quantity, excluding nothing: a sign bit is always counted
/// for negative numbers, and `0` needs one bit.
///
/// This mirrors the per-layer profiling of Judd et al. and the runtime
/// leading-one detection of Lascorz et al.: for non-negative values it is the
/// position of the leading one plus one; for negative values it is the width of
/// the two's-complement encoding.
///
/// # Examples
///
/// ```
/// use loom_model::fixed::signed_bits;
/// assert_eq!(signed_bits(0), 1);
/// assert_eq!(signed_bits(1), 2);    // 01
/// assert_eq!(signed_bits(-1), 1);   // 1
/// assert_eq!(signed_bits(7), 4);    // 0111
/// assert_eq!(signed_bits(-8), 4);   // 1000
/// assert_eq!(signed_bits(255), 9);
/// ```
pub fn signed_bits(value: i32) -> u8 {
    if value >= 0 {
        (32 - value.leading_zeros() + 1).min(32) as u8
    } else {
        (32 - (!value).leading_zeros() + 1).min(32) as u8
    }
    .max(1)
}

/// Returns the number of magnitude bits needed for `value` when treated as an
/// unsigned quantity (post-ReLU activations are non-negative, and this is the
/// count the OR-tree + leading-one detector of the dynamic precision hardware
/// produces).
///
/// `0` requires one bit by convention, matching the hardware which can never
/// use a zero-cycle precision.
///
/// # Examples
///
/// ```
/// use loom_model::fixed::unsigned_bits;
/// assert_eq!(unsigned_bits(0), 1);
/// assert_eq!(unsigned_bits(1), 1);
/// assert_eq!(unsigned_bits(2), 2);
/// assert_eq!(unsigned_bits(255), 8);
/// assert_eq!(unsigned_bits(256), 9);
/// ```
pub fn unsigned_bits(value: u32) -> u8 {
    (32 - value.leading_zeros()).max(1) as u8
}

/// Returns the smallest precision that can hold every value in `values` as a
/// signed two's-complement number, clamped to 16 bits.
///
/// This is the software model of the per-group precision detectors: a per-bit
/// OR tree followed by a leading-one detector.
pub fn required_precision(values: &[i32]) -> Precision {
    let bits = values.iter().map(|&v| signed_bits(v)).max().unwrap_or(1);
    Precision::saturating(bits)
}

/// Returns the smallest precision that can hold every value in `values` when
/// the values are known non-negative (e.g. post-ReLU activations).
pub fn required_unsigned_precision(values: &[i32]) -> Precision {
    let bits = values
        .iter()
        .map(|&v| unsigned_bits(v.max(0) as u32))
        .max()
        .unwrap_or(1);
    Precision::saturating(bits)
}

/// The inclusive value range representable by a signed two's-complement number
/// of the given precision.
///
/// # Examples
///
/// ```
/// use loom_model::fixed::{signed_range, Precision};
/// assert_eq!(signed_range(Precision::new(4).unwrap()), (-8, 7));
/// assert_eq!(signed_range(Precision::new(16).unwrap()), (-32768, 32767));
/// ```
pub fn signed_range(precision: Precision) -> (i32, i32) {
    let p = i64::from(precision.bits());
    let max = (1i64 << (p - 1)) - 1;
    let min = -(1i64 << (p - 1));
    (min as i32, max as i32)
}

/// Clamps `value` into the representable range of a signed number of the given
/// precision. This is the quantization the profiler applies when it trims a
/// layer's precision below what the values would need.
pub fn clamp_to_precision(value: i32, precision: Precision) -> i32 {
    let (min, max) = signed_range(precision);
    value.clamp(min, max)
}

/// Truncates `value` to its `precision` least-significant bits interpreted as a
/// signed two's-complement number. This models what the bit-serial datapath
/// computes if it is (incorrectly) fed fewer bits than a value requires, and is
/// used by tests that check the *lossless* property of dynamic precision
/// reduction: truncating to the detected precision must be the identity.
pub fn truncate_to_precision(value: i32, precision: Precision) -> i32 {
    let p = precision.bits() as u32;
    if p >= 32 {
        return value;
    }
    let shifted = (value as u32) << (32 - p);
    (shifted as i32) >> (32 - p)
}

/// Extracts bit `bit` (0 = LSB) of `value`'s two's-complement encoding.
pub fn bit_of(value: i32, bit: u8) -> u8 {
    ((value as u32) >> bit & 1) as u8
}

/// Packs bit `bit` of every value's two's-complement encoding into one word:
/// bit `i` of the result is [`bit_of`]`(values[i], bit)`.
///
/// This is the transpose at the heart of the packed SIP datapath: once the
/// operands are laid out as one word per bit plane, a SIP's 16-input AND +
/// adder tree becomes a single `AND` + `count_ones()`.
///
/// # Panics
///
/// Panics if `values.len() > 64` (a plane word holds at most 64 lanes).
///
/// # Examples
///
/// ```
/// use loom_model::fixed::bit_plane;
/// assert_eq!(bit_plane(&[1, 0, 3, 2], 0), 0b0101);
/// assert_eq!(bit_plane(&[1, 0, 3, 2], 1), 0b1100);
/// ```
pub fn bit_plane(values: &[i32], bit: u8) -> u64 {
    assert!(values.len() <= 64, "a bit plane holds at most 64 lanes");
    let mut plane = 0u64;
    for (lane, &v) in values.iter().enumerate() {
        plane |= u64::from(bit_of(v, bit)) << lane;
    }
    plane
}

/// Packs the signs of the values into one word: bit `i` is set iff
/// `values[i] < 0`. Together with the bit planes this is all the packed
/// datapath needs to apply two's-complement MSB negation and to detect
/// required precisions word-wise.
///
/// # Panics
///
/// Panics if `values.len() > 64`.
///
/// # Examples
///
/// ```
/// use loom_model::fixed::sign_plane;
/// assert_eq!(sign_plane(&[3, -1, 0, -7]), 0b1010);
/// ```
pub fn sign_plane(values: &[i32]) -> u64 {
    assert!(values.len() <= 64, "a bit plane holds at most 64 lanes");
    let mut plane = 0u64;
    for (lane, &v) in values.iter().enumerate() {
        plane |= u64::from(v < 0) << lane;
    }
    plane
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_rejects_out_of_range() {
        assert!(Precision::new(0).is_none());
        assert!(Precision::new(17).is_none());
        assert_eq!(Precision::new(1).unwrap().bits(), 1);
        assert_eq!(Precision::new(16).unwrap().bits(), 16);
    }

    #[test]
    fn precision_saturating_clamps() {
        assert_eq!(Precision::saturating(0).bits(), 1);
        assert_eq!(Precision::saturating(200).bits(), 16);
        assert_eq!(Precision::saturating(7).bits(), 7);
    }

    #[test]
    fn precision_round_up_to_multiple() {
        let p5 = Precision::new(5).unwrap();
        assert_eq!(p5.round_up_to_multiple(1).bits(), 5);
        assert_eq!(p5.round_up_to_multiple(2).bits(), 6);
        assert_eq!(p5.round_up_to_multiple(4).bits(), 8);
        let p16 = Precision::FULL;
        assert_eq!(p16.round_up_to_multiple(4).bits(), 16);
    }

    #[test]
    fn precision_display() {
        assert_eq!(Precision::new(9).unwrap().to_string(), "9b");
    }

    #[test]
    fn signed_bits_matches_twos_complement_width() {
        for p in 1..=16u8 {
            let (min, max) = signed_range(Precision::new(p).unwrap());
            assert!(signed_bits(min) <= p, "min of {p} bits fits in {p}");
            assert!(signed_bits(max) <= p, "max of {p} bits fits in {p}");
            if p < 16 {
                assert!(signed_bits(max + 1) == p + 1 || max == i32::from(i16::MAX));
            }
        }
        assert_eq!(signed_bits(0), 1);
        assert_eq!(signed_bits(-1), 1);
        assert_eq!(signed_bits(-2), 2);
        assert_eq!(signed_bits(1), 2);
    }

    #[test]
    fn unsigned_bits_basics() {
        assert_eq!(unsigned_bits(0), 1);
        assert_eq!(unsigned_bits(1), 1);
        assert_eq!(unsigned_bits(15), 4);
        assert_eq!(unsigned_bits(16), 5);
        assert_eq!(unsigned_bits(u32::from(u16::MAX)), 16);
    }

    #[test]
    fn required_precision_over_group() {
        assert_eq!(required_precision(&[0, 0, 0]).bits(), 1);
        assert_eq!(required_precision(&[1, -1, 3]).bits(), 3);
        assert_eq!(required_precision(&[127, -128]).bits(), 8);
        assert_eq!(required_precision(&[]).bits(), 1);
    }

    #[test]
    fn truncate_is_identity_at_sufficient_precision() {
        for v in [-32768, -1, 0, 1, 255, 32767] {
            let p = Precision::saturating(signed_bits(v));
            assert_eq!(truncate_to_precision(v, p), v, "value {v}");
        }
    }

    #[test]
    fn truncate_drops_high_bits() {
        assert_eq!(truncate_to_precision(0b1010, Precision::new(3).unwrap()), 2);
        assert_eq!(truncate_to_precision(255, Precision::new(8).unwrap()), -1);
    }

    #[test]
    fn clamp_respects_range() {
        let p = Precision::new(8).unwrap();
        assert_eq!(clamp_to_precision(1000, p), 127);
        assert_eq!(clamp_to_precision(-1000, p), -128);
        assert_eq!(clamp_to_precision(5, p), 5);
    }

    #[test]
    fn bit_of_extracts_bits() {
        let v = 0b1011;
        assert_eq!(bit_of(v, 0), 1);
        assert_eq!(bit_of(v, 1), 1);
        assert_eq!(bit_of(v, 2), 0);
        assert_eq!(bit_of(v, 3), 1);
        assert_eq!(bit_of(-1, 15), 1);
    }

    #[test]
    fn bit_plane_transposes_lane_bits() {
        let values = [5, -1, 0, 2];
        for bit in 0..16u8 {
            let plane = bit_plane(&values, bit);
            for (lane, &v) in values.iter().enumerate() {
                assert_eq!(
                    (plane >> lane & 1) as u8,
                    bit_of(v, bit),
                    "lane {lane} bit {bit}"
                );
            }
        }
        assert_eq!(bit_plane(&[], 3), 0);
    }

    #[test]
    fn sign_plane_marks_negative_lanes() {
        assert_eq!(sign_plane(&[1, -2, -3, 0, i32::MIN]), 0b10110);
        assert_eq!(sign_plane(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64 lanes")]
    fn bit_plane_rejects_too_many_lanes() {
        bit_plane(&[0; 65], 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// `signed_bits` is the smallest two's-complement width that holds the
        /// value: truncating to it is the identity, truncating one bit lower
        /// (when possible) is not.
        #[test]
        fn signed_bits_is_minimal(value in -32768i32..=32767) {
            let bits = signed_bits(value);
            let p = Precision::saturating(bits);
            prop_assert_eq!(truncate_to_precision(value, p), value);
            if bits > 1 {
                let narrower = Precision::saturating(bits - 1);
                prop_assert_ne!(truncate_to_precision(value, narrower), value);
            }
        }

        /// The group detector returns a precision that covers every member.
        #[test]
        fn required_precision_covers_group(values in prop::collection::vec(-32768i32..=32767, 1..64)) {
            let p = required_precision(&values);
            for &v in &values {
                prop_assert_eq!(truncate_to_precision(v, p), v);
            }
        }

        /// Rounding up to a step never decreases the precision and lands on a
        /// multiple of the step (or saturates at 16).
        #[test]
        fn round_up_to_multiple_properties(bits in 1u8..=16, step in 1u8..=4) {
            let p = Precision::new(bits).unwrap();
            let rounded = p.round_up_to_multiple(step);
            prop_assert!(rounded >= p);
            prop_assert!(rounded.bits() % step == 0 || rounded.bits() == 16);
        }
    }
}
