//! Whole-network descriptors and a builder for assembling them.

use crate::layer::{ConvSpec, FcSpec, Layer, LayerError, LayerKind, PoolSpec};
use std::fmt;

/// A feed-forward CNN described as an ordered list of layers.
///
/// The networks the paper evaluates (NiN, AlexNet, GoogLeNet, VGG-S, VGG-M,
/// VGG-19) are provided by [`crate::zoo`]; custom networks can be assembled
/// with [`NetworkBuilder`].
///
/// # Examples
///
/// ```
/// use loom_model::network::NetworkBuilder;
/// use loom_model::layer::{ConvSpec, FcSpec};
///
/// let net = NetworkBuilder::new("tiny")
///     .conv("conv1", ConvSpec::simple(3, 8, 8, 16, 3))
///     .fully_connected("fc1", FcSpec::new(16 * 6 * 6, 10))
///     .build()
///     .unwrap();
/// assert_eq!(net.conv_layers().count(), 1);
/// assert_eq!(net.fc_layers().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from pre-validated layers.
    ///
    /// # Errors
    ///
    /// Returns a [`LayerError`] if any layer's geometry is invalid.
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self, LayerError> {
        for layer in &layers {
            match &layer.kind {
                LayerKind::Conv(c) => c.validate()?,
                LayerKind::FullyConnected(f) => f.validate()?,
                LayerKind::MaxPool(p) => p.validate()?,
            }
        }
        Ok(Network {
            name: name.into(),
            layers,
        })
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Iterator over the convolutional layers, in order.
    pub fn conv_layers(&self) -> impl Iterator<Item = (&Layer, &ConvSpec)> {
        self.layers.iter().filter_map(|l| match &l.kind {
            LayerKind::Conv(c) => Some((l, c)),
            _ => None,
        })
    }

    /// Iterator over the fully-connected layers, in order.
    pub fn fc_layers(&self) -> impl Iterator<Item = (&Layer, &FcSpec)> {
        self.layers.iter().filter_map(|l| match &l.kind {
            LayerKind::FullyConnected(f) => Some((l, f)),
            _ => None,
        })
    }

    /// Iterator over the compute (conv + FC) layers, in order.
    pub fn compute_layers(&self) -> impl Iterator<Item = &Layer> {
        self.layers.iter().filter(|l| l.kind.is_compute())
    }

    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total MACs over the convolutional layers only.
    pub fn conv_macs(&self) -> u64 {
        self.conv_layers().map(|(l, _)| l.macs()).sum()
    }

    /// Total MACs over the fully-connected layers only.
    pub fn fc_macs(&self) -> u64 {
        self.fc_layers().map(|(l, _)| l.macs()).sum()
    }

    /// Total weight count over all compute layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.kind.total_weights()).sum()
    }

    /// The largest number of input+output activations alive for any single
    /// compute layer, used to size the activation memory (§4.5).
    pub fn peak_layer_activations(&self) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.kind.is_compute())
            .map(|l| l.kind.total_input_activations() + l.kind.total_output_activations())
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

/// Incrementally assembles a [`Network`].
#[derive(Debug, Clone, Default)]
pub struct NetworkBuilder {
    name: String,
    layers: Vec<Layer>,
}

impl NetworkBuilder {
    /// Starts a builder for a network with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// Appends a convolutional layer.
    pub fn conv(mut self, name: impl Into<String>, spec: ConvSpec) -> Self {
        self.layers.push(Layer::conv(name, spec));
        self
    }

    /// Appends a fully-connected layer.
    pub fn fully_connected(mut self, name: impl Into<String>, spec: FcSpec) -> Self {
        self.layers.push(Layer::fully_connected(name, spec));
        self
    }

    /// Appends a max-pooling layer.
    pub fn max_pool(mut self, name: impl Into<String>, spec: PoolSpec) -> Self {
        self.layers.push(Layer::max_pool(name, spec));
        self
    }

    /// Appends an arbitrary pre-built layer.
    pub fn layer(mut self, layer: Layer) -> Self {
        self.layers.push(layer);
        self
    }

    /// Finalizes the network.
    ///
    /// # Errors
    ///
    /// Returns a [`LayerError`] if any layer's geometry is invalid.
    pub fn build(self) -> Result<Network, LayerError> {
        Network::new(self.name, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};

    fn tiny() -> Network {
        NetworkBuilder::new("tiny")
            .conv("conv1", ConvSpec::simple(3, 10, 10, 8, 3))
            .max_pool("pool1", PoolSpec::new(8, 8, 8, 2, 2))
            .conv("conv2", ConvSpec::simple(8, 4, 4, 16, 3))
            .fully_connected("fc1", FcSpec::new(16 * 2 * 2, 10))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_preserves_order_and_counts() {
        let net = tiny();
        assert_eq!(net.layers().len(), 4);
        assert_eq!(net.conv_layers().count(), 2);
        assert_eq!(net.fc_layers().count(), 1);
        assert_eq!(net.compute_layers().count(), 3);
        assert_eq!(net.name(), "tiny");
    }

    #[test]
    fn mac_totals_split_by_layer_type() {
        let net = tiny();
        let conv1 = 8 * 8 * 8 * 3 * 9;
        let conv2 = 2 * 2 * 16 * 8 * 9;
        let fc = 64 * 10;
        assert_eq!(net.conv_macs(), (conv1 + conv2) as u64);
        assert_eq!(net.fc_macs(), fc as u64);
        assert_eq!(net.total_macs(), (conv1 + conv2 + fc) as u64);
    }

    #[test]
    fn network_rejects_invalid_layers() {
        let result = NetworkBuilder::new("bad")
            .conv("conv1", ConvSpec::simple(0, 10, 10, 8, 3))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn peak_activations_considers_compute_layers() {
        let net = tiny();
        assert!(net.peak_layer_activations() >= 3 * 10 * 10);
    }

    #[test]
    fn display_mentions_name() {
        assert!(tiny().to_string().contains("tiny"));
    }
}
