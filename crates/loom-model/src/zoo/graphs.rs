//! Executable [`LayerGraph`] forms of the zoo networks.
//!
//! The descriptors in the parent module are linear layer *lists* — the shape
//! the cycle/energy models and the paper's Table 1 profile mapping need. This
//! module provides the forms the DAG executor and the functional Loom engine
//! actually *run*:
//!
//! - [`by_name`] / the per-network builders return full-scale graphs. The
//!   linear networks lift unchanged via [`LayerGraph::from_network`];
//!   [`googlenet`] is rebuilt with its real branching topology — every
//!   inception module has the four parallel branches (1×1, 3×3 with reduce,
//!   5×5 with reduce, padded-pool + projection) and a channel concat, rather
//!   than the aggregate "equivalent convolution" the cycle models use.
//! - [`reduced_by_name`] returns topology-preserving *reduced* variants
//!   (`Mini*`, [`REDUCED_NAMES`]) — the same layer structure (grouped
//!   convolutions, 1×1 cccp stacks, inception branches and concats, FC heads)
//!   at a fraction of the MACs, so golden-vs-functional validation stays
//!   affordable even in debug builds and on the bit-serial kernel.
//!
//! Pooling layers here use explicit padding where the original networks do
//! (GoogLeNet's stem and inception pools). The linear descriptors in the
//! parent module are unchanged for GoogLeNet — the cycle models keep the
//! aggregate equivalent-convolution form and its Table 1 mapping — while
//! VGG-S's `pool5` gained the padding its `fc6` input size always assumed
//! (reproducing the original's ceil-mode 17→6 pooling), since the unpadded
//! floor form could never have chained shape-to-shape.
//!
//! To add a zoo network to the functional suite: write a builder here (via
//! [`LayerGraph::from_network`] for chains, [`GraphBuilder`] for DAGs),
//! register its name in [`by_name`], and — if full scale is too slow to
//! validate routinely — add a `Mini*` variant to [`reduced_by_name`] and
//! [`REDUCED_NAMES`]. `docs/FUNCTIONAL.md` walks through the whole recipe.

use crate::graph::{GraphBuilder, LayerGraph, GRAPH_INPUT};
use crate::layer::{ConvSpec, FcSpec, PoolSpec};
use crate::network::NetworkBuilder;

fn conv1x1(in_c: usize, size: usize, out_c: usize) -> ConvSpec {
    ConvSpec::simple(in_c, size, size, out_c, 1)
}

fn conv_padded(in_c: usize, size: usize, out_c: usize, kernel: usize) -> ConvSpec {
    ConvSpec {
        padding: kernel / 2,
        ..ConvSpec::simple(in_c, size, size, out_c, kernel)
    }
}

/// Appends one inception module (Szegedy et al., 2015, Figure 2b): four
/// parallel branches over `source`, concatenated along channels under the
/// module's name. `size` is the spatial size, `n*` the branch widths.
#[allow(clippy::too_many_arguments)]
fn inception(
    builder: GraphBuilder,
    name: &str,
    source: &str,
    in_c: usize,
    size: usize,
    n1: usize,
    n3r: usize,
    n3: usize,
    n5r: usize,
    n5: usize,
    pp: usize,
) -> GraphBuilder {
    let b1 = format!("{name}/1x1");
    let b3r = format!("{name}/3x3_reduce");
    let b3 = format!("{name}/3x3");
    let b5r = format!("{name}/5x5_reduce");
    let b5 = format!("{name}/5x5");
    let bp = format!("{name}/pool");
    let bpp = format!("{name}/pool_proj");
    builder
        .conv(&b1, source, conv1x1(in_c, size, n1))
        .conv(&b3r, source, conv1x1(in_c, size, n3r))
        .conv(&b3, &b3r, conv_padded(n3r, size, n3, 3))
        .conv(&b5r, source, conv1x1(in_c, size, n5r))
        .conv(&b5, &b5r, conv_padded(n5r, size, n5, 5))
        .max_pool(
            &bp,
            source,
            PoolSpec::new(in_c, size, size, 3, 1).with_padding(1),
        )
        .conv(&bpp, &bp, conv1x1(in_c, size, pp))
        .concat(name, &[&b1, &b3, &b5, &bpp])
}

/// Full-scale branching GoogLeNet (224×224×3 input): the real stem
/// (7×7/2 conv, padded 3×3/2 pools, 1×1 reduce, 3×3 conv) and all nine
/// inception modules with their four branches and channel concats, ending in
/// the 7×7 global pool and the 1024→1000 classifier.
pub fn googlenet() -> LayerGraph {
    let mut b = GraphBuilder::new("GoogLeNet")
        .conv(
            "conv1",
            GRAPH_INPUT,
            ConvSpec {
                in_channels: 3,
                in_height: 224,
                in_width: 224,
                filters: 64,
                kernel_h: 7,
                kernel_w: 7,
                stride: 2,
                padding: 3,
                groups: 1,
            },
        )
        .max_pool(
            "pool1",
            "conv1",
            PoolSpec::new(64, 112, 112, 3, 2).with_padding(1),
        )
        .conv("conv2_reduce", "pool1", conv1x1(64, 56, 64))
        .conv("conv2", "conv2_reduce", conv_padded(64, 56, 192, 3))
        .max_pool(
            "pool2",
            "conv2",
            PoolSpec::new(192, 56, 56, 3, 2).with_padding(1),
        );
    // (name, input channels, spatial, n1, n3r, n3, n5r, n5, pool_proj).
    b = inception(b, "inception_3a", "pool2", 192, 28, 64, 96, 128, 16, 32, 32);
    b = inception(
        b,
        "inception_3b",
        "inception_3a",
        256,
        28,
        128,
        128,
        192,
        32,
        96,
        64,
    );
    let b = b.max_pool(
        "pool3",
        "inception_3b",
        PoolSpec::new(480, 28, 28, 3, 2).with_padding(1),
    );
    let mut b = inception(
        b,
        "inception_4a",
        "pool3",
        480,
        14,
        192,
        96,
        208,
        16,
        48,
        64,
    );
    b = inception(
        b,
        "inception_4b",
        "inception_4a",
        512,
        14,
        160,
        112,
        224,
        24,
        64,
        64,
    );
    b = inception(
        b,
        "inception_4c",
        "inception_4b",
        512,
        14,
        128,
        128,
        256,
        24,
        64,
        64,
    );
    b = inception(
        b,
        "inception_4d",
        "inception_4c",
        512,
        14,
        112,
        144,
        288,
        32,
        64,
        64,
    );
    b = inception(
        b,
        "inception_4e",
        "inception_4d",
        528,
        14,
        256,
        160,
        320,
        32,
        128,
        128,
    );
    let b = b.max_pool(
        "pool4",
        "inception_4e",
        PoolSpec::new(832, 14, 14, 3, 2).with_padding(1),
    );
    let mut b = inception(
        b,
        "inception_5a",
        "pool4",
        832,
        7,
        256,
        160,
        320,
        32,
        128,
        128,
    );
    b = inception(
        b,
        "inception_5b",
        "inception_5a",
        832,
        7,
        384,
        192,
        384,
        48,
        128,
        128,
    );
    b.max_pool(
        "global_pool",
        "inception_5b",
        PoolSpec::new(1024, 7, 7, 7, 1),
    )
    .fully_connected("fc", "global_pool", FcSpec::new(1024, 1000))
    .build()
    .expect("branching GoogLeNet graph is valid")
}

/// Full-scale AlexNet as a (linear) graph.
pub fn alexnet() -> LayerGraph {
    LayerGraph::from_network(&super::alexnet())
}

/// Full-scale NiN as a (linear) graph.
pub fn nin() -> LayerGraph {
    LayerGraph::from_network(&super::nin())
}

/// Full-scale VGG-S as a (linear) graph.
pub fn vgg_s() -> LayerGraph {
    LayerGraph::from_network(&super::vgg_s())
}

/// Full-scale VGG-M as a (linear) graph.
pub fn vgg_m() -> LayerGraph {
    LayerGraph::from_network(&super::vgg_m())
}

/// Full-scale VGG-19 as a (linear) graph.
pub fn vgg19() -> LayerGraph {
    LayerGraph::from_network(&super::vgg19())
}

/// Returns the executable graph of a zoo network by (case-insensitive) name,
/// with the same aliases as [`super::by_name`]. GoogLeNet resolves to its
/// branching form.
pub fn by_name(name: &str) -> Option<LayerGraph> {
    match name.to_ascii_lowercase().as_str() {
        "nin" => Some(nin()),
        "alexnet" => Some(alexnet()),
        "googlenet" | "google" => Some(googlenet()),
        "vggs" | "vgg-s" => Some(vgg_s()),
        "vggm" | "vgg-m" => Some(vgg_m()),
        "vgg19" | "vgg-19" => Some(vgg19()),
        _ => None,
    }
}

/// Names of the reduced validation networks, in suite order.
pub const REDUCED_NAMES: [&str; 4] = ["MiniAlexNet", "MiniNiN", "MiniVGG", "MiniGoogLeNet"];

/// Reduced AlexNet (49×49×3 input): 5 convolutions with the original grouped
/// conv2/conv4/conv5, three 3×3/2 pools, and the three-layer FC head.
pub fn reduced_alexnet() -> LayerGraph {
    let grouped = |in_c, size, out_c| ConvSpec {
        groups: 2,
        padding: 1,
        ..ConvSpec::simple(in_c, size, size, out_c, 3)
    };
    LayerGraph::from_network(
        &NetworkBuilder::new("MiniAlexNet")
            .conv(
                "conv1",
                ConvSpec {
                    stride: 2,
                    ..ConvSpec::simple(3, 49, 49, 16, 5)
                },
            )
            .max_pool("pool1", PoolSpec::new(16, 23, 23, 3, 2))
            .conv("conv2", grouped(16, 11, 32))
            .max_pool("pool2", PoolSpec::new(32, 11, 11, 3, 2))
            .conv("conv3", conv_padded(32, 5, 48, 3))
            .conv("conv4", grouped(48, 5, 48))
            .conv("conv5", grouped(48, 5, 32))
            .max_pool("pool5", PoolSpec::new(32, 5, 5, 3, 2))
            .fully_connected("fc6", FcSpec::new(32 * 2 * 2, 64))
            .fully_connected("fc7", FcSpec::new(64, 64))
            .fully_connected("fc8", FcSpec::new(64, 10))
            .build()
            .expect("MiniAlexNet geometry is valid"),
    )
}

/// Reduced NiN (49×49×3 input): four blocks of a spatial convolution followed
/// by two 1×1 cccp convolutions, no FC layers — 12 convolutions like the
/// original.
pub fn reduced_nin() -> LayerGraph {
    LayerGraph::from_network(
        &NetworkBuilder::new("MiniNiN")
            .conv(
                "conv1",
                ConvSpec {
                    stride: 2,
                    ..ConvSpec::simple(3, 49, 49, 16, 5)
                },
            )
            .conv("cccp1", conv1x1(16, 23, 16))
            .conv("cccp2", conv1x1(16, 23, 16))
            .max_pool("pool1", PoolSpec::new(16, 23, 23, 2, 2))
            .conv("conv2", conv_padded(16, 11, 32, 3))
            .conv("cccp3", conv1x1(32, 11, 32))
            .conv("cccp4", conv1x1(32, 11, 32))
            .max_pool("pool2", PoolSpec::new(32, 11, 11, 3, 2))
            .conv("conv3", conv_padded(32, 5, 48, 3))
            .conv("cccp5", conv1x1(48, 5, 48))
            .conv("cccp6", conv1x1(48, 5, 48))
            .max_pool("pool3", PoolSpec::new(48, 5, 5, 3, 2))
            .conv("conv4", conv_padded(48, 2, 64, 3))
            .conv("cccp7", conv1x1(64, 2, 64))
            .conv("cccp8", conv1x1(64, 2, 10))
            .build()
            .expect("MiniNiN geometry is valid"),
    )
}

/// Reduced VGG (49×49×3 input, VGG-S-shaped): a strided stem, a 3×3 stack,
/// 2×2 pools, and the three-layer FC head.
pub fn reduced_vgg() -> LayerGraph {
    LayerGraph::from_network(
        &NetworkBuilder::new("MiniVGG")
            .conv(
                "conv1",
                ConvSpec {
                    stride: 2,
                    ..ConvSpec::simple(3, 49, 49, 16, 5)
                },
            )
            .max_pool("pool1", PoolSpec::new(16, 23, 23, 3, 2))
            .conv("conv2", conv_padded(16, 11, 32, 3))
            .max_pool("pool2", PoolSpec::new(32, 11, 11, 2, 2))
            .conv("conv3", conv_padded(32, 5, 48, 3))
            .conv("conv4", conv_padded(48, 5, 48, 3))
            .conv("conv5", conv_padded(48, 5, 32, 3))
            .max_pool("pool5", PoolSpec::new(32, 5, 5, 2, 2))
            .fully_connected("fc6", FcSpec::new(32 * 2 * 2, 64))
            .fully_connected("fc7", FcSpec::new(64, 64))
            .fully_connected("fc8", FcSpec::new(64, 10))
            .build()
            .expect("MiniVGG geometry is valid"),
    )
}

/// Reduced branching GoogLeNet (33×33×3 input): the real stem shape (strided
/// conv, padded pools, 1×1 reduce) and three full inception modules across
/// two spatial scales, ending in a global pool and FC classifier.
pub fn reduced_googlenet() -> LayerGraph {
    let b = GraphBuilder::new("MiniGoogLeNet")
        .conv(
            "conv1",
            GRAPH_INPUT,
            ConvSpec {
                stride: 2,
                padding: 2,
                ..ConvSpec::simple(3, 33, 33, 16, 5)
            },
        )
        .max_pool(
            "pool1",
            "conv1",
            PoolSpec::new(16, 17, 17, 3, 2).with_padding(1),
        )
        .conv("conv2_reduce", "pool1", conv1x1(16, 9, 16))
        .conv("conv2", "conv2_reduce", conv_padded(16, 9, 32, 3))
        .max_pool(
            "pool2",
            "conv2",
            PoolSpec::new(32, 9, 9, 3, 2).with_padding(1),
        );
    let b = inception(b, "inception_3a", "pool2", 32, 5, 16, 12, 16, 4, 8, 8);
    let b = inception(
        b,
        "inception_3b",
        "inception_3a",
        48,
        5,
        16,
        16,
        24,
        4,
        8,
        8,
    );
    let b = b.max_pool(
        "pool3",
        "inception_3b",
        PoolSpec::new(56, 5, 5, 3, 2).with_padding(1),
    );
    let b = inception(b, "inception_4a", "pool3", 56, 3, 24, 16, 28, 6, 12, 8);
    b.max_pool("global_pool", "inception_4a", PoolSpec::new(72, 3, 3, 3, 1))
        .fully_connected("fc", "global_pool", FcSpec::new(72, 10))
        .build()
        .expect("MiniGoogLeNet graph is valid")
}

/// Returns a reduced validation network by (case-insensitive) name; see
/// [`REDUCED_NAMES`].
pub fn reduced_by_name(name: &str) -> Option<LayerGraph> {
    match name.to_ascii_lowercase().as_str() {
        "minialexnet" => Some(reduced_alexnet()),
        "mininin" => Some(reduced_nin()),
        "minivgg" => Some(reduced_vgg()),
        "minigooglenet" => Some(reduced_googlenet()),
        _ => None,
    }
}

/// Names of the multi-layer-perceptron workloads, in suite order. These are
/// not paper networks: they model the FC-dominated traffic (classifier
/// heads, embedding projections) an inference service sees alongside CNNs,
/// where per-request weight packing — not the multiply work — dominates
/// serial execution.
pub const MLP_NAMES: [&str; 2] = ["MiniMLP", "MLP"];

/// Small multi-layer perceptron (784-feature flat input): a 784→256→128→10
/// classifier head, ~234k weights.
pub fn mini_mlp() -> LayerGraph {
    GraphBuilder::new("MiniMLP")
        .fully_connected("fc1", GRAPH_INPUT, FcSpec::new(784, 256))
        .fully_connected("fc2", "fc1", FcSpec::new(256, 128))
        .fully_connected("fc3", "fc2", FcSpec::new(128, 10))
        .build()
        .expect("MiniMLP graph is valid")
}

/// Full-size multi-layer perceptron (2048-feature flat input): a
/// 2048→1024→512→10 head, ~2.6M weights — the shape where streaming the row
/// transpose per request costs more than the arithmetic it feeds.
pub fn mlp() -> LayerGraph {
    GraphBuilder::new("MLP")
        .fully_connected("fc1", GRAPH_INPUT, FcSpec::new(2048, 1024))
        .fully_connected("fc2", "fc1", FcSpec::new(1024, 512))
        .fully_connected("fc3", "fc2", FcSpec::new(512, 10))
        .build()
        .expect("MLP graph is valid")
}

/// Returns an MLP workload by (case-insensitive) name; see [`MLP_NAMES`].
pub fn mlp_by_name(name: &str) -> Option<LayerGraph> {
    match name.to_ascii_lowercase().as_str() {
        "minimlp" => Some(mini_mlp()),
        "mlp" => Some(mlp()),
        _ => None,
    }
}

/// Every registered executable-graph name, canonical form, in suite order:
/// the six full-scale paper networks, the four reduced `Mini*` validation
/// variants, and the MLP serving workloads. Each resolves through
/// [`lookup`], and `lookup(name).name() == name` for all of them (the
/// round-trip the serving layer and the benches rely on).
pub fn registered_names() -> Vec<&'static str> {
    super::NETWORK_NAMES
        .iter()
        .chain(REDUCED_NAMES.iter())
        .chain(MLP_NAMES.iter())
        .copied()
        .collect()
}

/// The one zoo-by-name lookup: resolves any registered executable graph —
/// full-scale ([`by_name`], including aliases like `vgg-19`), reduced
/// (`Mini*`, [`reduced_by_name`]) or MLP ([`mlp_by_name`]) — case
/// insensitively. `functional_bench` and the `loom-serve` model catalog both
/// resolve through here, so a network registered once is servable and
/// benchable everywhere.
///
/// # Examples
///
/// ```
/// use loom_model::zoo::graphs;
/// assert_eq!(graphs::lookup("minialexnet").unwrap().name(), "MiniAlexNet");
/// assert_eq!(graphs::lookup("MLP").unwrap().name(), "MLP");
/// assert!(graphs::lookup("resnet50").is_none());
/// ```
pub fn lookup(name: &str) -> Option<LayerGraph> {
    by_name(name)
        .or_else(|| reduced_by_name(name))
        .or_else(|| mlp_by_name(name))
}

/// All four reduced validation networks, in suite order.
pub fn reduced_all() -> Vec<LayerGraph> {
    REDUCED_NAMES
        .iter()
        .map(|n| reduced_by_name(n).expect("canonical reduced names always resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branching_googlenet_has_real_inception_structure() {
        let g = googlenet();
        // 9 inception concats; 3 stem convs + 9 x 6 branch convs + no more.
        assert_eq!(g.concat_nodes().count(), 9);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    crate::graph::NodeOp::Layer(crate::layer::LayerKind::Conv(_))
                )
            })
            .count();
        assert_eq!(convs, 3 + 9 * 6);
        // Real GoogLeNet is ~1.6 GMACs; the branching graph must land nearby
        // (the linear zoo descriptor only approximates this with equivalent
        // convolutions).
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((1.2..2.2).contains(&gmacs), "got {gmacs}");
        assert_eq!(g.output_node().name, "fc");
    }

    #[test]
    fn full_scale_graphs_resolve_by_name() {
        for name in super::super::NETWORK_NAMES {
            let g = by_name(name).unwrap();
            assert!(g.total_macs() > 0, "{name}");
        }
        assert!(by_name("resnet50").is_none());
        // Linear networks keep their MAC totals through the lift.
        assert_eq!(alexnet().total_macs(), super::super::alexnet().total_macs());
        assert_eq!(vgg19().total_macs(), super::super::vgg19().total_macs());
        assert_eq!(vgg_m().total_macs(), super::super::vgg_m().total_macs());
    }

    /// Every registered name resolves through the shared lookup and comes
    /// back with its canonical name intact — the contract the serving layer's
    /// model catalog and `functional_bench` both lean on.
    #[test]
    fn every_registered_name_round_trips_through_lookup() {
        let names = registered_names();
        assert_eq!(
            names.len(),
            super::super::NETWORK_NAMES.len() + REDUCED_NAMES.len() + MLP_NAMES.len()
        );
        for name in &names {
            let graph = lookup(name)
                .unwrap_or_else(|| panic!("registered name {name:?} must resolve via lookup"));
            assert_eq!(graph.name(), *name, "lookup must return the canonical name");
            // Case-insensitive: the lowercase alias resolves to the same graph.
            let lower = lookup(&name.to_ascii_lowercase()).expect("lowercase alias resolves");
            assert_eq!(lower.name(), *name);
            assert!(graph.total_macs() > 0, "{name}");
        }
        // No two registered names collide.
        let mut unique: Vec<String> = names.iter().map(|n| n.to_ascii_lowercase()).collect();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }

    #[test]
    fn mlp_graphs_are_fc_only_and_sized_for_serving() {
        for name in MLP_NAMES {
            let g = mlp_by_name(name).unwrap();
            assert!(g.input_shape().is_none(), "{name} consumes a flat vector");
            assert!(g.input_len().is_some(), "{name} still reports input length");
            assert!(g
                .compute_layers()
                .all(|(_, k)| matches!(k, crate::layer::LayerKind::FullyConnected(_))));
        }
        assert_eq!(mini_mlp().input_len(), Some(784));
        assert_eq!(mlp().input_len(), Some(2048));
        assert!(mlp_by_name("perceptron").is_none());
    }

    #[test]
    fn reduced_networks_preserve_topology_markers() {
        let nets = reduced_all();
        assert_eq!(nets.len(), 4);
        for (net, name) in nets.iter().zip(REDUCED_NAMES) {
            assert_eq!(net.name(), name);
            // Affordable even in debug builds.
            assert!(net.total_macs() < 5_000_000, "{name}: {}", net.total_macs());
        }
        // MiniAlexNet keeps grouped convolutions.
        let mini_alex = reduced_alexnet();
        let grouped = mini_alex
            .compute_layers()
            .filter(|(_, k)| matches!(k, crate::layer::LayerKind::Conv(c) if c.groups > 1));
        assert_eq!(grouped.count(), 3);
        // MiniNiN: 12 convolutions, no FC, like the original.
        let mini_nin = reduced_nin();
        assert_eq!(mini_nin.compute_layers().count(), 12);
        // MiniGoogLeNet branches and concatenates.
        let mini_goog = reduced_googlenet();
        assert_eq!(mini_goog.concat_nodes().count(), 3);
        assert!(reduced_by_name("minigooglenet").is_some());
        assert!(reduced_by_name("lenet").is_none());
    }
}
