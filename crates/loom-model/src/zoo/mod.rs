//! The network zoo: architecture descriptors of the six image-classification
//! CNNs the Loom paper evaluates (Table 1): NiN, AlexNet, GoogLeNet, VGG-S,
//! VGG-M and VGG-19.
//!
//! Only layer *geometry* is described here — shapes, strides, padding — which
//! is everything the cycle, memory and energy models need. Weights and
//! activations are synthesized separately (see [`crate::synthetic`]) with
//! bit-statistics calibrated to the paper's published precision profiles.
//!
//! GoogLeNet is described at the same granularity the paper uses for its
//! precision profile: 11 convolutional entries (the stem convolutions plus one
//! aggregate entry per inception module). Each aggregate entry is an
//! "equivalent convolution" whose MAC count approximates the module's total;
//! this keeps the Table 1 profile ↔ layer mapping one-to-one (see `DESIGN.md`).

mod alexnet;
mod googlenet;
pub mod graphs;
mod nin;
mod vgg;

pub use alexnet::alexnet;
pub use googlenet::googlenet;
pub use nin::nin;
pub use vgg::{vgg19, vgg_m, vgg_s};

use crate::network::Network;

/// Canonical names of the evaluated networks, in the order the paper's tables
/// list them.
pub const NETWORK_NAMES: [&str; 6] = ["NiN", "AlexNet", "GoogLeNet", "VGGS", "VGGM", "VGG19"];

/// Returns the network with the given (case-insensitive) name, if it is one of
/// the six evaluated networks.
///
/// # Examples
///
/// ```
/// use loom_model::zoo;
/// let net = zoo::by_name("alexnet").unwrap();
/// assert_eq!(net.conv_layers().count(), 5);
/// assert!(zoo::by_name("resnet50").is_none());
/// ```
pub fn by_name(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "nin" => Some(nin()),
        "alexnet" => Some(alexnet()),
        "googlenet" | "google" => Some(googlenet()),
        "vggs" | "vgg-s" => Some(vgg_s()),
        "vggm" | "vgg-m" => Some(vgg_m()),
        "vgg19" | "vgg-19" => Some(vgg19()),
        _ => None,
    }
}

/// Returns all six evaluated networks in table order.
pub fn all() -> Vec<Network> {
    NETWORK_NAMES
        .iter()
        .map(|n| by_name(n).expect("canonical names always resolve"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_six_networks_in_table_order() {
        let nets = all();
        assert_eq!(nets.len(), 6);
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(names, NETWORK_NAMES.to_vec());
    }

    #[test]
    fn by_name_is_case_insensitive_and_accepts_aliases() {
        assert!(by_name("ALEXNET").is_some());
        assert!(by_name("Google").is_some());
        assert!(by_name("vgg-19").is_some());
        assert!(by_name("lenet").is_none());
    }

    /// Conv-layer counts must match the number of per-layer activation
    /// precision entries in Table 1 of the paper.
    #[test]
    fn conv_layer_counts_match_table1() {
        let expected = [
            ("NiN", 12),
            ("AlexNet", 5),
            ("GoogLeNet", 11),
            ("VGGS", 5),
            ("VGGM", 5),
            ("VGG19", 16),
        ];
        for (name, count) in expected {
            let net = by_name(name).unwrap();
            assert_eq!(net.conv_layers().count(), count, "{name}");
        }
    }

    /// FC-layer counts must match the number of per-layer FC weight precision
    /// entries in Table 1 (NiN has none, GoogLeNet has one, the rest three).
    #[test]
    fn fc_layer_counts_match_table1() {
        let expected = [
            ("NiN", 0),
            ("AlexNet", 3),
            ("GoogLeNet", 1),
            ("VGGS", 3),
            ("VGGM", 3),
            ("VGG19", 3),
        ];
        for (name, count) in expected {
            let net = by_name(name).unwrap();
            assert_eq!(net.fc_layers().count(), count, "{name}");
        }
    }

    /// Sanity: every network's total compute is in the gigamac range and VGG-19
    /// is by far the largest, as in the original models.
    #[test]
    fn mac_totals_are_plausible() {
        for net in all() {
            let gmacs = net.total_macs() as f64 / 1e9;
            assert!(gmacs > 0.3 && gmacs < 25.0, "{}: {gmacs} GMACs", net.name());
        }
        let vgg19 = by_name("VGG19").unwrap().total_macs();
        for other in ["NiN", "AlexNet", "GoogLeNet", "VGGS", "VGGM"] {
            assert!(
                vgg19 > by_name(other).unwrap().total_macs(),
                "VGG19 vs {other}"
            );
        }
    }

    /// Every compute layer validates and has non-zero MACs.
    #[test]
    fn every_compute_layer_is_valid() {
        for net in all() {
            for layer in net.compute_layers() {
                assert!(layer.macs() > 0, "{}:{}", net.name(), layer.name);
            }
        }
    }
}
