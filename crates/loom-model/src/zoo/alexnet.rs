//! AlexNet (Krizhevsky et al., 2012): 5 convolutional layers + 3 fully-connected
//! layers, with the original grouped convolutions in conv2/conv4/conv5.

use crate::layer::{ConvSpec, FcSpec, PoolSpec};
use crate::network::{Network, NetworkBuilder};

/// Builds the AlexNet descriptor (227×227×3 input).
pub fn alexnet() -> Network {
    NetworkBuilder::new("AlexNet")
        .conv(
            "conv1",
            ConvSpec {
                in_channels: 3,
                in_height: 227,
                in_width: 227,
                filters: 96,
                kernel_h: 11,
                kernel_w: 11,
                stride: 4,
                padding: 0,
                groups: 1,
            },
        )
        .max_pool("pool1", PoolSpec::new(96, 55, 55, 3, 2))
        .conv(
            "conv2",
            ConvSpec {
                in_channels: 96,
                in_height: 27,
                in_width: 27,
                filters: 256,
                kernel_h: 5,
                kernel_w: 5,
                stride: 1,
                padding: 2,
                groups: 2,
            },
        )
        .max_pool("pool2", PoolSpec::new(256, 27, 27, 3, 2))
        .conv(
            "conv3",
            ConvSpec {
                in_channels: 256,
                in_height: 13,
                in_width: 13,
                filters: 384,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
        )
        .conv(
            "conv4",
            ConvSpec {
                in_channels: 384,
                in_height: 13,
                in_width: 13,
                filters: 384,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 2,
            },
        )
        .conv(
            "conv5",
            ConvSpec {
                in_channels: 384,
                in_height: 13,
                in_width: 13,
                filters: 256,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 2,
            },
        )
        .max_pool("pool5", PoolSpec::new(256, 13, 13, 3, 2))
        .fully_connected("fc6", FcSpec::new(256 * 6 * 6, 4096))
        .fully_connected("fc7", FcSpec::new(4096, 4096))
        .fully_connected("fc8", FcSpec::new(4096, 1000))
        .build()
        .expect("AlexNet geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1_output_is_55x55() {
        let net = alexnet();
        let (_, spec) = net.conv_layers().next().unwrap();
        assert_eq!(spec.out_height(), 55);
        assert_eq!(spec.out_width(), 55);
    }

    #[test]
    fn conv_mac_total_matches_known_value() {
        // With grouped conv2/4/5, AlexNet's convolutional MACs are ~0.67 G.
        let net = alexnet();
        let gmacs = net.conv_macs() as f64 / 1e9;
        assert!((0.6..0.75).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn fc_mac_total_matches_known_value() {
        // 9216*4096 + 4096*4096 + 4096*1000 ≈ 58.6 M.
        let net = alexnet();
        assert_eq!(net.fc_macs(), 9216 * 4096 + 4096 * 4096 + 4096 * 1000);
    }

    #[test]
    fn fc6_input_matches_pool5_output() {
        let net = alexnet();
        let (_, fc6) = net.fc_layers().next().unwrap();
        assert_eq!(fc6.in_features, 256 * 6 * 6);
    }
}
