//! Network-in-Network (Lin et al., 2014), ImageNet configuration: four blocks of
//! a spatial convolution followed by two 1×1 "cccp" convolutions, with no
//! fully-connected layers (Table 1 lists 12 convolutional precision entries and
//! `N/A` for FCLs).

use crate::layer::{ConvSpec, PoolSpec};
use crate::network::{Network, NetworkBuilder};

/// Builds the NiN descriptor (224×224×3 input).
pub fn nin() -> Network {
    NetworkBuilder::new("NiN")
        // Block 1 on 224x224.
        .conv(
            "conv1",
            ConvSpec {
                in_channels: 3,
                in_height: 224,
                in_width: 224,
                filters: 96,
                kernel_h: 11,
                kernel_w: 11,
                stride: 4,
                padding: 0,
                groups: 1,
            },
        )
        .conv("cccp1", ConvSpec::simple(96, 54, 54, 96, 1))
        .conv("cccp2", ConvSpec::simple(96, 54, 54, 96, 1))
        .max_pool("pool1", PoolSpec::new(96, 54, 54, 2, 2))
        // Block 2 on 27x27.
        .conv(
            "conv2",
            ConvSpec {
                in_channels: 96,
                in_height: 27,
                in_width: 27,
                filters: 256,
                kernel_h: 5,
                kernel_w: 5,
                stride: 1,
                padding: 2,
                groups: 1,
            },
        )
        .conv("cccp3", ConvSpec::simple(256, 27, 27, 256, 1))
        .conv("cccp4", ConvSpec::simple(256, 27, 27, 256, 1))
        .max_pool("pool2", PoolSpec::new(256, 27, 27, 3, 2))
        // Block 3 on 13x13.
        .conv(
            "conv3",
            ConvSpec {
                in_channels: 256,
                in_height: 13,
                in_width: 13,
                filters: 384,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
        )
        .conv("cccp5", ConvSpec::simple(384, 13, 13, 384, 1))
        .conv("cccp6", ConvSpec::simple(384, 13, 13, 384, 1))
        .max_pool("pool3", PoolSpec::new(384, 13, 13, 3, 2))
        // Block 4 on 6x6.
        .conv(
            "conv4",
            ConvSpec {
                in_channels: 384,
                in_height: 6,
                in_width: 6,
                filters: 1024,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
        )
        .conv("cccp7", ConvSpec::simple(1024, 6, 6, 1024, 1))
        .conv("cccp8", ConvSpec::simple(1024, 6, 6, 1000, 1))
        .build()
        .expect("NiN geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_twelve_conv_layers_and_no_fc() {
        let net = nin();
        assert_eq!(net.conv_layers().count(), 12);
        assert_eq!(net.fc_layers().count(), 0);
        assert_eq!(net.fc_macs(), 0);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // The ImageNet NiN is roughly 1.1 GMACs.
        let gmacs = nin().total_macs() as f64 / 1e9;
        assert!((0.7..1.6).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn final_layer_produces_1000_channels() {
        let net = nin();
        let (_, last) = net.conv_layers().last().unwrap();
        assert_eq!(last.filters, 1000);
    }
}
