//! GoogLeNet (Szegedy et al., 2015), described at the granularity the paper's
//! precision profile uses: 11 convolutional entries — the two stem
//! convolutions plus one aggregate entry per inception module (3a, 3b, 4a–4e,
//! 5a, 5b) — and a single 1024→1000 fully-connected classifier.
//!
//! Each inception module is represented by an *equivalent convolution* on the
//! module's input feature map whose output channel count equals the module's
//! concatenated output and whose kernel size is chosen so the MAC count lands
//! close to the real module's mix of 1×1/3×3/5×5 convolutions (see `DESIGN.md`
//! §2 for the substitution rationale: only geometry and precision statistics
//! feed the models).

use crate::layer::{ConvSpec, FcSpec, PoolSpec};
use crate::network::{Network, NetworkBuilder};

/// Equivalent-convolution descriptor of one inception module.
fn inception(name: &str, in_c: usize, size: usize, out_c: usize) -> (String, ConvSpec) {
    (
        name.to_string(),
        ConvSpec {
            in_channels: in_c,
            in_height: size,
            in_width: size,
            filters: out_c,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            padding: 1,
            groups: 1,
        },
    )
}

/// Builds the GoogLeNet descriptor (224×224×3 input).
pub fn googlenet() -> Network {
    let mut builder = NetworkBuilder::new("GoogLeNet")
        .conv(
            "conv1",
            ConvSpec {
                in_channels: 3,
                in_height: 224,
                in_width: 224,
                filters: 64,
                kernel_h: 7,
                kernel_w: 7,
                stride: 2,
                padding: 3,
                groups: 1,
            },
        )
        .max_pool("pool1", PoolSpec::new(64, 112, 112, 3, 2))
        .conv(
            "conv2",
            ConvSpec {
                in_channels: 64,
                in_height: 56,
                in_width: 56,
                filters: 192,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                groups: 1,
            },
        )
        .max_pool("pool2", PoolSpec::new(192, 56, 56, 3, 2));

    // Inception modules: (name, input channels, spatial size, output channels).
    let modules = [
        ("inception_3a", 192, 28, 256),
        ("inception_3b", 256, 28, 480),
        ("inception_4a", 480, 14, 512),
        ("inception_4b", 512, 14, 512),
        ("inception_4c", 512, 14, 512),
        ("inception_4d", 512, 14, 528),
        ("inception_4e", 528, 14, 832),
        ("inception_5a", 832, 7, 832),
        ("inception_5b", 832, 7, 1024),
    ];
    for (name, in_c, size, out_c) in modules {
        let (name, spec) = inception(name, in_c, size, out_c);
        builder = builder.conv(name, spec);
    }

    builder
        .max_pool("global_pool", PoolSpec::new(1024, 7, 7, 7, 1))
        .fully_connected("fc", FcSpec::new(1024, 1000))
        .build()
        .expect("GoogLeNet geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_conv_entries_one_fc() {
        let net = googlenet();
        assert_eq!(net.conv_layers().count(), 11);
        assert_eq!(net.fc_layers().count(), 1);
    }

    #[test]
    fn fc_has_fewer_than_2k_outputs_triggering_cascading() {
        // The paper notes some FCLs have only ~1K outputs, requiring SIP
        // cascading; GoogLeNet's classifier is the canonical case.
        let net = googlenet();
        let (_, fc) = net.fc_layers().next().unwrap();
        assert_eq!(fc.out_features, 1000);
        assert!(fc.out_features < 2048);
    }

    #[test]
    fn total_macs_in_expected_range() {
        // Real GoogLeNet is ~1.6 GMACs; the aggregate model should land nearby.
        let gmacs = googlenet().total_macs() as f64 / 1e9;
        assert!((1.0..3.5).contains(&gmacs), "got {gmacs}");
    }
}
