//! The three VGG variants the paper evaluates: VGG-S and VGG-M from Chatfield
//! et al. ("Return of the Devil in the Details", 2014) and the 19-layer VGG-19
//! from Simonyan & Zisserman (2015).

use crate::layer::{ConvSpec, FcSpec, PoolSpec};
use crate::network::{Network, NetworkBuilder};

fn conv3(in_c: usize, size: usize, out_c: usize) -> ConvSpec {
    ConvSpec {
        in_channels: in_c,
        in_height: size,
        in_width: size,
        filters: out_c,
        kernel_h: 3,
        kernel_w: 3,
        stride: 1,
        padding: 1,
        groups: 1,
    }
}

/// Builds the VGG-M descriptor (224×224×3 input): 5 convolutional + 3
/// fully-connected layers with a 7×7 stride-2 stem.
pub fn vgg_m() -> Network {
    NetworkBuilder::new("VGGM")
        .conv(
            "conv1",
            ConvSpec {
                in_channels: 3,
                in_height: 224,
                in_width: 224,
                filters: 96,
                kernel_h: 7,
                kernel_w: 7,
                stride: 2,
                padding: 0,
                groups: 1,
            },
        )
        .max_pool("pool1", PoolSpec::new(96, 109, 109, 2, 2))
        .conv(
            "conv2",
            ConvSpec {
                in_channels: 96,
                in_height: 54,
                in_width: 54,
                filters: 256,
                kernel_h: 5,
                kernel_w: 5,
                stride: 2,
                padding: 1,
                groups: 1,
            },
        )
        .max_pool("pool2", PoolSpec::new(256, 26, 26, 2, 2))
        .conv("conv3", conv3(256, 13, 512))
        .conv("conv4", conv3(512, 13, 512))
        .conv("conv5", conv3(512, 13, 512))
        .max_pool("pool5", PoolSpec::new(512, 13, 13, 2, 2))
        .fully_connected("fc6", FcSpec::new(512 * 6 * 6, 4096))
        .fully_connected("fc7", FcSpec::new(4096, 4096))
        .fully_connected("fc8", FcSpec::new(4096, 1000))
        .build()
        .expect("VGG-M geometry is valid")
}

/// Builds the VGG-S descriptor (224×224×3 input): the "slow" variant with a
/// stride-2 stem and larger intermediate feature maps than VGG-M.
pub fn vgg_s() -> Network {
    NetworkBuilder::new("VGGS")
        .conv(
            "conv1",
            ConvSpec {
                in_channels: 3,
                in_height: 224,
                in_width: 224,
                filters: 96,
                kernel_h: 7,
                kernel_w: 7,
                stride: 2,
                padding: 0,
                groups: 1,
            },
        )
        .max_pool("pool1", PoolSpec::new(96, 109, 109, 3, 3))
        .conv(
            "conv2",
            ConvSpec {
                in_channels: 96,
                in_height: 36,
                in_width: 36,
                filters: 256,
                kernel_h: 5,
                kernel_w: 5,
                stride: 1,
                padding: 1,
                groups: 1,
            },
        )
        .max_pool("pool2", PoolSpec::new(256, 34, 34, 2, 2))
        .conv("conv3", conv3(256, 17, 512))
        .conv("conv4", conv3(512, 17, 512))
        .conv("conv5", conv3(512, 17, 512))
        // Padding reproduces the original's ceil-mode 17 -> 6 pooling (the
        // unpadded floor form would produce 5x5 and contradict fc6's input).
        .max_pool("pool5", PoolSpec::new(512, 17, 17, 3, 3).with_padding(1))
        .fully_connected("fc6", FcSpec::new(512 * 6 * 6, 4096))
        .fully_connected("fc7", FcSpec::new(4096, 4096))
        .fully_connected("fc8", FcSpec::new(4096, 1000))
        .build()
        .expect("VGG-S geometry is valid")
}

/// Builds the VGG-19 descriptor (224×224×3 input): 16 3×3 convolutional layers
/// in five blocks plus 3 fully-connected layers.
pub fn vgg19() -> Network {
    let mut b = NetworkBuilder::new("VGG19");
    // (block, input size, in channels, out channels, convs in block)
    let blocks = [
        (1usize, 224usize, 3usize, 64usize, 2usize),
        (2, 112, 64, 128, 2),
        (3, 56, 128, 256, 4),
        (4, 28, 256, 512, 4),
        (5, 14, 512, 512, 4),
    ];
    for (block, size, in_c, out_c, convs) in blocks {
        for i in 1..=convs {
            let input_channels = if i == 1 { in_c } else { out_c };
            b = b.conv(
                format!("conv{block}_{i}"),
                conv3(input_channels, size, out_c),
            );
        }
        b = b.max_pool(
            format!("pool{block}"),
            PoolSpec::new(out_c, size, size, 2, 2),
        );
    }
    b.fully_connected("fc6", FcSpec::new(512 * 7 * 7, 4096))
        .fully_connected("fc7", FcSpec::new(4096, 4096))
        .fully_connected("fc8", FcSpec::new(4096, 1000))
        .build()
        .expect("VGG-19 geometry is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_has_sixteen_convs_and_three_fcs() {
        let net = vgg19();
        assert_eq!(net.conv_layers().count(), 16);
        assert_eq!(net.fc_layers().count(), 3);
    }

    #[test]
    fn vgg19_conv_macs_match_known_value() {
        // VGG-19's convolutional compute is ~19.5 GMACs.
        let gmacs = vgg19().conv_macs() as f64 / 1e9;
        assert!((18.0..21.0).contains(&gmacs), "got {gmacs}");
    }

    #[test]
    fn vgg19_fc_macs_match_known_value() {
        let net = vgg19();
        assert_eq!(
            net.fc_macs(),
            (512 * 7 * 7 * 4096 + 4096 * 4096 + 4096 * 1000) as u64
        );
    }

    #[test]
    fn vggm_and_vggs_have_five_convs_three_fcs() {
        for net in [vgg_m(), vgg_s()] {
            assert_eq!(net.conv_layers().count(), 5, "{}", net.name());
            assert_eq!(net.fc_layers().count(), 3, "{}", net.name());
        }
    }

    #[test]
    fn vggs_is_heavier_than_vggm_in_conv_compute() {
        // VGG-S keeps larger feature maps (stride-1 conv2), so its conv MACs
        // exceed VGG-M's — the same ordering as the original models.
        assert!(vgg_s().conv_macs() > vgg_m().conv_macs());
    }
}
