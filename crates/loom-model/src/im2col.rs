//! `im2col` lowering of convolutions to matrix form.
//!
//! Both accelerators consume convolutions as a sequence of inner products: one
//! per (filter, window) pair, each of length `weights_per_filter`. Lowering the
//! input activations into a `windows × weights_per_filter` matrix makes the
//! convolutional and fully-connected data paths identical, which is exactly how
//! the functional Loom model in `loom-sim` processes both layer types.

use crate::layer::ConvSpec;
use crate::tensor::Tensor3;

/// The activations of one convolution window, flattened in `CHW` kernel order
/// (channel-major, then kernel row, then kernel column) so that they align with
/// [`crate::tensor::Tensor4::filter`].
pub type WindowPatch = Vec<i32>;

/// Lowers the input of a convolution to a `windows × weights_per_filter`
/// matrix, one row per output spatial position in row-major (`oy`, `ox`) order.
///
/// Out-of-bounds positions introduced by padding contribute zeros.
///
/// # Panics
///
/// Panics if `input` does not match the spec's input shape.
///
/// # Examples
///
/// ```
/// use loom_model::im2col::im2col;
/// use loom_model::layer::ConvSpec;
/// use loom_model::tensor::{Shape3, Tensor3};
///
/// let spec = ConvSpec::simple(1, 3, 3, 1, 2);
/// let input = Tensor3::from_vec(Shape3::new(1, 3, 3), (1..=9).collect()).unwrap();
/// let patches = im2col(&spec, &input);
/// assert_eq!(patches.len(), 4);                 // 2x2 output positions
/// assert_eq!(patches[0], vec![1, 2, 4, 5]);     // top-left window
/// ```
pub fn im2col(spec: &ConvSpec, input: &Tensor3) -> Vec<WindowPatch> {
    assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
    let group_in = spec.in_channels / spec.groups;
    let mut patches = Vec::with_capacity(spec.windows());
    for oy in 0..spec.out_height() {
        for ox in 0..spec.out_width() {
            patches.push(window_patch(spec, input, oy, ox, 0, group_in));
        }
    }
    patches
}

/// Extracts the window patch for output position `(oy, ox)` restricted to the
/// channel range `[c_base, c_base + c_count)`. Grouped convolutions use this to
/// give each filter group its own slice of the input channels.
pub fn window_patch(
    spec: &ConvSpec,
    input: &Tensor3,
    oy: usize,
    ox: usize,
    c_base: usize,
    c_count: usize,
) -> WindowPatch {
    let mut patch = Vec::with_capacity(c_count * spec.kernel_h * spec.kernel_w);
    window_patch_into(spec, input, oy, ox, c_base, c_count, &mut patch);
    patch
}

/// Appends the window patch for output position `(oy, ox)` to `patch` instead
/// of allocating a fresh vector — the arena form the wide functional datapath
/// uses on its hot path (one scratch buffer per worker, cleared per window).
pub fn window_patch_into(
    spec: &ConvSpec,
    input: &Tensor3,
    oy: usize,
    ox: usize,
    c_base: usize,
    c_count: usize,
    patch: &mut Vec<i32>,
) {
    patch.reserve(c_count * spec.kernel_h * spec.kernel_w);
    for c in 0..c_count {
        for ky in 0..spec.kernel_h {
            for kx in 0..spec.kernel_w {
                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                patch.push(input.get_padded(c_base + c, iy, ix));
            }
        }
    }
}

/// Computes a convolution through the lowered form: for every window row of the
/// im2col matrix, takes the inner product with every filter. The result is laid
/// out as `filters × windows` (filter-major) to match
/// [`crate::reference::conv_forward`].
///
/// This exists as an independent second implementation of convolution used to
/// cross-check the direct reference implementation.
pub fn conv_via_im2col(
    spec: &ConvSpec,
    input: &Tensor3,
    weights: &crate::tensor::Tensor4,
) -> Vec<i64> {
    assert_eq!(
        weights.shape(),
        spec.weight_shape(),
        "weight shape mismatch"
    );
    let group_in = spec.in_channels / spec.groups;
    let group_out = spec.filters / spec.groups;
    let windows = spec.windows();
    let mut output = vec![0i64; spec.filters * windows];
    for k in 0..spec.filters {
        let group = k / group_out;
        let c_base = group * group_in;
        let filter = weights.filter(k);
        let mut w_idx = 0usize;
        for oy in 0..spec.out_height() {
            for ox in 0..spec.out_width() {
                let patch = window_patch(spec, input, oy, ox, c_base, group_in);
                let acc: i64 = patch
                    .iter()
                    .zip(filter.iter())
                    .map(|(&a, &w)| i64::from(a) * i64::from(w))
                    .sum();
                output[k * windows + w_idx] = acc;
                w_idx += 1;
            }
        }
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::conv_forward;
    use crate::tensor::{Shape3, Shape4, Tensor4};

    #[test]
    fn im2col_row_count_matches_windows() {
        let spec = ConvSpec {
            in_channels: 2,
            in_height: 5,
            in_width: 5,
            filters: 3,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let input = Tensor3::zeros(spec.input_shape());
        let patches = im2col(&spec, &input);
        assert_eq!(patches.len(), spec.windows());
        assert_eq!(patches[0].len(), spec.weights_per_filter());
    }

    #[test]
    fn im2col_padding_contributes_zeros() {
        let spec = ConvSpec {
            in_channels: 1,
            in_height: 2,
            in_width: 2,
            filters: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            groups: 1,
        };
        let input = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![1, 2, 3, 4]).unwrap();
        let patches = im2col(&spec, &input);
        // Top-left window: only the bottom-right 2x2 of the kernel overlaps the image.
        assert_eq!(patches[0], vec![0, 0, 0, 0, 1, 2, 0, 3, 4]);
    }

    #[test]
    fn conv_via_im2col_matches_direct_reference() {
        let spec = ConvSpec {
            in_channels: 3,
            in_height: 7,
            in_width: 6,
            filters: 4,
            kernel_h: 3,
            kernel_w: 2,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let n_in = spec.input_shape().len();
        let n_w = spec.weight_shape().len();
        let input = Tensor3::from_vec(
            spec.input_shape(),
            (0..n_in).map(|i| (i as i32 * 7919 % 251) - 125).collect(),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            spec.weight_shape(),
            (0..n_w).map(|i| (i as i32 * 104729 % 61) - 30).collect(),
        )
        .unwrap();
        assert_eq!(
            conv_via_im2col(&spec, &input, &weights),
            conv_forward(&spec, &input, &weights)
        );
    }

    #[test]
    fn conv_via_im2col_matches_direct_reference_grouped() {
        let spec = ConvSpec {
            in_channels: 4,
            in_height: 5,
            in_width: 5,
            filters: 6,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let input = Tensor3::from_vec(
            spec.input_shape(),
            (0..spec.input_shape().len())
                .map(|i| (i as i32 % 17) - 8)
                .collect(),
        )
        .unwrap();
        let weights = Tensor4::from_vec(
            Shape4::new(6, 2, 3, 3),
            (0..6 * 2 * 9).map(|i| (i as i32 % 9) - 4).collect(),
        )
        .unwrap();
        assert_eq!(
            conv_via_im2col(&spec, &input, &weights),
            conv_forward(&spec, &input, &weights)
        );
    }
}
