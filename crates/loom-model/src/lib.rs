//! # loom-model
//!
//! CNN model substrate for the Loom accelerator reproduction (Sharify et al.,
//! "Loom: Exploiting Weight and Activation Precisions to Accelerate
//! Convolutional Neural Networks", DAC 2018).
//!
//! This crate provides everything the accelerator simulators need to describe
//! and execute the evaluated workloads:
//!
//! * [`fixed`] — fixed-point precision arithmetic: how many bits a value or a
//!   group of values actually needs.
//! * [`tensor`] — dense integer activation and weight tensors.
//! * [`layer`] / [`network`] — layer and network geometry descriptors.
//! * [`reference`](mod@reference) / [`im2col`] — golden integer implementations of
//!   convolution, fully-connected, pooling and ReLU layers.
//! * [`quant`] — linear quantization and inter-layer re-quantization.
//! * [`graph`] — explicit layer DAGs with branch/concat nodes, topological
//!   scheduling, and per-edge tensor buffers.
//! * [`synthetic`] — synthetic weight/activation generators calibrated to the
//!   paper's precision profiles (the ImageNet-trained originals are not
//!   available; see `DESIGN.md` for the substitution).
//! * [`inference`] — quantized forward inference (single inputs and batches)
//!   over chains and layer graphs.
//! * [`zoo`] — descriptors of the six evaluated networks (NiN, AlexNet,
//!   GoogLeNet, VGG-S, VGG-M, VGG-19).
//!
//! # Example
//!
//! ```
//! use loom_model::zoo;
//!
//! let alexnet = zoo::alexnet();
//! let conv_gmacs = alexnet.conv_macs() as f64 / 1e9;
//! assert!(conv_gmacs > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fixed;
pub mod graph;
pub mod im2col;
pub mod inference;
pub mod layer;
pub mod network;
pub mod quant;
pub mod reference;
pub mod synthetic;
pub mod tensor;
pub mod zoo;

pub use fixed::Precision;
pub use graph::{GraphBuilder, LayerGraph};
pub use layer::{ConvSpec, FcSpec, Layer, LayerKind, PoolSpec};
pub use network::{Network, NetworkBuilder};
