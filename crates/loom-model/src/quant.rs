//! Fixed-point quantization and re-quantization.
//!
//! The quantized inference pipeline mirrors the methodology of the
//! reduced-precision line of work the paper builds on (Judd et al.): weights
//! and activations are linearly quantized to at most 16-bit fixed point, each
//! layer's wide accumulator outputs are scaled back down by a per-layer
//! right-shift, and precision trimming is modeled by clamping/truncating values
//! to the profile precision.

use crate::fixed::{clamp_to_precision, signed_range, Precision};

/// Linear quantizer mapping real values to fixed-point integers with a given
/// number of fractional bits.
///
/// # Examples
///
/// ```
/// use loom_model::quant::Quantizer;
/// use loom_model::fixed::Precision;
///
/// let q = Quantizer::new(8, Precision::new(12).unwrap());
/// let x = q.quantize(1.5);
/// assert_eq!(x, 384);               // 1.5 * 2^8
/// assert!((q.dequantize(x) - 1.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    frac_bits: u8,
    precision: Precision,
}

impl Quantizer {
    /// Creates a quantizer with `frac_bits` fractional bits that clamps results
    /// into the signed range of `precision`.
    pub fn new(frac_bits: u8, precision: Precision) -> Self {
        Quantizer {
            frac_bits,
            precision,
        }
    }

    /// The scale factor `2^frac_bits`.
    pub fn scale(&self) -> f64 {
        f64::from(1u32 << self.frac_bits)
    }

    /// The target precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Quantizes a real value to fixed point, rounding to nearest and clamping
    /// into the representable range.
    pub fn quantize(&self, value: f64) -> i32 {
        let scaled = (value * self.scale()).round();
        let (min, max) = signed_range(self.precision);
        scaled.clamp(f64::from(min), f64::from(max)) as i32
    }

    /// Converts a fixed-point value back to a real value.
    pub fn dequantize(&self, value: i32) -> f64 {
        f64::from(value) / self.scale()
    }

    /// Quantizes a slice of real values.
    pub fn quantize_all(&self, values: &[f64]) -> Vec<i32> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }
}

/// Re-quantizes a layer's wide (64-bit) accumulator outputs back into the
/// 16-bit activation domain by an arithmetic right shift with round-to-nearest,
/// then clamps into the range of `target`.
///
/// The shift plays the role of the per-layer output scale a fixed-point
/// inference engine applies between layers.
pub fn requantize(acc: &[i64], shift: u8, target: Precision) -> Vec<i32> {
    let (min, max) = signed_range(target);
    acc.iter()
        .map(|&v| {
            let rounded = if shift == 0 {
                v
            } else {
                let bias = 1i64 << (shift - 1);
                if v >= 0 {
                    (v + bias) >> shift
                } else {
                    -((-v + bias) >> shift)
                }
            };
            rounded.clamp(i64::from(min), i64::from(max)) as i32
        })
        .collect()
}

/// Chooses the smallest right-shift that brings the largest accumulator
/// magnitude within the representable range of `target`.
pub fn choose_requant_shift(acc: &[i64], target: Precision) -> u8 {
    let max_abs = acc.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0);
    let (_, max) = signed_range(target);
    let limit = max as u64;
    let mut shift = 0u8;
    while shift < 63 && (max_abs >> shift) > limit {
        shift += 1;
    }
    shift
}

/// Clamps every value to the representable range of `precision`, modelling the
/// effect of storing a layer's data with fewer bits than it would need.
pub fn apply_precision(values: &[i32], precision: Precision) -> Vec<i32> {
    values
        .iter()
        .map(|&v| clamp_to_precision(v, precision))
        .collect()
}

/// Relative root-mean-square error between a reduced-precision output and the
/// full-precision reference, used by the profiler as its accuracy proxy.
///
/// Returns 0.0 when both are identical and 1.0-scale errors when the outputs
/// are completely unrelated. An all-zero reference with a non-zero candidate
/// yields `f64::INFINITY`.
pub fn relative_rmse(reference: &[i64], candidate: &[i64]) -> f64 {
    assert_eq!(reference.len(), candidate.len(), "length mismatch");
    if reference.is_empty() {
        return 0.0;
    }
    let mut err = 0.0f64;
    let mut norm = 0.0f64;
    for (&r, &c) in reference.iter().zip(candidate.iter()) {
        let d = (r - c) as f64;
        err += d * d;
        norm += (r as f64) * (r as f64);
    }
    if norm == 0.0 {
        if err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (err / norm).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantizer_roundtrip_within_half_lsb() {
        let q = Quantizer::new(10, Precision::FULL);
        for &v in &[0.0, 0.125, -1.75, 3.9990234375, -17.2] {
            let x = q.quantize(v);
            assert!(
                (q.dequantize(x) - v).abs() <= 0.5 / q.scale() + 1e-12,
                "value {v}"
            );
        }
    }

    #[test]
    fn quantizer_clamps_to_precision() {
        let q = Quantizer::new(8, Precision::new(8).unwrap());
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -128);
    }

    #[test]
    fn quantize_all_maps_each() {
        let q = Quantizer::new(0, Precision::FULL);
        assert_eq!(q.quantize_all(&[1.2, -3.7]), vec![1, -4]);
    }

    #[test]
    fn requantize_rounds_to_nearest() {
        let p = Precision::FULL;
        assert_eq!(requantize(&[7], 2, p), vec![2]);
        assert_eq!(requantize(&[6], 2, p), vec![2]);
        assert_eq!(requantize(&[5], 2, p), vec![1]);
        assert_eq!(requantize(&[-7], 2, p), vec![-2]);
        assert_eq!(requantize(&[100], 0, p), vec![100]);
    }

    #[test]
    fn requantize_clamps_to_target() {
        let p = Precision::new(8).unwrap();
        assert_eq!(requantize(&[1_000_000], 2, p), vec![127]);
        assert_eq!(requantize(&[-1_000_000], 2, p), vec![-128]);
    }

    #[test]
    fn choose_shift_brings_values_in_range() {
        let acc = vec![123_456_789i64, -987_654, 42];
        let target = Precision::new(12).unwrap();
        let shift = choose_requant_shift(&acc, target);
        let out = requantize(&acc, shift, target);
        let (min, max) = signed_range(target);
        // The chosen shift keeps the (pre-clamp) values within range: verify the
        // extreme value is not saturated by more than rounding.
        assert!(out.iter().all(|&v| v >= min && v <= max));
        assert!(shift > 0);
        assert_eq!(choose_requant_shift(&[1, 2, 3], target), 0);
    }

    #[test]
    fn relative_rmse_zero_for_identical() {
        let a = vec![1, -2, 3];
        assert_eq!(relative_rmse(&a, &a), 0.0);
    }

    #[test]
    fn relative_rmse_grows_with_error() {
        let reference = vec![100, 200, -300];
        let close = vec![101, 199, -302];
        let far = vec![0, 0, 0];
        assert!(relative_rmse(&reference, &close) < relative_rmse(&reference, &far));
        assert!(relative_rmse(&[], &[]) == 0.0);
        assert!(relative_rmse(&[0, 0], &[1, 0]).is_infinite());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Quantize/dequantize round-trips within half an LSB for in-range values.
        #[test]
        fn quantizer_roundtrip(frac in 0u8..12, value in -100.0f64..100.0) {
            let q = Quantizer::new(frac, Precision::FULL);
            let (min, max) = signed_range(Precision::FULL);
            let scaled = value * q.scale();
            prop_assume!(scaled > f64::from(min) && scaled < f64::from(max));
            let x = q.quantize(value);
            prop_assert!((q.dequantize(x) - value).abs() <= 0.5 / q.scale() + 1e-12);
        }

        /// Requantization never leaves the target range and is monotone in its input.
        #[test]
        fn requantize_stays_in_range_and_is_monotone(
            a in -1_000_000i64..1_000_000,
            b in -1_000_000i64..1_000_000,
            shift in 0u8..16,
            bits in 2u8..16,
        ) {
            let target = Precision::new(bits).unwrap();
            let (min, max) = signed_range(target);
            let out = requantize(&[a, b], shift, target);
            prop_assert!(out.iter().all(|&v| v >= min && v <= max));
            if a <= b {
                prop_assert!(out[0] <= out[1], "{a} -> {} vs {b} -> {}", out[0], out[1]);
            }
        }

        /// Clamping to a precision is idempotent and never increases magnitude.
        #[test]
        fn apply_precision_is_idempotent(values in prop::collection::vec(-40_000i32..40_000, 1..50), bits in 1u8..=16) {
            let p = Precision::new(bits).unwrap();
            let once = apply_precision(&values, p);
            let twice = apply_precision(&once, p);
            prop_assert_eq!(&once, &twice);
            for (orig, clamped) in values.iter().zip(once.iter()) {
                prop_assert!(clamped.unsigned_abs() <= orig.unsigned_abs().max(1 << (bits - 1)));
            }
        }
    }
}
