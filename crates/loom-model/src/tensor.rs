//! Dense tensors in `CHW` / `KCHW` layout used by the reference (golden) model.
//!
//! The simulators themselves only need layer *shapes* and value *statistics*;
//! these tensors exist so that the bit-serial functional model and the dynamic
//! precision detectors can be validated against a straightforward integer
//! implementation of convolution and matrix-vector products.

use std::fmt;

/// Error produced when constructing or reshaping a tensor with inconsistent
/// dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape requires {} elements but {} were provided",
            self.expected, self.actual
        )
    }
}

impl std::error::Error for ShapeError {}

/// Shape of a 3-D activation tensor: channels × height × width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape3 {
    /// Number of channels.
    pub c: usize,
    /// Spatial height.
    pub h: usize,
    /// Spatial width.
    pub w: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Shape3 { c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Whether the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Shape3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.c, self.h, self.w)
    }
}

/// A 3-D integer tensor in channel-major (`CHW`) layout.
///
/// # Examples
///
/// ```
/// use loom_model::tensor::{Shape3, Tensor3};
/// let mut t = Tensor3::zeros(Shape3::new(2, 3, 3));
/// t.set(1, 2, 2, 42);
/// assert_eq!(t.get(1, 2, 2), 42);
/// assert_eq!(t.get(0, 0, 0), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor3 {
    shape: Shape3,
    data: Vec<i32>,
}

impl Tensor3 {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape3) -> Self {
        Tensor3 {
            shape,
            data: vec![0; shape.len()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match `shape.len()`.
    pub fn from_vec(shape: Shape3, data: Vec<i32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor3 { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.shape.c && y < self.shape.h && x < self.shape.w);
        (c * self.shape.h + y) * self.shape.w + x
    }

    /// Reads the element at `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds (debug builds) or reads an
    /// unrelated element (release builds); callers are expected to stay in
    /// bounds.
    pub fn get(&self, c: usize, y: usize, x: usize) -> i32 {
        self.data[self.index(c, y, x)]
    }

    /// Reads the element at `(c, y, x)` treating out-of-bounds spatial
    /// coordinates as zero padding. `y`/`x` are signed to allow negative
    /// padding offsets.
    pub fn get_padded(&self, c: usize, y: isize, x: isize) -> i32 {
        if y < 0 || x < 0 || y as usize >= self.shape.h || x as usize >= self.shape.w {
            0
        } else {
            self.get(c, y as usize, x as usize)
        }
    }

    /// Writes the element at `(c, y, x)`.
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: i32) {
        let idx = self.index(c, y, x);
        self.data[idx] = value;
    }

    /// Immutable view of the backing storage in `CHW` order.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable view of the backing storage in `CHW` order.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing storage.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Iterates over all elements in `CHW` order.
    pub fn iter(&self) -> std::slice::Iter<'_, i32> {
        self.data.iter()
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: FnMut(i32) -> i32>(&mut self, mut f: F) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }
}

/// Shape of a 4-D weight tensor: filters × channels × kernel height × kernel width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Number of filters (output channels).
    pub k: usize,
    /// Number of input channels per filter.
    pub c: usize,
    /// Kernel height.
    pub h: usize,
    /// Kernel width.
    pub w: usize,
}

impl Shape4 {
    /// Creates a new shape.
    pub fn new(k: usize, c: usize, h: usize, w: usize) -> Self {
        Shape4 { k, c, h, w }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.k * self.c * self.h * self.w
    }

    /// Whether the shape contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per filter (the length of each inner product).
    pub fn per_filter(&self) -> usize {
        self.c * self.h * self.w
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.k, self.c, self.h, self.w)
    }
}

/// A 4-D integer weight tensor in `KCHW` layout.
///
/// # Examples
///
/// ```
/// use loom_model::tensor::{Shape4, Tensor4};
/// let mut w = Tensor4::zeros(Shape4::new(2, 1, 3, 3));
/// w.set(1, 0, 1, 1, -7);
/// assert_eq!(w.get(1, 0, 1, 1), -7);
/// assert_eq!(w.shape().per_filter(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor4 {
    shape: Shape4,
    data: Vec<i32>,
}

impl Tensor4 {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape4) -> Self {
        Tensor4 {
            shape,
            data: vec![0; shape.len()],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not match `shape.len()`.
    pub fn from_vec(shape: Shape4, data: Vec<i32>) -> Result<Self, ShapeError> {
        if data.len() != shape.len() {
            return Err(ShapeError {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor4 { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn index(&self, k: usize, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(k < self.shape.k && c < self.shape.c && y < self.shape.h && x < self.shape.w);
        ((k * self.shape.c + c) * self.shape.h + y) * self.shape.w + x
    }

    /// Reads the element for filter `k`, channel `c`, kernel position `(y, x)`.
    pub fn get(&self, k: usize, c: usize, y: usize, x: usize) -> i32 {
        self.data[self.index(k, c, y, x)]
    }

    /// Writes the element for filter `k`, channel `c`, kernel position `(y, x)`.
    pub fn set(&mut self, k: usize, c: usize, y: usize, x: usize, value: i32) {
        let idx = self.index(k, c, y, x);
        self.data[idx] = value;
    }

    /// Immutable view of the backing storage in `KCHW` order.
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Mutable view of the backing storage in `KCHW` order.
    pub fn as_mut_slice(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// The flattened weights of a single filter, in `CHW` order.
    pub fn filter(&self, k: usize) -> &[i32] {
        let per = self.shape.per_filter();
        &self.data[k * per..(k + 1) * per]
    }

    /// Iterates over all elements in `KCHW` order.
    pub fn iter(&self) -> std::slice::Iter<'_, i32> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape3_len_and_display() {
        let s = Shape3::new(3, 4, 5);
        assert_eq!(s.len(), 60);
        assert!(!s.is_empty());
        assert_eq!(s.to_string(), "3x4x5");
    }

    #[test]
    fn tensor3_roundtrip_and_layout() {
        let s = Shape3::new(2, 2, 2);
        let t = Tensor3::from_vec(s, (0..8).collect()).unwrap();
        // CHW layout: channel 1 starts at element 4.
        assert_eq!(t.get(0, 0, 0), 0);
        assert_eq!(t.get(0, 1, 1), 3);
        assert_eq!(t.get(1, 0, 0), 4);
        assert_eq!(t.get(1, 1, 1), 7);
    }

    #[test]
    fn tensor3_from_vec_rejects_bad_len() {
        let err = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![1, 2, 3]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "shape requires 4 elements but 3 were provided"
        );
    }

    #[test]
    fn tensor3_padded_reads_zero_outside() {
        let t = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.get_padded(0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, 2), 0);
        assert_eq!(t.get_padded(0, 1, 1), 4);
    }

    #[test]
    fn tensor3_map_in_place() {
        let mut t = Tensor3::from_vec(Shape3::new(1, 1, 3), vec![-1, 0, 5]).unwrap();
        t.map_in_place(|v| v.max(0));
        assert_eq!(t.as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn tensor4_layout_and_filter_view() {
        let s = Shape4::new(2, 1, 2, 2);
        let w = Tensor4::from_vec(s, (0..8).collect()).unwrap();
        assert_eq!(w.get(0, 0, 0, 0), 0);
        assert_eq!(w.get(1, 0, 0, 0), 4);
        assert_eq!(w.filter(1), &[4, 5, 6, 7]);
        assert_eq!(w.shape().per_filter(), 4);
    }

    #[test]
    fn tensor4_from_vec_rejects_bad_len() {
        assert!(Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![]).is_err());
    }
}
