//! Quantized forward inference over a linear chain of layers.
//!
//! This is the golden model the functional accelerator simulation is compared
//! against, and the source of real activation values for the dynamic precision
//! detectors. It handles networks whose layers chain shape-to-shape (conv →
//! pool → conv → … → fc); the large zoo networks with branching topologies
//! (GoogLeNet) are only ever run through the *cycle* models, which need
//! per-layer geometry rather than chained values.

use crate::fixed::Precision;
use crate::layer::{LayerError, LayerKind};
use crate::network::Network;
use crate::quant::{choose_requant_shift, requantize};
use crate::reference::{conv_forward, fc_forward, max_pool_forward, relu_in_place};
use crate::synthetic::{synthetic_weights, ValueDistribution};
use crate::tensor::{Shape4, Tensor3, Tensor4};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Error produced when a network cannot be run as a linear chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// Two consecutive layers disagree about the activation shape between them.
    ShapeMismatch {
        /// Name of the layer whose input did not match.
        layer: String,
        /// Number of activations produced by the previous layer.
        produced: usize,
        /// Number of activations the layer expects.
        expected: usize,
    },
    /// The network has no layers.
    Empty,
    /// A layer failed validation.
    Layer(LayerError),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::ShapeMismatch {
                layer,
                produced,
                expected,
            } => write!(
                f,
                "layer {layer} expects {expected} input activations but the previous layer produced {produced}"
            ),
            InferenceError::Empty => write!(f, "network has no layers"),
            InferenceError::Layer(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<LayerError> for InferenceError {
    fn from(e: LayerError) -> Self {
        InferenceError::Layer(e)
    }
}

/// The weights of one compute layer, flattened in the layout the reference
/// implementations expect (`KCHW` for convolutions, row-major `out × in` for
/// fully-connected layers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWeights {
    /// Name of the layer these weights belong to.
    pub layer_name: String,
    /// Flattened weight values.
    pub values: Vec<i32>,
}

/// All weights of a network, one entry per *compute* layer in network order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkParams {
    weights: Vec<LayerWeights>,
}

impl NetworkParams {
    /// Creates parameters from an explicit list of per-layer weights.
    pub fn new(weights: Vec<LayerWeights>) -> Self {
        NetworkParams { weights }
    }

    /// Generates synthetic parameters for `network`, one weight precision per
    /// compute layer (`weight_precisions` is cycled if shorter than the number
    /// of compute layers).
    ///
    /// # Panics
    ///
    /// Panics if `weight_precisions` is empty.
    pub fn synthetic(network: &Network, weight_precisions: &[Precision], seed: u64) -> Self {
        assert!(
            !weight_precisions.is_empty(),
            "at least one weight precision is required"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        let mut idx = 0usize;
        for layer in network.compute_layers() {
            let precision = weight_precisions[idx % weight_precisions.len()];
            idx += 1;
            let count = layer.kind.total_weights() as usize;
            weights.push(LayerWeights {
                layer_name: layer.name.clone(),
                values: synthetic_weights(&mut rng, count, precision, ValueDistribution::weights()),
            });
        }
        NetworkParams { weights }
    }

    /// Per-layer weights in network (compute-layer) order.
    pub fn layers(&self) -> &[LayerWeights] {
        &self.weights
    }

    /// Looks up the weights of a layer by name.
    pub fn for_layer(&self, name: &str) -> Option<&LayerWeights> {
        self.weights.iter().find(|w| w.layer_name == name)
    }
}

/// The recorded activations of one layer during a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer name.
    pub layer_name: String,
    /// Input activations the layer consumed (flattened).
    pub inputs: Vec<i32>,
    /// Wide accumulator outputs before re-quantization (compute layers only).
    pub accumulators: Vec<i64>,
    /// Quantized output activations after re-quantization and ReLU.
    pub outputs: Vec<i32>,
    /// Right-shift applied when re-quantizing the accumulators.
    pub requant_shift: u8,
}

/// The complete record of a forward pass: one [`LayerTrace`] per layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceTrace {
    /// Per-layer traces in execution order.
    pub layers: Vec<LayerTrace>,
}

impl InferenceTrace {
    /// The final layer's quantized outputs (the network's prediction vector).
    pub fn final_outputs(&self) -> &[i32] {
        self.layers
            .last()
            .map(|l| l.outputs.as_slice())
            .unwrap_or(&[])
    }

    /// The final layer's wide accumulators, used as the fidelity reference by
    /// the precision profiler.
    pub fn final_accumulators(&self) -> &[i64] {
        self.layers
            .last()
            .map(|l| l.accumulators.as_slice())
            .unwrap_or(&[])
    }

    /// Looks up the trace of a layer by name.
    pub fn for_layer(&self, name: &str) -> Option<&LayerTrace> {
        self.layers.iter().find(|l| l.layer_name == name)
    }
}

/// Options controlling the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceOptions {
    /// Precision the re-quantized activations are clamped to between layers.
    pub activation_precision: Precision,
    /// Whether ReLU is applied after every compute layer (the evaluated
    /// networks all use ReLU).
    pub relu: bool,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions {
            activation_precision: Precision::FULL,
            relu: true,
        }
    }
}

/// Runs a forward pass of `network` over `input` using `params`.
///
/// # Errors
///
/// Returns [`InferenceError::ShapeMismatch`] if the layers do not chain, or
/// [`InferenceError::Empty`] for an empty network.
pub fn run_chain(
    network: &Network,
    params: &NetworkParams,
    input: &Tensor3,
    options: InferenceOptions,
) -> Result<InferenceTrace, InferenceError> {
    run_chain_with_precisions(network, params, input, options, &[])
}

/// Runs a forward pass like [`run_chain`], additionally clamping the *input*
/// activations of the `j`-th compute layer to `compute_layer_precisions[j]`
/// before it executes. This is the knob the precision profiler turns when it
/// searches for the smallest per-layer activation precisions (Judd et al.).
///
/// Layers beyond the end of the slice run at full precision.
///
/// # Errors
///
/// Returns [`InferenceError::ShapeMismatch`] if the layers do not chain, or
/// [`InferenceError::Empty`] for an empty network.
pub fn run_chain_with_precisions(
    network: &Network,
    params: &NetworkParams,
    input: &Tensor3,
    options: InferenceOptions,
    compute_layer_precisions: &[Precision],
) -> Result<InferenceTrace, InferenceError> {
    if network.layers().is_empty() {
        return Err(InferenceError::Empty);
    }
    let clamp_input = |current: &mut Vec<i32>, compute_idx: usize| {
        if let Some(&p) = compute_layer_precisions.get(compute_idx) {
            *current = crate::quant::apply_precision(current, p);
        }
    };
    let mut traces = Vec::with_capacity(network.layers().len());
    let mut current: Vec<i32> = input.as_slice().to_vec();
    let mut current_shape = Some(input.shape());
    let mut weight_idx = 0usize;

    for layer in network.layers() {
        match &layer.kind {
            LayerKind::Conv(spec) => {
                spec.validate()?;
                clamp_input(&mut current, weight_idx);
                let expected = spec.input_shape().len();
                if current.len() != expected {
                    return Err(InferenceError::ShapeMismatch {
                        layer: layer.name.clone(),
                        produced: current.len(),
                        expected,
                    });
                }
                let in_tensor = Tensor3::from_vec(spec.input_shape(), current.clone())
                    .expect("length checked above");
                let weights = &params.layers()[weight_idx];
                weight_idx += 1;
                let w_shape = spec.weight_shape();
                let w_tensor = Tensor4::from_vec(
                    Shape4::new(w_shape.k, w_shape.c, w_shape.h, w_shape.w),
                    weights.values.clone(),
                )
                .map_err(|_| InferenceError::ShapeMismatch {
                    layer: layer.name.clone(),
                    produced: weights.values.len(),
                    expected: w_shape.len(),
                })?;
                let acc = conv_forward(spec, &in_tensor, &w_tensor);
                let shift = choose_requant_shift(&acc, options.activation_precision);
                let mut out = requantize(&acc, shift, options.activation_precision);
                if options.relu {
                    relu_in_place(&mut out);
                }
                traces.push(LayerTrace {
                    layer_name: layer.name.clone(),
                    inputs: current,
                    accumulators: acc,
                    outputs: out.clone(),
                    requant_shift: shift,
                });
                current = out;
                current_shape = Some(spec.output_shape());
            }
            LayerKind::FullyConnected(spec) => {
                spec.validate()?;
                clamp_input(&mut current, weight_idx);
                if current.len() != spec.in_features {
                    return Err(InferenceError::ShapeMismatch {
                        layer: layer.name.clone(),
                        produced: current.len(),
                        expected: spec.in_features,
                    });
                }
                let weights = &params.layers()[weight_idx];
                weight_idx += 1;
                let acc = fc_forward(spec, &current, &weights.values);
                let shift = choose_requant_shift(&acc, options.activation_precision);
                let mut out = requantize(&acc, shift, options.activation_precision);
                if options.relu {
                    relu_in_place(&mut out);
                }
                traces.push(LayerTrace {
                    layer_name: layer.name.clone(),
                    inputs: current,
                    accumulators: acc,
                    outputs: out.clone(),
                    requant_shift: shift,
                });
                current = out;
                current_shape = None;
            }
            LayerKind::MaxPool(spec) => {
                let expected = spec.input_shape().len();
                if current.len() != expected {
                    return Err(InferenceError::ShapeMismatch {
                        layer: layer.name.clone(),
                        produced: current.len(),
                        expected,
                    });
                }
                let in_tensor = Tensor3::from_vec(spec.input_shape(), current.clone())
                    .expect("length checked above");
                let out_tensor = max_pool_forward(spec, &in_tensor);
                let out = out_tensor.as_slice().to_vec();
                traces.push(LayerTrace {
                    layer_name: layer.name.clone(),
                    inputs: current,
                    accumulators: Vec::new(),
                    outputs: out.clone(),
                    requant_shift: 0,
                });
                current = out;
                current_shape = Some(spec.output_shape());
            }
        }
    }
    // `current_shape` is tracked for future extensions (e.g. NCHW re-layout of
    // the final feature map); silence the otherwise-unused assignment.
    let _ = current_shape;
    Ok(InferenceTrace { layers: traces })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};
    use crate::network::NetworkBuilder;
    use crate::synthetic::{synthetic_activations, ValueDistribution};
    use crate::tensor::Shape3;

    fn small_net() -> Network {
        NetworkBuilder::new("small")
            .conv("conv1", ConvSpec::simple(2, 8, 8, 4, 3))
            .max_pool("pool1", PoolSpec::new(4, 6, 6, 2, 2))
            .conv("conv2", ConvSpec::simple(4, 3, 3, 8, 3))
            .fully_connected("fc1", FcSpec::new(8, 5))
            .build()
            .unwrap()
    }

    fn small_input(seed: u64) -> Tensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = synthetic_activations(
            &mut rng,
            2 * 8 * 8,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        Tensor3::from_vec(Shape3::new(2, 8, 8), values).unwrap()
    }

    #[test]
    fn chain_runs_end_to_end() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let trace = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        assert_eq!(trace.layers.len(), 4);
        assert_eq!(trace.final_outputs().len(), 5);
        // ReLU means no negative outputs anywhere.
        for layer in &trace.layers {
            assert!(
                layer.outputs.iter().all(|&v| v >= 0),
                "layer {}",
                layer.layer_name
            );
        }
    }

    #[test]
    fn chain_is_deterministic() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let a = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        let b = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let net = NetworkBuilder::new("broken")
            .conv("conv1", ConvSpec::simple(2, 8, 8, 4, 3))
            .fully_connected("fc1", FcSpec::new(9999, 5))
            .build()
            .unwrap();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let err =
            run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap_err();
        match err {
            InferenceError::ShapeMismatch {
                layer, expected, ..
            } => {
                assert_eq!(layer, "fc1");
                assert_eq!(expected, 9999);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lower_activation_precision_changes_outputs_but_keeps_range() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let opts = InferenceOptions {
            activation_precision: Precision::new(6).unwrap(),
            relu: true,
        };
        let trace = run_chain(&net, &params, &small_input(2), opts).unwrap();
        for layer in &trace.layers {
            assert!(
                layer.outputs.iter().all(|&v| v <= 31),
                "layer {}",
                layer.layer_name
            );
        }
    }

    #[test]
    fn params_lookup_by_name() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        assert!(params.for_layer("conv2").is_some());
        assert!(params.for_layer("nonexistent").is_none());
        assert_eq!(params.layers().len(), 3);
    }

    #[test]
    fn empty_network_is_rejected() {
        let net = NetworkBuilder::new("empty").build().unwrap();
        let params = NetworkParams::new(vec![]);
        let err =
            run_chain(&net, &params, &small_input(1), InferenceOptions::default()).unwrap_err();
        assert_eq!(err, InferenceError::Empty);
    }
}
