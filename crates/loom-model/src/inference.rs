//! Quantized forward inference: the golden model the functional accelerator
//! simulation is compared against, and the source of real activation values
//! for the dynamic precision detectors.
//!
//! Execution is built on the DAG executor in [`crate::graph`]: a linear
//! [`Network`] lifts into a [`LayerGraph`] whose nodes chain one after the
//! other ([`run_chain`]), and branching topologies — GoogLeNet's inception
//! modules with their four parallel branches and channel concatenation — are
//! assembled directly with [`crate::graph::GraphBuilder`] and run through the
//! same executor. Batched inputs go through [`run_batch`] (or
//! [`LayerGraph::run_batch`]); each batch item is an independent forward
//! pass, so a batch of N is bit-identical to N runs of batch 1.
//!
//! # Examples
//!
//! Run a batch through a small chain:
//!
//! ```
//! use loom_model::inference::{run_batch, InferenceOptions, NetworkParams};
//! use loom_model::layer::{ConvSpec, FcSpec};
//! use loom_model::network::NetworkBuilder;
//! use loom_model::tensor::{Shape3, Tensor3};
//! use loom_model::Precision;
//!
//! let net = NetworkBuilder::new("tiny")
//!     .conv("conv1", ConvSpec::simple(1, 5, 5, 2, 3))
//!     .fully_connected("fc1", FcSpec::new(2 * 3 * 3, 4))
//!     .build()
//!     .unwrap();
//! let params = NetworkParams::synthetic(&net, &[Precision::new(4).unwrap()], 1);
//! let image = Tensor3::from_vec(Shape3::new(1, 5, 5), (0..25).collect()).unwrap();
//! let traces = run_batch(
//!     &net,
//!     &params,
//!     &[image.clone(), image],
//!     InferenceOptions::default(),
//! )
//! .unwrap();
//! assert_eq!(traces.len(), 2);
//! assert_eq!(traces[0], traces[1]); // identical inputs, identical traces
//! ```

use crate::fixed::Precision;
use crate::graph::{GraphError, LayerGraph};
use crate::layer::LayerError;
use crate::network::Network;
use crate::synthetic::{synthetic_weights, ValueDistribution};
use crate::tensor::Tensor3;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Error produced when a network cannot be run as a linear chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InferenceError {
    /// Two consecutive layers disagree about the activation shape between them.
    ShapeMismatch {
        /// Name of the layer whose input did not match.
        layer: String,
        /// Number of activations produced by the previous layer.
        produced: usize,
        /// Number of activations the layer expects.
        expected: usize,
    },
    /// The network has no layers.
    Empty,
    /// A layer failed validation.
    Layer(LayerError),
    /// The layer graph itself is malformed (unresolved source, cycle,
    /// concatenated branches with mismatched spatial dimensions, …).
    Graph(GraphError),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::ShapeMismatch {
                layer,
                produced,
                expected,
            } => write!(
                f,
                "layer {layer} expects {expected} input activations but the previous layer produced {produced}"
            ),
            InferenceError::Empty => write!(f, "network has no layers"),
            InferenceError::Layer(e) => write!(f, "{e}"),
            InferenceError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<LayerError> for InferenceError {
    fn from(e: LayerError) -> Self {
        InferenceError::Layer(e)
    }
}

impl From<GraphError> for InferenceError {
    fn from(e: GraphError) -> Self {
        InferenceError::Graph(e)
    }
}

/// The weights of one compute layer, flattened in the layout the reference
/// implementations expect (`KCHW` for convolutions, row-major `out × in` for
/// fully-connected layers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerWeights {
    /// Name of the layer these weights belong to.
    pub layer_name: String,
    /// Flattened weight values.
    pub values: Vec<i32>,
}

/// All weights of a network, one entry per *compute* layer in network order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkParams {
    weights: Vec<LayerWeights>,
}

impl NetworkParams {
    /// Creates parameters from an explicit list of per-layer weights.
    pub fn new(weights: Vec<LayerWeights>) -> Self {
        NetworkParams { weights }
    }

    /// Generates synthetic parameters for `network`, one weight precision per
    /// compute layer (`weight_precisions` is cycled if shorter than the number
    /// of compute layers).
    ///
    /// # Panics
    ///
    /// Panics if `weight_precisions` is empty.
    pub fn synthetic(network: &Network, weight_precisions: &[Precision], seed: u64) -> Self {
        // A chain's compute order is its layer order, so lifting to a graph
        // consumes the RNG identically — one generator loop to maintain.
        Self::synthetic_for_graph(&LayerGraph::from_network(network), weight_precisions, seed)
    }

    /// Generates synthetic parameters for a [`LayerGraph`], one weight set per
    /// compute node in execution order (the order
    /// [`LayerGraph::compute_layers`] yields, which the graph executor also
    /// uses to look weights up positionally). `weight_precisions` is cycled
    /// if shorter than the number of compute nodes.
    ///
    /// # Panics
    ///
    /// Panics if `weight_precisions` is empty.
    pub fn synthetic_for_graph(
        graph: &LayerGraph,
        weight_precisions: &[Precision],
        seed: u64,
    ) -> Self {
        assert!(
            !weight_precisions.is_empty(),
            "at least one weight precision is required"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = Vec::new();
        for (idx, (name, kind)) in graph.compute_layers().enumerate() {
            let precision = weight_precisions[idx % weight_precisions.len()];
            let count = kind.total_weights() as usize;
            weights.push(LayerWeights {
                layer_name: name.to_string(),
                values: synthetic_weights(&mut rng, count, precision, ValueDistribution::weights()),
            });
        }
        NetworkParams { weights }
    }

    /// Per-layer weights in network (compute-layer) order.
    pub fn layers(&self) -> &[LayerWeights] {
        &self.weights
    }

    /// Looks up the weights of a layer by name.
    pub fn for_layer(&self, name: &str) -> Option<&LayerWeights> {
        self.weights.iter().find(|w| w.layer_name == name)
    }
}

/// The recorded activations of one layer during a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Layer name.
    pub layer_name: String,
    /// Input activations the layer consumed (flattened).
    pub inputs: Vec<i32>,
    /// Wide accumulator outputs before re-quantization (compute layers only).
    pub accumulators: Vec<i64>,
    /// Quantized output activations after re-quantization and ReLU.
    pub outputs: Vec<i32>,
    /// Right-shift applied when re-quantizing the accumulators.
    pub requant_shift: u8,
}

/// The complete record of a forward pass: one [`LayerTrace`] per layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceTrace {
    /// Per-layer traces in execution order.
    pub layers: Vec<LayerTrace>,
}

impl InferenceTrace {
    /// The final layer's quantized outputs (the network's prediction vector).
    pub fn final_outputs(&self) -> &[i32] {
        self.layers
            .last()
            .map(|l| l.outputs.as_slice())
            .unwrap_or(&[])
    }

    /// The final layer's wide accumulators, used as the fidelity reference by
    /// the precision profiler.
    pub fn final_accumulators(&self) -> &[i64] {
        self.layers
            .last()
            .map(|l| l.accumulators.as_slice())
            .unwrap_or(&[])
    }

    /// Looks up the trace of a layer by name.
    pub fn for_layer(&self, name: &str) -> Option<&LayerTrace> {
        self.layers.iter().find(|l| l.layer_name == name)
    }
}

/// Options controlling the forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceOptions {
    /// Precision the re-quantized activations are clamped to between layers.
    pub activation_precision: Precision,
    /// Whether ReLU is applied after every compute layer (the evaluated
    /// networks all use ReLU).
    pub relu: bool,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions {
            activation_precision: Precision::FULL,
            relu: true,
        }
    }
}

/// Runs a forward pass of `network` over `input` using `params`.
///
/// # Errors
///
/// Returns [`InferenceError::ShapeMismatch`] if the layers do not chain, or
/// [`InferenceError::Empty`] for an empty network.
pub fn run_chain(
    network: &Network,
    params: &NetworkParams,
    input: &Tensor3,
    options: InferenceOptions,
) -> Result<InferenceTrace, InferenceError> {
    run_chain_with_precisions(network, params, input, options, &[])
}

/// Runs a forward pass like [`run_chain`], additionally clamping the *input*
/// activations of the `j`-th compute layer to `compute_layer_precisions[j]`
/// before it executes. This is the knob the precision profiler turns when it
/// searches for the smallest per-layer activation precisions (Judd et al.).
///
/// Layers beyond the end of the slice run at full precision.
///
/// # Errors
///
/// Returns [`InferenceError::ShapeMismatch`] if the layers do not chain, or
/// [`InferenceError::Empty`] for an empty network.
pub fn run_chain_with_precisions(
    network: &Network,
    params: &NetworkParams,
    input: &Tensor3,
    options: InferenceOptions,
    compute_layer_precisions: &[Precision],
) -> Result<InferenceTrace, InferenceError> {
    LayerGraph::from_network(network).run_with_precisions(
        params,
        input,
        options,
        compute_layer_precisions,
    )
}

/// Runs a forward pass over every input in `inputs`, in order. Each item is
/// an independent pass, so a batch of N is bit-identical to N calls of
/// [`run_chain`]; see the [module example](self) for usage. The parallel
/// batched engine in `loom-sim` produces the same traces from the bit-serial
/// datapath.
///
/// # Errors
///
/// Propagates the first per-input error, as [`run_chain`] would.
pub fn run_batch(
    network: &Network,
    params: &NetworkParams,
    inputs: &[Tensor3],
    options: InferenceOptions,
) -> Result<Vec<InferenceTrace>, InferenceError> {
    LayerGraph::from_network(network).run_batch(params, inputs, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};
    use crate::network::NetworkBuilder;
    use crate::synthetic::{synthetic_activations, ValueDistribution};
    use crate::tensor::Shape3;

    fn small_net() -> Network {
        NetworkBuilder::new("small")
            .conv("conv1", ConvSpec::simple(2, 8, 8, 4, 3))
            .max_pool("pool1", PoolSpec::new(4, 6, 6, 2, 2))
            .conv("conv2", ConvSpec::simple(4, 3, 3, 8, 3))
            .fully_connected("fc1", FcSpec::new(8, 5))
            .build()
            .unwrap()
    }

    fn small_input(seed: u64) -> Tensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = synthetic_activations(
            &mut rng,
            2 * 8 * 8,
            Precision::new(8).unwrap(),
            ValueDistribution::activations(),
        );
        Tensor3::from_vec(Shape3::new(2, 8, 8), values).unwrap()
    }

    #[test]
    fn chain_runs_end_to_end() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let trace = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        assert_eq!(trace.layers.len(), 4);
        assert_eq!(trace.final_outputs().len(), 5);
        // ReLU means no negative outputs anywhere.
        for layer in &trace.layers {
            assert!(
                layer.outputs.iter().all(|&v| v >= 0),
                "layer {}",
                layer.layer_name
            );
        }
    }

    #[test]
    fn chain_is_deterministic() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let a = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        let b = run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let net = NetworkBuilder::new("broken")
            .conv("conv1", ConvSpec::simple(2, 8, 8, 4, 3))
            .fully_connected("fc1", FcSpec::new(9999, 5))
            .build()
            .unwrap();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let err =
            run_chain(&net, &params, &small_input(2), InferenceOptions::default()).unwrap_err();
        match err {
            InferenceError::ShapeMismatch {
                layer, expected, ..
            } => {
                assert_eq!(layer, "fc1");
                assert_eq!(expected, 9999);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn lower_activation_precision_changes_outputs_but_keeps_range() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        let opts = InferenceOptions {
            activation_precision: Precision::new(6).unwrap(),
            relu: true,
        };
        let trace = run_chain(&net, &params, &small_input(2), opts).unwrap();
        for layer in &trace.layers {
            assert!(
                layer.outputs.iter().all(|&v| v <= 31),
                "layer {}",
                layer.layer_name
            );
        }
    }

    #[test]
    fn params_lookup_by_name() {
        let net = small_net();
        let params = NetworkParams::synthetic(&net, &[Precision::new(8).unwrap()], 1);
        assert!(params.for_layer("conv2").is_some());
        assert!(params.for_layer("nonexistent").is_none());
        assert_eq!(params.layers().len(), 3);
    }

    #[test]
    fn empty_network_is_rejected() {
        let net = NetworkBuilder::new("empty").build().unwrap();
        let params = NetworkParams::new(vec![]);
        let err =
            run_chain(&net, &params, &small_input(1), InferenceOptions::default()).unwrap_err();
        assert_eq!(err, InferenceError::Empty);
    }
}
