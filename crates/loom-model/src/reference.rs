//! Reference (golden) integer implementations of the compute layers.
//!
//! These straightforward implementations define *the* correct answer: the
//! bit-serial functional model in `loom-sim` and every scheduling optimisation
//! must produce results identical to them. They are deliberately simple —
//! quadruple loops, no blocking — so that their correctness is evident by
//! inspection.

use crate::layer::{ConvSpec, FcSpec, PoolSpec};
use crate::tensor::{Shape3, Tensor3, Tensor4};

/// Computes a convolutional layer over integer inputs and weights.
///
/// Accumulation is performed in `i64` and the result is returned without any
/// re-quantization; callers (the quantized inference pipeline) decide how to
/// scale outputs back down.
///
/// # Panics
///
/// Panics if the tensor shapes do not match the spec.
pub fn conv_forward(spec: &ConvSpec, input: &Tensor3, weights: &Tensor4) -> Vec<i64> {
    assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
    assert_eq!(
        weights.shape(),
        spec.weight_shape(),
        "weight shape mismatch"
    );

    let out_h = spec.out_height();
    let out_w = spec.out_width();
    let group_in = spec.in_channels / spec.groups;
    let group_out = spec.filters / spec.groups;
    let mut output = vec![0i64; spec.filters * out_h * out_w];

    for k in 0..spec.filters {
        let group = k / group_out;
        let c_base = group * group_in;
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = 0i64;
                for c in 0..group_in {
                    for ky in 0..spec.kernel_h {
                        for kx in 0..spec.kernel_w {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            let a = input.get_padded(c_base + c, iy, ix);
                            let w = weights.get(k, c, ky, kx);
                            acc += i64::from(a) * i64::from(w);
                        }
                    }
                }
                output[(k * out_h + oy) * out_w + ox] = acc;
            }
        }
    }
    output
}

/// Computes a fully-connected layer: `out[k] = sum_i weights[k][i] * input[i]`.
///
/// # Panics
///
/// Panics if `input.len() != spec.in_features` or the weight matrix does not
/// have `out_features * in_features` entries.
pub fn fc_forward(spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64> {
    assert_eq!(input.len(), spec.in_features, "input length mismatch");
    assert_eq!(
        weights.len(),
        spec.in_features * spec.out_features,
        "weight length mismatch"
    );
    let mut output = vec![0i64; spec.out_features];
    for (k, out) in output.iter_mut().enumerate() {
        let row = &weights[k * spec.in_features..(k + 1) * spec.in_features];
        *out = row
            .iter()
            .zip(input.iter())
            .map(|(&w, &a)| i64::from(w) * i64::from(a))
            .sum();
    }
    output
}

/// Computes a max-pooling layer. Positions introduced by padding are skipped
/// (never treated as zeros), so every output is the max of real inputs only.
///
/// # Panics
///
/// Panics if the input shape does not match the spec.
pub fn max_pool_forward(spec: &PoolSpec, input: &Tensor3) -> Tensor3 {
    assert_eq!(input.shape(), spec.input_shape(), "input shape mismatch");
    let out_h = spec.out_height();
    let out_w = spec.out_width();
    let mut output = Tensor3::zeros(Shape3::new(spec.channels, out_h, out_w));
    for c in 0..spec.channels {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut best = i32::MIN;
                for wy in 0..spec.window {
                    for wx in 0..spec.window {
                        let iy = (oy * spec.stride + wy) as isize - spec.padding as isize;
                        let ix = (ox * spec.stride + wx) as isize - spec.padding as isize;
                        if iy >= 0
                            && ix >= 0
                            && (iy as usize) < spec.in_height
                            && (ix as usize) < spec.in_width
                        {
                            best = best.max(input.get(c, iy as usize, ix as usize));
                        }
                    }
                }
                output.set(c, oy, ox, best);
            }
        }
    }
    output
}

/// Applies the ReLU non-linearity in place.
pub fn relu_in_place(values: &mut [i32]) {
    for v in values {
        *v = (*v).max(0);
    }
}

/// Applies ReLU to a 64-bit accumulator vector, producing 64-bit outputs.
pub fn relu_i64(values: &[i64]) -> Vec<i64> {
    values.iter().map(|&v| v.max(0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{Shape3, Shape4};

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1 on a single channel reproduces the input.
        let spec = ConvSpec::simple(1, 3, 3, 1, 1);
        let input = Tensor3::from_vec(Shape3::new(1, 3, 3), (1..=9).collect()).unwrap();
        let weights = Tensor4::from_vec(Shape4::new(1, 1, 1, 1), vec![1]).unwrap();
        let out = conv_forward(&spec, &input, &weights);
        assert_eq!(out, (1..=9).map(i64::from).collect::<Vec<_>>());
    }

    #[test]
    fn conv_sums_over_kernel_and_channels() {
        // 2 channels, 2x2 input, 2x2 kernel of ones: output = sum of all 8 inputs.
        let spec = ConvSpec::simple(2, 2, 2, 1, 2);
        let input = Tensor3::from_vec(Shape3::new(2, 2, 2), vec![1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let weights = Tensor4::from_vec(Shape4::new(1, 2, 2, 2), vec![1; 8]).unwrap();
        let out = conv_forward(&spec, &input, &weights);
        assert_eq!(out, vec![36]);
    }

    #[test]
    fn conv_respects_stride_and_padding() {
        let spec = ConvSpec {
            in_channels: 1,
            in_height: 3,
            in_width: 3,
            filters: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let input = Tensor3::from_vec(Shape3::new(1, 3, 3), vec![1; 9]).unwrap();
        let weights = Tensor4::from_vec(Shape4::new(1, 1, 3, 3), vec![1; 9]).unwrap();
        let out = conv_forward(&spec, &input, &weights);
        // Output is 2x2; corner windows see 4 valid pixels each.
        assert_eq!(out, vec![4, 4, 4, 4]);
    }

    #[test]
    fn conv_grouped_keeps_groups_independent() {
        // 2 channels, 2 filters, 2 groups: filter 0 sees only channel 0, filter 1 only channel 1.
        let spec = ConvSpec {
            in_channels: 2,
            in_height: 1,
            in_width: 1,
            filters: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            padding: 0,
            groups: 2,
        };
        let input = Tensor3::from_vec(Shape3::new(2, 1, 1), vec![10, 100]).unwrap();
        let weights = Tensor4::from_vec(Shape4::new(2, 1, 1, 1), vec![1, 1]).unwrap();
        let out = conv_forward(&spec, &input, &weights);
        assert_eq!(out, vec![10, 100]);
    }

    #[test]
    fn conv_negative_weights_accumulate_correctly() {
        let spec = ConvSpec::simple(1, 2, 2, 1, 2);
        let input = Tensor3::from_vec(Shape3::new(1, 2, 2), vec![3, -5, 7, 11]).unwrap();
        let weights = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1, 2, -3, 4]).unwrap();
        let out = conv_forward(&spec, &input, &weights);
        assert_eq!(out, vec![-3 - 10 - 21 + 44]);
    }

    #[test]
    fn fc_matrix_vector() {
        let spec = FcSpec::new(3, 2);
        let input = [1, 2, 3];
        let weights = [1, 0, 0, /* row 0 */ 0, 1, -1 /* row 1 */];
        let out = fc_forward(&spec, &input, &weights);
        assert_eq!(out, vec![1, -1]);
    }

    #[test]
    fn max_pool_takes_window_maximum() {
        let spec = PoolSpec::new(1, 4, 4, 2, 2);
        let input = Tensor3::from_vec(Shape3::new(1, 4, 4), (0..16).collect()).unwrap();
        let out = max_pool_forward(&spec, &input);
        assert_eq!(out.as_slice(), &[5, 7, 13, 15]);
    }

    #[test]
    fn padded_max_pool_skips_padding() {
        // 3x3 stride-1 pad-1 pooling on an all-negative input: padding must
        // never win the max, so every output stays negative.
        let spec = PoolSpec::new(1, 3, 3, 3, 1).with_padding(1);
        let input = Tensor3::from_vec(Shape3::new(1, 3, 3), vec![-9; 9]).unwrap();
        let out = max_pool_forward(&spec, &input);
        assert_eq!((spec.out_height(), spec.out_width()), (3, 3));
        assert!(out.as_slice().iter().all(|&v| v == -9));
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-3, 0, 5];
        relu_in_place(&mut v);
        assert_eq!(v, vec![0, 0, 5]);
        assert_eq!(relu_i64(&[-1, 2]), vec![0, 2]);
    }
}
