//! Synthetic weight and activation generators.
//!
//! ImageNet-trained models for the six evaluated networks are not available in
//! this environment, so the reproduction substitutes synthetic tensors whose
//! *bit-precision statistics* are calibrated to the paper's published profiles
//! (Table 1) — see `DESIGN.md` §2. The generators below guarantee two
//! properties the simulators depend on:
//!
//! 1. the layer-wide required precision equals the requested profile precision
//!    exactly (a value of maximal magnitude is always planted), and
//! 2. the magnitude distribution is heavy at small values, so per-group
//!    precisions detected at runtime fall below the layer profile — the effect
//!    Loom's dynamic precision reduction exploits.

use crate::fixed::Precision;
use rand::RngExt;

/// Controls how strongly synthetic values concentrate near zero.
///
/// The generator draws the bit-length of each value from a truncated geometric
/// distribution that starts at one bit and grows by one bit per step with
/// probability `1 - p_small`. Larger `p_small` therefore means more small
/// values, lower effective per-group precisions, and more benefit from dynamic
/// precision reduction — matching the heavily zero-skewed magnitude
/// distributions of real post-ReLU activations and trained weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueDistribution {
    /// Per-step probability that the value's bit-length stops growing.
    pub p_small: f64,
    /// Fraction of exactly-zero values (activation sparsity after ReLU).
    pub zero_fraction: f64,
}

impl ValueDistribution {
    /// Distribution used for synthetic weights: mildly concentrated, no
    /// structural zeros (the paper's Loom does not exploit sparsity).
    pub fn weights() -> Self {
        ValueDistribution {
            p_small: 0.35,
            zero_fraction: 0.02,
        }
    }

    /// Distribution used for synthetic post-ReLU activations: strongly
    /// concentrated near zero with substantial sparsity, which is what drives
    /// the dynamic per-group activation precisions below the profile values.
    pub fn activations() -> Self {
        ValueDistribution {
            p_small: 0.30,
            zero_fraction: 0.45,
        }
    }

    /// Draws the number of magnitude bits for one value, in `1..=max_bits`.
    fn draw_bits<R: RngExt>(&self, rng: &mut R, max_bits: u8) -> u8 {
        let mut bits = 1u8;
        while bits < max_bits && rng.random::<f64>() >= self.p_small {
            bits += 1;
        }
        bits
    }

    /// Draws one signed value that fits in `precision` bits (two's complement).
    pub fn draw_signed<R: RngExt>(&self, rng: &mut R, precision: Precision) -> i32 {
        if rng.random::<f64>() < self.zero_fraction {
            return 0;
        }
        let mag_bits = self.draw_bits(rng, precision.bits().saturating_sub(1).max(1));
        let max_mag = (1i64 << mag_bits) - 1;
        let mag = rng.random_range(0..=max_mag) as i32;
        if rng.random::<bool>() {
            mag
        } else {
            -mag
        }
    }

    /// Draws one non-negative value that fits in `precision` bits (unsigned).
    pub fn draw_unsigned<R: RngExt>(&self, rng: &mut R, precision: Precision) -> i32 {
        if rng.random::<f64>() < self.zero_fraction {
            return 0;
        }
        let mag_bits = self.draw_bits(rng, precision.bits());
        let max_mag = (1i64 << mag_bits) - 1;
        rng.random_range(0..=max_mag) as i32
    }
}

/// Generates `count` synthetic signed weights whose layer-wide required
/// precision is exactly `precision`: a value of maximal negative magnitude is
/// planted at index 0 (two's complement reaches `-2^(P-1)` with `P` bits).
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn synthetic_weights<R: RngExt>(
    rng: &mut R,
    count: usize,
    precision: Precision,
    dist: ValueDistribution,
) -> Vec<i32> {
    assert!(count > 0, "cannot generate an empty weight tensor");
    let mut values: Vec<i32> = (0..count)
        .map(|_| dist.draw_signed(rng, precision))
        .collect();
    // Plant the extreme value so the layer needs exactly `precision` bits.
    values[0] = -(1i32 << (precision.bits() - 1));
    values
}

/// Generates `count` synthetic weights from a deterministic seed, with the
/// default weight distribution — a convenience for callers (e.g. the scaling
/// study's compressed-weight DRAM model) that need reproducible weight
/// statistics at a given storage precision without threading an RNG through.
pub fn seeded_weights(seed: u64, count: usize, precision: Precision) -> Vec<i32> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    synthetic_weights(&mut rng, count, precision, ValueDistribution::weights())
}

/// Generates `count` synthetic non-negative activations (post-ReLU) whose
/// layer-wide required precision is exactly `precision`.
///
/// # Panics
///
/// Panics if `count == 0`.
pub fn synthetic_activations<R: RngExt>(
    rng: &mut R,
    count: usize,
    precision: Precision,
    dist: ValueDistribution,
) -> Vec<i32> {
    assert!(count > 0, "cannot generate an empty activation tensor");
    let mut values: Vec<i32> = (0..count)
        .map(|_| dist.draw_unsigned(rng, precision))
        .collect();
    values[0] = (1i32 << precision.bits()) - 1;
    values
}

/// Generates synthetic signed input-image activations (the network input may be
/// signed, e.g. mean-subtracted pixels), with layer-wide precision exactly
/// `precision`.
pub fn synthetic_signed_activations<R: RngExt>(
    rng: &mut R,
    count: usize,
    precision: Precision,
    dist: ValueDistribution,
) -> Vec<i32> {
    assert!(count > 0, "cannot generate an empty activation tensor");
    let mut values: Vec<i32> = (0..count)
        .map(|_| dist.draw_signed(rng, precision))
        .collect();
    values[0] = (1i32 << (precision.bits() - 1)) - 1;
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{required_precision, required_unsigned_precision};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weights_hit_exact_precision() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in 2..=16u8 {
            let prec = Precision::new(p).unwrap();
            let w = synthetic_weights(&mut rng, 500, prec, ValueDistribution::weights());
            assert_eq!(required_precision(&w), prec, "precision {p}");
        }
    }

    #[test]
    fn activations_hit_exact_precision_and_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(11);
        for p in 1..=16u8 {
            let prec = Precision::new(p).unwrap();
            let a = synthetic_activations(&mut rng, 500, prec, ValueDistribution::activations());
            assert!(a.iter().all(|&v| v >= 0));
            assert_eq!(required_unsigned_precision(&a), prec, "precision {p}");
        }
    }

    #[test]
    fn signed_activations_hit_exact_precision() {
        let mut rng = StdRng::seed_from_u64(13);
        let prec = Precision::new(9).unwrap();
        let a = synthetic_signed_activations(&mut rng, 200, prec, ValueDistribution::activations());
        assert_eq!(required_precision(&a), prec);
    }

    #[test]
    fn distribution_produces_small_values_often() {
        let mut rng = StdRng::seed_from_u64(3);
        let prec = Precision::new(12).unwrap();
        let a = synthetic_activations(&mut rng, 4000, prec, ValueDistribution::activations());
        let small = a.iter().filter(|&&v| v < 64).count();
        // Most post-ReLU activations should be small — that is what makes
        // dynamic precision reduction worthwhile.
        assert!(
            small > a.len() / 2,
            "only {small} of {} values are small",
            a.len()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let prec = Precision::new(10).unwrap();
        let a: Vec<i32> = synthetic_weights(
            &mut StdRng::seed_from_u64(42),
            64,
            prec,
            ValueDistribution::weights(),
        );
        let b: Vec<i32> = synthetic_weights(
            &mut StdRng::seed_from_u64(42),
            64,
            prec,
            ValueDistribution::weights(),
        );
        assert_eq!(a, b);
    }
}
