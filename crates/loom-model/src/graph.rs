//! Explicit layer graphs: the DAG form of a network, with branch and concat
//! nodes, topological scheduling, and per-edge tensor buffers.
//!
//! A [`crate::network::Network`] is an ordered list of layers — enough for the
//! cycle models, which only need per-layer geometry, but not for *executing*
//! topologies that branch, like GoogLeNet's inception modules. A
//! [`LayerGraph`] generalises the chain: every node names the node(s) it reads
//! from, a [`Concat`](NodeOp::Concat) node merges parallel branches along the
//! channel dimension, and execution walks a topological schedule keeping each
//! intermediate tensor alive only while consumers remain.
//!
//! Linear networks lift into graphs with [`LayerGraph::from_network`], which
//! is how [`crate::inference::run_chain`] is implemented; branching networks
//! are assembled with [`GraphBuilder`], naming each node's inputs (the
//! reserved name [`GRAPH_INPUT`] is the graph's input tensor):
//!
//! ```
//! use loom_model::graph::GraphBuilder;
//! use loom_model::layer::ConvSpec;
//!
//! // A miniature inception-style module: two parallel convolutions over the
//! // same stem, concatenated along channels.
//! let branch3 = ConvSpec {
//!     padding: 1,
//!     ..ConvSpec::simple(4, 4, 4, 2, 3)
//! };
//! let graph = GraphBuilder::new("tiny-inception")
//!     .conv("stem", "input", ConvSpec::simple(1, 6, 6, 4, 3))
//!     .conv("b1", "stem", ConvSpec::simple(4, 4, 4, 2, 1))
//!     .conv("b3", "stem", branch3)
//!     .concat("merge", &["b1", "b3"])
//!     .build()
//!     .unwrap();
//! assert_eq!(graph.nodes().len(), 4);
//! assert_eq!(graph.concat_nodes().count(), 1);
//! ```
//!
//! Execution ([`LayerGraph::run`], [`LayerGraph::run_batch`]) produces the
//! same [`crate::inference::InferenceTrace`] the chain executor always has;
//! the quantized inter-layer pipeline (re-quantization shift, ReLU, precision
//! clamps) is identical. The inner-product arithmetic is pluggable through
//! [`GraphCompute`], which is how the functional Loom engine in `loom-sim`
//! runs whole networks through the bit-serial datapath while sharing every
//! line of the scheduling and re-quantization logic with the golden model.

use crate::fixed::Precision;
use crate::inference::{
    InferenceError, InferenceOptions, InferenceTrace, LayerTrace, NetworkParams,
};
use crate::layer::{ConvSpec, FcSpec, LayerError, LayerKind, PoolSpec};
use crate::network::Network;
use crate::quant::{apply_precision, choose_requant_shift, requantize};
use crate::reference::{conv_forward, fc_forward, max_pool_forward, relu_in_place};
use crate::tensor::{Shape3, Shape4, Tensor3, Tensor4};
use std::collections::HashMap;
use std::fmt;

/// Reserved source name referring to the graph's input tensor.
pub const GRAPH_INPUT: &str = "input";

/// Where a node reads a tensor from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The graph's input tensor.
    Input,
    /// The output of another node, by index into [`LayerGraph::nodes`].
    Node(usize),
}

/// What a graph node computes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeOp {
    /// A network layer (convolution, fully-connected, or max-pooling).
    Layer(LayerKind),
    /// Channel-wise concatenation of two or more branches with equal spatial
    /// dimensions (the merge at the end of an inception module).
    Concat,
}

/// One node of a [`LayerGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphNode {
    /// Unique node name (e.g. `inception_3a/3x3`).
    pub name: String,
    /// The operation the node performs.
    pub op: NodeOp,
    /// The tensors the node consumes, in order (concatenation order for
    /// [`NodeOp::Concat`] nodes).
    pub sources: Vec<Source>,
}

/// Error produced when assembling or scheduling a [`LayerGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two nodes share a name.
    DuplicateNode(String),
    /// A node names itself after the reserved graph input.
    ReservedName,
    /// A node reads from a name no node defines.
    UnknownSource {
        /// Node whose source did not resolve.
        node: String,
        /// The unresolved source name.
        source: String,
    },
    /// The graph contains a dependency cycle.
    Cycle,
    /// The graph has more than one sink; execution needs a unique output.
    MultipleSinks(Vec<String>),
    /// A concat node has fewer than two inputs.
    ConcatArity(String),
    /// A layer's geometry is invalid.
    InvalidLayer(LayerError),
    /// A concat node's inputs disagree on spatial dimensions.
    ConcatShape {
        /// The concat node.
        node: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateNode(n) => write!(f, "duplicate node name {n}"),
            GraphError::ReservedName => {
                write!(f, "{GRAPH_INPUT:?} is reserved for the graph input")
            }
            GraphError::UnknownSource { node, source } => {
                write!(f, "node {node} reads from unknown source {source}")
            }
            GraphError::Cycle => write!(f, "the layer graph contains a cycle"),
            GraphError::MultipleSinks(sinks) => {
                write!(f, "graph has multiple sinks ({})", sinks.join(", "))
            }
            GraphError::ConcatArity(n) => {
                write!(f, "concat node {n} needs at least two inputs")
            }
            GraphError::InvalidLayer(e) => write!(f, "{e}"),
            GraphError::ConcatShape { node } => {
                write!(
                    f,
                    "concat node {node} inputs disagree on spatial dimensions"
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<LayerError> for GraphError {
    fn from(e: LayerError) -> Self {
        GraphError::InvalidLayer(e)
    }
}

/// The inner-product arithmetic a graph execution uses for its compute
/// layers. The default is [`ReferenceCompute`] (the golden integer kernels);
/// the functional Loom engine in `loom-sim` supplies a bit-serial
/// implementation, so both paths share the scheduling, re-quantization, ReLU,
/// pooling and concatenation logic and any output difference is attributable
/// to the inner products alone.
///
/// Implementations return the layer's wide accumulators in the golden layout
/// (filter-major for convolutions, output order for fully-connected layers)
/// and may accumulate side information (the functional engine counts cycles).
pub trait GraphCompute {
    /// Computes a convolutional layer's accumulators.
    fn conv(
        &mut self,
        layer: &str,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
    ) -> Vec<i64>;
    /// Computes a fully-connected layer's accumulators.
    fn fc(&mut self, layer: &str, spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64>;

    /// Computes one convolutional layer for every batch item at once,
    /// returning one accumulator vector per item (in item order). The default
    /// simply loops [`GraphCompute::conv`]; backends that can amortise work
    /// across the batch — the functional engine packs the layer's weight
    /// planes once and fans (item × window-group) tasks over its worker pool
    /// — override it. Results must be identical to the per-item loop.
    fn conv_batch(
        &mut self,
        layer: &str,
        spec: &ConvSpec,
        inputs: &[Tensor3],
        weights: &Tensor4,
    ) -> Vec<Vec<i64>> {
        inputs
            .iter()
            .map(|input| self.conv(layer, spec, input, weights))
            .collect()
    }

    /// Computes one fully-connected layer for every batch item at once. The
    /// default loops [`GraphCompute::fc`]; the functional engine overrides it
    /// to pack each weight row once for the whole batch. Results must be
    /// identical to the per-item loop.
    fn fc_batch(
        &mut self,
        layer: &str,
        spec: &FcSpec,
        inputs: &[Vec<i32>],
        weights: &[i32],
    ) -> Vec<Vec<i64>> {
        inputs
            .iter()
            .map(|input| self.fc(layer, spec, input, weights))
            .collect()
    }
}

/// The golden integer kernels as a [`GraphCompute`] backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceCompute;

impl GraphCompute for ReferenceCompute {
    fn conv(
        &mut self,
        _layer: &str,
        spec: &ConvSpec,
        input: &Tensor3,
        weights: &Tensor4,
    ) -> Vec<i64> {
        conv_forward(spec, input, weights)
    }

    fn fc(&mut self, _layer: &str, spec: &FcSpec, input: &[i32], weights: &[i32]) -> Vec<i64> {
        fc_forward(spec, input, weights)
    }
}

/// A validated, schedulable layer DAG.
///
/// Construct with [`GraphBuilder`] or lift a linear [`Network`] with
/// [`LayerGraph::from_network`]; execute with [`LayerGraph::run`] /
/// [`LayerGraph::run_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerGraph {
    name: String,
    nodes: Vec<GraphNode>,
    /// Topological execution order (the unique sink is always last).
    schedule: Vec<usize>,
    /// Index of the output (sink) node.
    output: usize,
}

impl LayerGraph {
    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, in builder order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// The topological execution order (indices into [`LayerGraph::nodes`]).
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// The output (sink) node.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty (an empty builder produces an empty
    /// graph, which has no sink).
    pub fn output_node(&self) -> &GraphNode {
        &self.nodes[self.output]
    }

    /// Looks up a node by name.
    pub fn node(&self, name: &str) -> Option<&GraphNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// The compute (conv + FC) nodes in execution order, as
    /// `(name, layer kind)` pairs. This order defines the positional weight
    /// layout [`NetworkParams::synthetic_for_graph`] generates.
    pub fn compute_layers(&self) -> impl Iterator<Item = (&str, &LayerKind)> {
        self.schedule.iter().filter_map(move |&i| {
            let node = &self.nodes[i];
            match &node.op {
                NodeOp::Layer(kind) if kind.is_compute() => Some((node.name.as_str(), kind)),
                _ => None,
            }
        })
    }

    /// The concat nodes, in builder order.
    pub fn concat_nodes(&self) -> impl Iterator<Item = &GraphNode> {
        self.nodes.iter().filter(|n| n.op == NodeOp::Concat)
    }

    /// The input tensor shape the graph expects: the declared input shape of
    /// the first scheduled node reading the graph input. `None` when the
    /// graph is empty or its entry layer is fully-connected (which consumes a
    /// flat vector).
    pub fn input_shape(&self) -> Option<Shape3> {
        self.schedule.iter().find_map(|&i| {
            let node = &self.nodes[i];
            if !node.sources.contains(&Source::Input) {
                return None;
            }
            match &node.op {
                NodeOp::Layer(LayerKind::Conv(c)) => Some(c.input_shape()),
                NodeOp::Layer(LayerKind::MaxPool(p)) => Some(p.input_shape()),
                _ => None,
            }
        })
    }

    /// The flat input length the graph expects: the element count of
    /// [`LayerGraph::input_shape`] for convolutional entries, or the entry
    /// layer's `in_features` for fully-connected entries (which consume a
    /// flat vector and have no canonical 3-D shape). `None` for empty graphs.
    pub fn input_len(&self) -> Option<usize> {
        if let Some(shape) = self.input_shape() {
            return Some(shape.len());
        }
        self.schedule.iter().find_map(|&i| {
            let node = &self.nodes[i];
            if !node.sources.contains(&Source::Input) {
                return None;
            }
            match &node.op {
                NodeOp::Layer(LayerKind::FullyConnected(f)) => Some(f.in_features),
                _ => None,
            }
        })
    }

    /// Total multiply-accumulate operations over all layer nodes.
    pub fn total_macs(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                NodeOp::Layer(kind) => kind.macs(),
                NodeOp::Concat => 0,
            })
            .sum()
    }

    /// Lifts a linear [`Network`] into a graph: each layer reads the previous
    /// one (the first reads the graph input). Never fails — the network's
    /// layers were validated at construction, and the chain shape checks stay
    /// where they always were, at execution time.
    pub fn from_network(network: &Network) -> Self {
        let nodes: Vec<GraphNode> = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| GraphNode {
                name: layer.name.clone(),
                op: NodeOp::Layer(layer.kind),
                sources: vec![if i == 0 {
                    Source::Input
                } else {
                    Source::Node(i - 1)
                }],
            })
            .collect();
        let output = nodes.len().saturating_sub(1);
        LayerGraph {
            name: network.name().to_string(),
            schedule: (0..nodes.len()).collect(),
            nodes,
            output,
        }
    }

    /// Runs a quantized forward pass with the golden reference kernels.
    ///
    /// # Errors
    ///
    /// Returns [`InferenceError::ShapeMismatch`] if a node's input does not
    /// match its declared geometry, [`InferenceError::Empty`] for an empty
    /// graph, or [`InferenceError::Graph`] if concatenated branches disagree
    /// on spatial dimensions.
    pub fn run(
        &self,
        params: &NetworkParams,
        input: &Tensor3,
        options: InferenceOptions,
    ) -> Result<InferenceTrace, InferenceError> {
        self.run_with(params, input, options, &[], &mut ReferenceCompute)
    }

    /// Runs a forward pass over every input in `inputs`. The traces are
    /// independent — running a batch of N is bit-identical to N runs of
    /// batch 1 — but the walk is *lock-step*: each node executes for the
    /// whole batch before the schedule advances, so a batching backend sees
    /// every item's input to a layer in one [`GraphCompute::conv_batch`] /
    /// [`GraphCompute::fc_batch`] call.
    ///
    /// # Errors
    ///
    /// Propagates the first error in (schedule, item) order, as
    /// [`LayerGraph::run`] would report it for the offending item.
    pub fn run_batch(
        &self,
        params: &NetworkParams,
        inputs: &[Tensor3],
        options: InferenceOptions,
    ) -> Result<Vec<InferenceTrace>, InferenceError> {
        self.run_batch_with(params, inputs, options, &[], &mut ReferenceCompute)
    }

    /// Runs a forward pass like [`LayerGraph::run`], additionally clamping the
    /// input of the `j`-th compute node (in execution order) to
    /// `compute_precisions[j]` — the knob the precision profiler turns. The
    /// clamp is local to the consuming node: sibling branches reading the same
    /// tensor see the unclamped values.
    ///
    /// # Errors
    ///
    /// As [`LayerGraph::run`].
    pub fn run_with_precisions(
        &self,
        params: &NetworkParams,
        input: &Tensor3,
        options: InferenceOptions,
        compute_precisions: &[Precision],
    ) -> Result<InferenceTrace, InferenceError> {
        self.run_with(
            params,
            input,
            options,
            compute_precisions,
            &mut ReferenceCompute,
        )
    }

    /// Runs a forward pass with a caller-supplied [`GraphCompute`] backend.
    /// This is the single executor every path shares: topological order,
    /// per-edge buffers freed at the last consumer, per-layer re-quantization
    /// (`choose_requant_shift` on the backend's accumulators), optional ReLU,
    /// pooling and concatenation.
    ///
    /// Weights are taken positionally from `params` in compute-node execution
    /// order (the order [`LayerGraph::compute_layers`] yields).
    ///
    /// # Errors
    ///
    /// As [`LayerGraph::run`].
    ///
    /// # Panics
    ///
    /// Panics if `params` holds fewer weight sets than the graph has compute
    /// nodes, or if a fully-connected weight set has the wrong length.
    pub fn run_with(
        &self,
        params: &NetworkParams,
        input: &Tensor3,
        options: InferenceOptions,
        compute_precisions: &[Precision],
        backend: &mut dyn GraphCompute,
    ) -> Result<InferenceTrace, InferenceError> {
        Ok(self
            .run_batch_with(
                params,
                std::slice::from_ref(input),
                options,
                compute_precisions,
                backend,
            )?
            .pop()
            .expect("one trace per input"))
    }

    /// The batched form of [`LayerGraph::run_with`] — and the single executor
    /// every path is built on. The schedule is walked once, *lock-step*
    /// across the batch: each compute node receives every item's input in one
    /// [`GraphCompute::conv_batch`] / [`GraphCompute::fc_batch`] call, which
    /// is what lets a backend pack a layer's weight planes once for the whole
    /// batch and fan fine-grained (item × window-group) tasks over a worker
    /// pool. Per-item results are bit-identical to `inputs.len()` single
    /// runs.
    ///
    /// `compute_precisions` clamps the input of the `j`-th compute node (in
    /// execution order) for every item, as
    /// [`LayerGraph::run_with_precisions`] describes.
    ///
    /// # Errors
    ///
    /// The first error in (schedule, item) order, as [`LayerGraph::run`].
    ///
    /// # Panics
    ///
    /// Panics if `params` holds fewer weight sets than the graph has compute
    /// nodes, or if a fully-connected weight set has the wrong length.
    pub fn run_batch_with(
        &self,
        params: &NetworkParams,
        inputs: &[Tensor3],
        options: InferenceOptions,
        compute_precisions: &[Precision],
        backend: &mut dyn GraphCompute,
    ) -> Result<Vec<InferenceTrace>, InferenceError> {
        if self.nodes.is_empty() {
            return Err(InferenceError::Empty);
        }
        let items = inputs.len();
        if items == 0 {
            return Ok(Vec::new());
        }
        // Per-edge liveness: how many consumers each node's output still has.
        // The output node gets one extra so its buffer survives the walk.
        let mut remaining = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for source in &node.sources {
                if let Source::Node(i) = source {
                    remaining[*i] += 1;
                }
            }
        }
        remaining[self.output] += 1;

        // One buffer per (node, item); freed for all items at once when the
        // node's last consumer has run.
        let mut buffers: Vec<Option<Vec<(Vec<i32>, Shape3)>>> = vec![None; self.nodes.len()];
        let mut traces: Vec<Vec<LayerTrace>> = (0..items)
            .map(|_| Vec::with_capacity(self.nodes.len()))
            .collect();
        let mut compute_idx = 0usize;

        // Borrow one (node, item) tensor out of the live buffers — no copy;
        // the call sites that need ownership (clamping, traces) copy once.
        fn bind<'a>(
            inputs: &'a [Tensor3],
            buffers: &'a [Option<Vec<(Vec<i32>, Shape3)>>],
            source: &Source,
            item: usize,
        ) -> (&'a [i32], Shape3) {
            match source {
                Source::Input => (inputs[item].as_slice(), inputs[item].shape()),
                Source::Node(i) => {
                    let per_item = buffers[*i]
                        .as_ref()
                        .expect("schedule orders every source before its consumers");
                    (per_item[item].0.as_slice(), per_item[item].1)
                }
            }
        }

        for &idx in &self.schedule {
            let node = &self.nodes[idx];
            match &node.op {
                NodeOp::Layer(LayerKind::Conv(spec)) => {
                    spec.validate()?;
                    let weights = &params.layers()[compute_idx];
                    let clamp = compute_precisions.get(compute_idx).copied();
                    compute_idx += 1;
                    let w_shape = spec.weight_shape();
                    let w_tensor = Tensor4::from_vec(
                        Shape4::new(w_shape.k, w_shape.c, w_shape.h, w_shape.w),
                        weights.values.clone(),
                    )
                    .map_err(|_| InferenceError::ShapeMismatch {
                        layer: node.name.clone(),
                        produced: weights.values.len(),
                        expected: w_shape.len(),
                    })?;
                    let expected = spec.input_shape().len();
                    let mut item_values = Vec::with_capacity(items);
                    let mut item_tensors = Vec::with_capacity(items);
                    for item in 0..items {
                        let (bound, _) = bind(inputs, &buffers, &node.sources[0], item);
                        let mut values = bound.to_vec();
                        if let Some(p) = clamp {
                            values = apply_precision(&values, p);
                        }
                        if values.len() != expected {
                            return Err(InferenceError::ShapeMismatch {
                                layer: node.name.clone(),
                                produced: values.len(),
                                expected,
                            });
                        }
                        item_tensors.push(
                            Tensor3::from_vec(spec.input_shape(), values.clone())
                                .expect("length checked above"),
                        );
                        item_values.push(values);
                    }
                    let accs = backend.conv_batch(&node.name, spec, &item_tensors, &w_tensor);
                    let mut outs = Vec::with_capacity(items);
                    for (item, acc) in accs.into_iter().enumerate() {
                        let shift = choose_requant_shift(&acc, options.activation_precision);
                        let mut out = requantize(&acc, shift, options.activation_precision);
                        if options.relu {
                            relu_in_place(&mut out);
                        }
                        traces[item].push(LayerTrace {
                            layer_name: node.name.clone(),
                            inputs: std::mem::take(&mut item_values[item]),
                            accumulators: acc,
                            outputs: out.clone(),
                            requant_shift: shift,
                        });
                        outs.push((out, spec.output_shape()));
                    }
                    buffers[idx] = Some(outs);
                }
                NodeOp::Layer(LayerKind::FullyConnected(spec)) => {
                    spec.validate()?;
                    let weights = &params.layers()[compute_idx];
                    let clamp = compute_precisions.get(compute_idx).copied();
                    compute_idx += 1;
                    let mut item_values = Vec::with_capacity(items);
                    for item in 0..items {
                        let (bound, _) = bind(inputs, &buffers, &node.sources[0], item);
                        let mut values = bound.to_vec();
                        if let Some(p) = clamp {
                            values = apply_precision(&values, p);
                        }
                        if values.len() != spec.in_features {
                            return Err(InferenceError::ShapeMismatch {
                                layer: node.name.clone(),
                                produced: values.len(),
                                expected: spec.in_features,
                            });
                        }
                        item_values.push(values);
                    }
                    let accs = backend.fc_batch(&node.name, spec, &item_values, &weights.values);
                    let mut outs = Vec::with_capacity(items);
                    for (item, acc) in accs.into_iter().enumerate() {
                        let shift = choose_requant_shift(&acc, options.activation_precision);
                        let mut out = requantize(&acc, shift, options.activation_precision);
                        if options.relu {
                            relu_in_place(&mut out);
                        }
                        traces[item].push(LayerTrace {
                            layer_name: node.name.clone(),
                            inputs: std::mem::take(&mut item_values[item]),
                            accumulators: acc,
                            outputs: out.clone(),
                            requant_shift: shift,
                        });
                        outs.push((out, Shape3::new(spec.out_features, 1, 1)));
                    }
                    buffers[idx] = Some(outs);
                }
                NodeOp::Layer(LayerKind::MaxPool(spec)) => {
                    let expected = spec.input_shape().len();
                    let mut outs = Vec::with_capacity(items);
                    for item in 0..items {
                        let (bound, _) = bind(inputs, &buffers, &node.sources[0], item);
                        let values = bound.to_vec();
                        if values.len() != expected {
                            return Err(InferenceError::ShapeMismatch {
                                layer: node.name.clone(),
                                produced: values.len(),
                                expected,
                            });
                        }
                        let in_tensor = Tensor3::from_vec(spec.input_shape(), values.clone())
                            .expect("length checked above");
                        let out = max_pool_forward(spec, &in_tensor).into_vec();
                        traces[item].push(LayerTrace {
                            layer_name: node.name.clone(),
                            inputs: values,
                            accumulators: Vec::new(),
                            outputs: out.clone(),
                            requant_shift: 0,
                        });
                        outs.push((out, spec.output_shape()));
                    }
                    buffers[idx] = Some(outs);
                }
                NodeOp::Concat => {
                    let mut outs = Vec::with_capacity(items);
                    for item in 0..items {
                        let bound: Vec<(&[i32], Shape3)> = node
                            .sources
                            .iter()
                            .map(|s| bind(inputs, &buffers, s, item))
                            .collect();
                        let (h, w) = (bound[0].1.h, bound[0].1.w);
                        if bound.iter().any(|(_, s)| s.h != h || s.w != w) {
                            return Err(InferenceError::Graph(GraphError::ConcatShape {
                                node: node.name.clone(),
                            }));
                        }
                        let channels = bound.iter().map(|(_, s)| s.c).sum();
                        let mut out = Vec::with_capacity(bound.iter().map(|(v, _)| v.len()).sum());
                        for (values, _) in &bound {
                            out.extend_from_slice(values);
                        }
                        // Concat moves no values through the datapath; its
                        // trace records the merged tensor as outputs and
                        // leaves inputs empty rather than duplicating every
                        // branch.
                        traces[item].push(LayerTrace {
                            layer_name: node.name.clone(),
                            inputs: Vec::new(),
                            accumulators: Vec::new(),
                            outputs: out.clone(),
                            requant_shift: 0,
                        });
                        outs.push((out, Shape3::new(channels, h, w)));
                    }
                    buffers[idx] = Some(outs);
                }
            }

            // Release source buffers whose last consumer just ran.
            for source in &self.nodes[idx].sources {
                if let Source::Node(i) = source {
                    remaining[*i] -= 1;
                    if remaining[*i] == 0 {
                        buffers[*i] = None;
                    }
                }
            }
        }
        Ok(traces
            .into_iter()
            .map(|layers| InferenceTrace { layers })
            .collect())
    }
}

impl fmt::Display for LayerGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {:.2} GMACs)",
            self.name,
            self.nodes.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

/// Incrementally assembles a [`LayerGraph`], naming every node's sources.
///
/// See the [module documentation](self) for a complete example.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    name: String,
    nodes: Vec<(String, NodeOp, Vec<String>)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    fn push(mut self, name: impl Into<String>, op: NodeOp, sources: Vec<String>) -> Self {
        self.nodes.push((name.into(), op, sources));
        self
    }

    /// Adds a convolutional node reading from `source`.
    pub fn conv(self, name: impl Into<String>, source: &str, spec: ConvSpec) -> Self {
        self.push(
            name,
            NodeOp::Layer(LayerKind::Conv(spec)),
            vec![source.into()],
        )
    }

    /// Adds a fully-connected node reading from `source` (the source tensor
    /// is consumed flattened).
    pub fn fully_connected(self, name: impl Into<String>, source: &str, spec: FcSpec) -> Self {
        self.push(
            name,
            NodeOp::Layer(LayerKind::FullyConnected(spec)),
            vec![source.into()],
        )
    }

    /// Adds a max-pooling node reading from `source`.
    pub fn max_pool(self, name: impl Into<String>, source: &str, spec: PoolSpec) -> Self {
        self.push(
            name,
            NodeOp::Layer(LayerKind::MaxPool(spec)),
            vec![source.into()],
        )
    }

    /// Adds a channel-wise concatenation of two or more named branches.
    pub fn concat(self, name: impl Into<String>, sources: &[&str]) -> Self {
        self.push(
            name,
            NodeOp::Concat,
            sources.iter().map(|s| s.to_string()).collect(),
        )
    }

    /// Resolves names, validates layer geometry, checks for cycles, and
    /// computes the topological schedule. The graph must have exactly one
    /// sink (a node nothing reads from), which becomes the output.
    ///
    /// An empty builder produces an empty graph, which [`LayerGraph::run`]
    /// rejects with [`InferenceError::Empty`] — matching the chain executor.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] for duplicate or reserved node names,
    /// unresolved sources, concat nodes with fewer than two inputs, invalid
    /// layer geometry, dependency cycles, or multiple sinks.
    pub fn build(self) -> Result<LayerGraph, GraphError> {
        let mut index: HashMap<&str, usize> = HashMap::with_capacity(self.nodes.len());
        for (i, (name, _, _)) in self.nodes.iter().enumerate() {
            if name == GRAPH_INPUT {
                return Err(GraphError::ReservedName);
            }
            if index.insert(name.as_str(), i).is_some() {
                return Err(GraphError::DuplicateNode(name.clone()));
            }
        }

        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (name, op, sources) in &self.nodes {
            match op {
                NodeOp::Layer(LayerKind::Conv(spec)) => spec.validate()?,
                NodeOp::Layer(LayerKind::FullyConnected(spec)) => spec.validate()?,
                NodeOp::Layer(LayerKind::MaxPool(spec)) => spec.validate()?,
                NodeOp::Concat => {
                    if sources.len() < 2 {
                        return Err(GraphError::ConcatArity(name.clone()));
                    }
                }
            }
            let sources = sources
                .iter()
                .map(|s| {
                    if s == GRAPH_INPUT {
                        Ok(Source::Input)
                    } else {
                        index
                            .get(s.as_str())
                            .map(|&i| Source::Node(i))
                            .ok_or_else(|| GraphError::UnknownSource {
                                node: name.clone(),
                                source: s.clone(),
                            })
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            nodes.push(GraphNode {
                name: name.clone(),
                op: op.clone(),
                sources,
            });
        }

        if nodes.is_empty() {
            return Ok(LayerGraph {
                name: self.name,
                nodes,
                schedule: Vec::new(),
                output: 0,
            });
        }

        // Kahn's algorithm with lowest-index tie-breaking: deterministic, and
        // a builder listed in dependency order schedules in builder order.
        let mut indegree = vec![0usize; nodes.len()];
        let mut consumers = vec![0usize; nodes.len()];
        for node in &nodes {
            for source in &node.sources {
                if let Source::Node(i) = source {
                    consumers[*i] += 1;
                }
            }
        }
        for (i, node) in nodes.iter().enumerate() {
            indegree[i] = node
                .sources
                .iter()
                .filter(|s| matches!(s, Source::Node(_)))
                .count();
        }
        let mut schedule = Vec::with_capacity(nodes.len());
        let mut ready: Vec<bool> = indegree.iter().map(|&d| d == 0).collect();
        while schedule.len() < nodes.len() {
            let Some(next) = ready.iter().position(|&r| r) else {
                return Err(GraphError::Cycle);
            };
            ready[next] = false;
            schedule.push(next);
            for (i, node) in nodes.iter().enumerate() {
                for source in &node.sources {
                    if *source == Source::Node(next) {
                        indegree[i] -= 1;
                        if indegree[i] == 0 {
                            ready[i] = true;
                        }
                    }
                }
            }
        }

        let sinks: Vec<usize> = (0..nodes.len()).filter(|&i| consumers[i] == 0).collect();
        let output = match sinks.as_slice() {
            [single] => *single,
            // No sink with nodes present means every node is consumed — a
            // cycle, caught above; multiple sinks are ambiguous.
            _ => {
                return Err(GraphError::MultipleSinks(
                    sinks.iter().map(|&i| nodes[i].name.clone()).collect(),
                ))
            }
        };

        Ok(LayerGraph {
            name: self.name,
            nodes,
            schedule,
            output,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{ConvSpec, FcSpec, PoolSpec};
    use crate::network::NetworkBuilder;
    use crate::synthetic::{synthetic_activations, ValueDistribution};
    use crate::tensor::Shape3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn branching() -> LayerGraph {
        // stem 2x6x6 -> 4x4x4, then a 1x1 and a padded 3x3 branch, merged.
        let b3 = ConvSpec {
            padding: 1,
            ..ConvSpec::simple(4, 4, 4, 3, 3)
        };
        GraphBuilder::new("fork")
            .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 6, 6, 4, 3))
            .conv("b1", "stem", ConvSpec::simple(4, 4, 4, 2, 1))
            .conv("b3", "stem", b3)
            .max_pool("bp", "stem", PoolSpec::new(4, 4, 4, 3, 1).with_padding(1))
            .concat("merge", &["b1", "b3", "bp"])
            .fully_connected("fc", "merge", FcSpec::new((2 + 3 + 4) * 16, 5))
            .build()
            .unwrap()
    }

    fn input(seed: u64) -> Tensor3 {
        let mut rng = StdRng::seed_from_u64(seed);
        let values = synthetic_activations(
            &mut rng,
            2 * 6 * 6,
            Precision::new(7).unwrap(),
            ValueDistribution::activations(),
        );
        Tensor3::from_vec(Shape3::new(2, 6, 6), values).unwrap()
    }

    #[test]
    fn branching_graph_runs_and_concat_merges_channels() {
        let graph = branching();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 11);
        let trace = graph
            .run(&params, &input(3), InferenceOptions::default())
            .unwrap();
        assert_eq!(trace.layers.len(), 6);
        let merge = trace.for_layer("merge").unwrap();
        assert_eq!(merge.outputs.len(), (2 + 3 + 4) * 16);
        // Concatenation preserves branch order: the first 2*16 values are b1's.
        let b1 = trace.for_layer("b1").unwrap();
        assert_eq!(&merge.outputs[..b1.outputs.len()], b1.outputs.as_slice());
        assert_eq!(trace.final_outputs().len(), 5);
    }

    #[test]
    fn graph_execution_is_deterministic() {
        let graph = branching();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 11);
        let a = graph
            .run(&params, &input(3), InferenceOptions::default())
            .unwrap();
        let b = graph
            .run(&params, &input(3), InferenceOptions::default())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_network_matches_chain_semantics() {
        let net = NetworkBuilder::new("chain")
            .conv("c1", ConvSpec::simple(2, 8, 8, 4, 3))
            .max_pool("p1", PoolSpec::new(4, 6, 6, 2, 2))
            .fully_connected("f1", FcSpec::new(4 * 3 * 3, 7))
            .build()
            .unwrap();
        let graph = LayerGraph::from_network(&net);
        assert_eq!(graph.schedule(), &[0, 1, 2]);
        assert_eq!(graph.output_node().name, "f1");
        assert_eq!(graph.compute_layers().count(), 2);
        assert_eq!(graph.total_macs(), net.total_macs());
    }

    #[test]
    fn builder_rejects_structural_errors() {
        let spec = ConvSpec::simple(1, 4, 4, 1, 1);
        // Duplicate name.
        let err = GraphBuilder::new("g")
            .conv("a", GRAPH_INPUT, spec)
            .conv("a", GRAPH_INPUT, spec)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::DuplicateNode("a".into()));
        // Unknown source.
        let err = GraphBuilder::new("g")
            .conv("a", "nope", spec)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::UnknownSource { .. }));
        // Reserved name.
        let err = GraphBuilder::new("g")
            .conv(GRAPH_INPUT, GRAPH_INPUT, spec)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::ReservedName);
        // Cycle.
        let err = GraphBuilder::new("g")
            .conv("a", "b", spec)
            .conv("b", "a", spec)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::Cycle);
        // Two sinks.
        let err = GraphBuilder::new("g")
            .conv("a", GRAPH_INPUT, spec)
            .conv("b", GRAPH_INPUT, spec)
            .build()
            .unwrap_err();
        assert!(matches!(err, GraphError::MultipleSinks(_)));
        // Single-input concat.
        let err = GraphBuilder::new("g")
            .conv("a", GRAPH_INPUT, spec)
            .concat("c", &["a"])
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::ConcatArity("c".into()));
        // Every error Display is non-empty.
        for e in [
            GraphError::Cycle,
            GraphError::ReservedName,
            GraphError::DuplicateNode("x".into()),
            GraphError::ConcatShape { node: "x".into() },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn concat_shape_mismatch_is_reported_at_execution() {
        // 1x1 branch keeps 4x4; unpadded 3x3 branch shrinks to 2x2.
        let graph = GraphBuilder::new("bad")
            .conv("stem", GRAPH_INPUT, ConvSpec::simple(2, 6, 6, 4, 3))
            .conv("b1", "stem", ConvSpec::simple(4, 4, 4, 2, 1))
            .conv("b3", "stem", ConvSpec::simple(4, 4, 4, 2, 3))
            .concat("merge", &["b1", "b3"])
            .build()
            .unwrap();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 1);
        let err = graph
            .run(&params, &input(3), InferenceOptions::default())
            .unwrap_err();
        assert!(matches!(
            err,
            InferenceError::Graph(GraphError::ConcatShape { .. })
        ));
    }

    #[test]
    fn buffers_are_freed_after_the_last_consumer() {
        // Structural proxy: executing a long chain must not error even though
        // every intermediate buffer is dropped as soon as its consumer ran.
        let net = NetworkBuilder::new("chain")
            .conv("c1", ConvSpec::simple(1, 8, 8, 2, 3))
            .conv("c2", ConvSpec::simple(2, 6, 6, 2, 3))
            .conv("c3", ConvSpec::simple(2, 4, 4, 2, 3))
            .build()
            .unwrap();
        let graph = LayerGraph::from_network(&net);
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(5).unwrap()], 2);
        let mut rng = StdRng::seed_from_u64(9);
        let values = synthetic_activations(
            &mut rng,
            64,
            Precision::new(7).unwrap(),
            ValueDistribution::activations(),
        );
        let input = Tensor3::from_vec(Shape3::new(1, 8, 8), values).unwrap();
        let trace = graph
            .run(&params, &input, InferenceOptions::default())
            .unwrap();
        assert_eq!(trace.layers.len(), 3);
    }

    #[test]
    fn batch_is_elementwise_runs() {
        let graph = branching();
        let params = NetworkParams::synthetic_for_graph(&graph, &[Precision::new(6).unwrap()], 11);
        let inputs = [input(1), input(2), input(3)];
        let batch = graph
            .run_batch(&params, &inputs, InferenceOptions::default())
            .unwrap();
        assert_eq!(batch.len(), 3);
        for (i, one) in inputs.iter().enumerate() {
            let single = graph
                .run(&params, one, InferenceOptions::default())
                .unwrap();
            assert_eq!(batch[i], single);
        }
    }

    #[test]
    fn display_mentions_name_and_nodes() {
        let g = branching();
        let s = g.to_string();
        assert!(s.contains("fork") && s.contains("6 nodes"));
    }

    #[test]
    fn input_shape_reads_the_entry_node() {
        assert_eq!(branching().input_shape(), Some(Shape3::new(2, 6, 6)));
        let fc_first = GraphBuilder::new("flat")
            .fully_connected("fc", GRAPH_INPUT, FcSpec::new(8, 2))
            .build()
            .unwrap();
        assert_eq!(fc_first.input_shape(), None);
    }

    #[test]
    fn input_len_covers_both_entry_kinds() {
        assert_eq!(branching().input_len(), Some(2 * 6 * 6));
        let fc_first = GraphBuilder::new("flat")
            .fully_connected("fc", GRAPH_INPUT, FcSpec::new(8, 2))
            .build()
            .unwrap();
        assert_eq!(fc_first.input_len(), Some(8));
    }
}
