//! Calibration constants of the analytical energy / power / area model.
//!
//! The paper obtains its energy and area numbers from synthesised layouts
//! (Synopsys DC + Cadence Innovus, TSMC 65 nm), CACTI (SRAM buffers) and
//! Destiny (eDRAM). Those tools and libraries are not available here, so this
//! module substitutes an analytical model whose constants are calibrated to the
//! paper's published *relative* results — the post-layout area ratios of §4.4
//! (LM1b 1.34×, LM2b 1.25×, LM4b 1.16× of DPNN) and the efficiency-to-speedup
//! ratios implied by Table 2. All downstream results are computed from activity
//! counts produced by the cycle simulators; only these constants are fitted.
//! See `DESIGN.md` §2 for the substitution rationale.

/// Nominal clock frequency of every design (§4.1): 1 GHz.
pub const CLOCK_HZ: f64 = 1.0e9;

// ------------------------------------------------------------------- area ---

/// Core (datapath + pipeline registers) area of the 128-MAC DPNN tile, mm².
pub const DPNN_CORE_AREA_MM2: f64 = 0.77;

/// Area of the shared front end (ABin/ABout SRAM buffers, dispatch, control)
/// present in every accelerator, mm².
pub const FRONTEND_AREA_MM2: f64 = 0.90;

/// Extra front-end area Loom needs (transposer, per-column dispatchers,
/// precision detectors), mm².
pub const LOOM_FRONTEND_EXTRA_MM2: f64 = 0.10;

/// Area of one 1-bit-per-cycle SIP (16 WRs, 16 AND gates, 16-input 1-bit adder
/// tree, two shift-accumulators, cascade mux, max comparator), mm².
pub const SIP_AREA_MM2: f64 = 0.000603;

/// Relative per-SIP area of the multi-bit variants (a SIP that consumes `b`
/// activation bits per cycle needs `b` adder trees and wider accumulators).
/// Index by `b.trailing_zeros()`: `[1b, 2b, 4b]`. Calibrated so the §4.4 area
/// ratios (1.34×, 1.25×, 1.16×) are reproduced at the 128 configuration.
pub const SIP_VARIANT_AREA_FACTOR: [f64; 3] = [1.0, 1.76, 3.03];

/// eDRAM area per megabyte, mm² (Destiny-style density at 65 nm).
pub const EDRAM_AREA_MM2_PER_MB: f64 = 1.10;

// ----------------------------------------------------------------- power ----

/// Average switching power of the 128-MAC DPNN datapath at full activity, mW.
pub const DPNN_COMPUTE_POWER_MW: f64 = 310.0;

/// Power of the shared front end (buffers, dispatch, control), mW.
pub const FRONTEND_POWER_MW: f64 = 45.0;

/// Loom datapath power relative to the DPNN datapath for the `[1b, 2b, 4b]`
/// variants: the 1-bit design toggles 2048 SIPs plus the dynamic-precision
/// detectors every cycle and draws more power than the bit-parallel datapath;
/// the wider variants amortise registers over fewer SIPs.
pub const LOOM_COMPUTE_POWER_FACTOR: [f64; 3] = [1.30, 1.09, 0.95];

/// Stripes datapath power relative to DPNN (bit-serial activations only).
pub const STRIPES_COMPUTE_POWER_FACTOR: f64 = 1.17;

// ---------------------------------------------------------------- energy ----

/// Energy per bit read from or written to the on-chip eDRAM (AM / WM), pJ.
pub const EDRAM_ENERGY_PJ_PER_BIT: f64 = 0.9;

/// Energy per bit moved through the ABin/ABout SRAM buffers, pJ.
pub const SRAM_ENERGY_PJ_PER_BIT: f64 = 0.12;

/// Energy per bit transferred over the off-chip LPDDR4 interface, pJ ("today
/// [off-chip accesses] require at least two orders of magnitude more energy",
/// §4.5).
pub const DRAM_ENERGY_PJ_PER_BIT: f64 = 15.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offchip_energy_dominates_onchip_by_orders_of_magnitude() {
        assert!(DRAM_ENERGY_PJ_PER_BIT / SRAM_ENERGY_PJ_PER_BIT > 100.0);
        assert!(DRAM_ENERGY_PJ_PER_BIT / EDRAM_ENERGY_PJ_PER_BIT > 10.0);
    }

    #[test]
    fn variant_factors_are_monotone() {
        assert!(SIP_VARIANT_AREA_FACTOR[0] < SIP_VARIANT_AREA_FACTOR[1]);
        assert!(SIP_VARIANT_AREA_FACTOR[1] < SIP_VARIANT_AREA_FACTOR[2]);
        assert!(LOOM_COMPUTE_POWER_FACTOR[0] > LOOM_COMPUTE_POWER_FACTOR[1]);
        assert!(LOOM_COMPUTE_POWER_FACTOR[1] > LOOM_COMPUTE_POWER_FACTOR[2]);
    }
}
