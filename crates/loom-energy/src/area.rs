//! Area model (§4.4 and the area row of Figure 5).

use crate::constants::*;
use loom_sim::config::{EquivalentConfig, LoomVariant};
use loom_sim::engine::AcceleratorKind;

/// Area breakdown of one accelerator instance, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Datapath (MAC array or SIP grid).
    pub datapath_mm2: f64,
    /// Front end: ABin/ABout buffers, dispatch, control, transposer.
    pub frontend_mm2: f64,
    /// On-chip eDRAM memories (activation + weight memory).
    pub memory_mm2: f64,
}

impl AreaBreakdown {
    /// Core area: datapath plus front end (what §4.4's post-layout comparison
    /// covers).
    pub fn core_mm2(&self) -> f64 {
        self.datapath_mm2 + self.frontend_mm2
    }

    /// Total area including the eDRAM memories (Figure 5's area accounting).
    pub fn total_mm2(&self) -> f64 {
        self.core_mm2() + self.memory_mm2
    }
}

/// Computes the area of an accelerator at a design point with the given
/// activation-memory and weight-memory capacities (bytes).
pub fn area(
    kind: AcceleratorKind,
    config: EquivalentConfig,
    am_bytes: u64,
    wm_bytes: u64,
) -> AreaBreakdown {
    let scale = config.macs_per_cycle() as f64 / 128.0;
    let memory_mm2 = (am_bytes + wm_bytes) as f64 / (1024.0 * 1024.0) * EDRAM_AREA_MM2_PER_MB;
    match kind {
        AcceleratorKind::Dpnn | AcceleratorKind::Stripes | AcceleratorKind::DStripes => {
            // Stripes replaces multipliers with serial units of comparable
            // area; the paper treats its area as close to the baseline's.
            AreaBreakdown {
                datapath_mm2: DPNN_CORE_AREA_MM2 * scale,
                frontend_mm2: FRONTEND_AREA_MM2,
                memory_mm2,
            }
        }
        AcceleratorKind::Loom(variant) => {
            let geometry = config.loom(variant);
            let factor = SIP_VARIANT_AREA_FACTOR[variant_index(variant)];
            AreaBreakdown {
                datapath_mm2: geometry.total_sips() as f64 * SIP_AREA_MM2 * factor,
                frontend_mm2: FRONTEND_AREA_MM2 + LOOM_FRONTEND_EXTRA_MM2,
                memory_mm2,
            }
        }
    }
}

/// Core-area ratio of a Loom variant over DPNN at the given design point — the
/// quantity §4.4 reports (1.34×, 1.25×, 1.16× at the 128 configuration).
pub fn core_area_ratio(variant: LoomVariant, config: EquivalentConfig) -> f64 {
    let lm = area(AcceleratorKind::Loom(variant), config, 0, 0);
    let dpnn = area(AcceleratorKind::Dpnn, config, 0, 0);
    lm.core_mm2() / dpnn.core_mm2()
}

pub(crate) fn variant_index(variant: LoomVariant) -> usize {
    match variant {
        LoomVariant::Lm1b => 0,
        LoomVariant::Lm2b => 1,
        LoomVariant::Lm4b => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_ratios_match_section_4_4() {
        let cfg = EquivalentConfig::BASELINE_128;
        let r1 = core_area_ratio(LoomVariant::Lm1b, cfg);
        let r2 = core_area_ratio(LoomVariant::Lm2b, cfg);
        let r4 = core_area_ratio(LoomVariant::Lm4b, cfg);
        assert!((1.30..=1.38).contains(&r1), "LM1b ratio {r1}");
        assert!((1.21..=1.29).contains(&r2), "LM2b ratio {r2}");
        assert!((1.12..=1.20).contains(&r4), "LM4b ratio {r4}");
        assert!(r1 > r2 && r2 > r4);
    }

    #[test]
    fn memory_area_scales_with_capacity() {
        let cfg = EquivalentConfig::BASELINE_128;
        let small = area(AcceleratorKind::Dpnn, cfg, 1 << 20, 1 << 20);
        let large = area(AcceleratorKind::Dpnn, cfg, 2 << 20, 2 << 20);
        assert!(large.memory_mm2 > small.memory_mm2);
        assert_eq!(large.core_mm2(), small.core_mm2());
        assert!(large.total_mm2() > large.core_mm2());
    }

    #[test]
    fn larger_configs_have_larger_datapaths() {
        let small = area(
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            EquivalentConfig::new(32).unwrap(),
            0,
            0,
        );
        let large = area(
            AcceleratorKind::Loom(LoomVariant::Lm1b),
            EquivalentConfig::new(512).unwrap(),
            0,
            0,
        );
        assert!(large.datapath_mm2 > 10.0 * small.datapath_mm2);
    }

    #[test]
    fn stripes_area_tracks_baseline() {
        let cfg = EquivalentConfig::BASELINE_128;
        let s = area(AcceleratorKind::Stripes, cfg, 0, 0);
        let d = area(AcceleratorKind::Dpnn, cfg, 0, 0);
        assert_eq!(s.core_mm2(), d.core_mm2());
    }
}
