//! Energy model: activity-driven energy of a simulated network execution.
//!
//! The energy of one layer has three parts:
//!
//! 1. **datapath + front end** — the engine's switching power integrated over
//!    the layer's compute cycles (power is data-activity driven in the paper;
//!    here the per-engine average activity is folded into the calibrated power
//!    constants),
//! 2. **on-chip memory** — every bit read from / written to the eDRAM AM/WM
//!    and moved through the ABin/ABout buffers, and
//! 3. **off-chip memory** — every bit that crosses the LPDDR4 interface.
//!
//! Because Loom stores data packed at the profile precisions, parts 2 and 3
//! shrink with precision in addition to part 1 shrinking with cycle count.

use crate::area::variant_index;
use crate::constants::*;
use loom_sim::counts::NetworkSim;
use loom_sim::engine::AcceleratorKind;
use loom_sim::EquivalentConfig;

/// Energy breakdown of a network execution, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Datapath plus front-end energy.
    pub compute_nj: f64,
    /// On-chip memory (eDRAM + SRAM buffer) energy.
    pub onchip_memory_nj: f64,
    /// Off-chip DRAM transfer energy.
    pub offchip_memory_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.compute_nj + self.onchip_memory_nj + self.offchip_memory_nj
    }
}

/// The energy model for one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    config: EquivalentConfig,
}

impl EnergyModel {
    /// Creates a model for the given design point.
    pub fn new(config: EquivalentConfig) -> Self {
        EnergyModel { config }
    }

    /// The paper's headline 128-MAC configuration.
    pub fn baseline_128() -> Self {
        EnergyModel {
            config: EquivalentConfig::BASELINE_128,
        }
    }

    /// Average power (mW) the engine draws while computing.
    pub fn engine_power_mw(&self, kind: AcceleratorKind) -> f64 {
        let scale = self.config.macs_per_cycle() as f64 / 128.0;
        let datapath = match kind {
            AcceleratorKind::Dpnn => DPNN_COMPUTE_POWER_MW,
            AcceleratorKind::Stripes | AcceleratorKind::DStripes => {
                DPNN_COMPUTE_POWER_MW * STRIPES_COMPUTE_POWER_FACTOR
            }
            AcceleratorKind::Loom(v) => {
                DPNN_COMPUTE_POWER_MW * LOOM_COMPUTE_POWER_FACTOR[variant_index(v)]
            }
        };
        datapath * scale + FRONTEND_POWER_MW
    }

    /// Energy of a simulated network execution. `offchip_bits` is the number of
    /// bits that crossed the off-chip interface (from the memory hierarchy
    /// model); pass the total weight traffic if no explicit hierarchy is being
    /// modelled (the §4.3 setting where weights stream from off chip).
    pub fn network_energy(
        &self,
        kind: AcceleratorKind,
        sim: &NetworkSim,
        offchip_bits: u64,
    ) -> EnergyBreakdown {
        let cycles = sim.total_cycles() as f64;
        // mW × cycles at 1 GHz = mW × ns = pJ; convert to nJ.
        let compute_nj = self.engine_power_mw(kind) * cycles / 1000.0;
        let traffic = sim.total_traffic();
        let onchip_bits = traffic.total_bits() as f64;
        let onchip_memory_nj =
            onchip_bits * (EDRAM_ENERGY_PJ_PER_BIT + SRAM_ENERGY_PJ_PER_BIT) / 1000.0;
        let offchip_memory_nj = offchip_bits as f64 * DRAM_ENERGY_PJ_PER_BIT / 1000.0;
        EnergyBreakdown {
            compute_nj,
            onchip_memory_nj,
            offchip_memory_nj,
        }
    }

    /// Energy efficiency of `candidate` relative to `baseline` (total baseline
    /// energy divided by total candidate energy, > 1 means the candidate is
    /// more efficient).
    pub fn efficiency(
        &self,
        baseline_kind: AcceleratorKind,
        baseline: &NetworkSim,
        baseline_offchip_bits: u64,
        candidate_kind: AcceleratorKind,
        candidate: &NetworkSim,
        candidate_offchip_bits: u64,
    ) -> f64 {
        let b = self
            .network_energy(baseline_kind, baseline, baseline_offchip_bits)
            .total_nj();
        let c = self
            .network_energy(candidate_kind, candidate, candidate_offchip_bits)
            .total_nj();
        if c == 0.0 {
            f64::INFINITY
        } else {
            b / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::zoo;
    use loom_precision::{table1, AccuracyTarget};
    use loom_sim::engine::{assignment_from_profile, Simulator};
    use loom_sim::LoomVariant;

    fn simulate(kind: AcceleratorKind) -> NetworkSim {
        let net = zoo::alexnet();
        let profile = table1::profile("AlexNet", AccuracyTarget::Lossless).unwrap();
        let fraction = loom_precision::trace::dynamic_activation_fraction("AlexNet");
        let assignment = assignment_from_profile(&net, &profile, Some(fraction), None);
        Simulator::baseline_128().simulate(kind, &net, &assignment)
    }

    #[test]
    fn loom_power_is_higher_but_energy_is_lower() {
        let model = EnergyModel::baseline_128();
        let dpnn_sim = simulate(AcceleratorKind::Dpnn);
        let lm_sim = simulate(AcceleratorKind::Loom(LoomVariant::Lm1b));
        // The 1-bit Loom draws more power than the baseline...
        assert!(
            model.engine_power_mw(AcceleratorKind::Loom(LoomVariant::Lm1b))
                > model.engine_power_mw(AcceleratorKind::Dpnn)
        );
        // ...but finishes so much earlier that it uses less energy.
        let dpnn_e = model
            .network_energy(
                AcceleratorKind::Dpnn,
                &dpnn_sim,
                dpnn_sim.total_traffic().weight_bits,
            )
            .total_nj();
        let lm_e = model
            .network_energy(
                AcceleratorKind::Loom(LoomVariant::Lm1b),
                &lm_sim,
                lm_sim.total_traffic().weight_bits,
            )
            .total_nj();
        assert!(lm_e < dpnn_e);
    }

    #[test]
    fn efficiency_to_speedup_ratio_follows_table2_pattern() {
        // Table 2 pattern (off-chip energy excluded, as in the paper's §4.3
        // setting): LM1b trades some efficiency for speed (eff/perf well below
        // 1) while LM4b's ratio is distinctly higher, approaching or exceeding
        // parity.
        let model = EnergyModel::baseline_128();
        let dpnn_sim = simulate(AcceleratorKind::Dpnn);
        let mut ratios = Vec::new();
        for variant in [LoomVariant::Lm1b, LoomVariant::Lm4b] {
            let kind = AcceleratorKind::Loom(variant);
            let lm_sim = simulate(kind);
            let speedup = lm_sim.speedup_vs(&dpnn_sim);
            let eff = model.efficiency(AcceleratorKind::Dpnn, &dpnn_sim, 0, kind, &lm_sim, 0);
            ratios.push(eff / speedup);
        }
        assert!(
            (0.6..1.0).contains(&ratios[0]),
            "LM1b eff/perf {}",
            ratios[0]
        );
        assert!(
            ratios[1] > ratios[0] + 0.05,
            "LM4b {} vs LM1b {}",
            ratios[1],
            ratios[0]
        );
    }

    #[test]
    fn power_scales_with_configuration_size() {
        let small = EnergyModel::new(EquivalentConfig::new(32).unwrap());
        let large = EnergyModel::new(EquivalentConfig::new(512).unwrap());
        assert!(
            large.engine_power_mw(AcceleratorKind::Dpnn)
                > 4.0 * small.engine_power_mw(AcceleratorKind::Dpnn)
        );
    }

    #[test]
    fn offchip_bits_dominate_when_large() {
        let model = EnergyModel::baseline_128();
        let sim = simulate(AcceleratorKind::Dpnn);
        let without = model.network_energy(AcceleratorKind::Dpnn, &sim, 0);
        let with = model.network_energy(AcceleratorKind::Dpnn, &sim, 10_000_000_000);
        assert!(with.total_nj() > 2.0 * without.total_nj());
        assert_eq!(with.compute_nj, without.compute_nj);
    }
}
