//! # loom-energy
//!
//! Analytical energy, power and area models for the Loom reproduction.
//!
//! The paper derives energy and area from synthesised 65 nm layouts plus CACTI
//! and Destiny; this crate substitutes an activity-driven analytical model
//! whose constants ([`constants`]) are calibrated to the paper's published
//! relative results, and which consumes the activity counts (cycles, bits
//! moved) produced by `loom-sim` and `loom-mem`.
//!
//! * [`area`] — core and total area per accelerator and design point (§4.4).
//! * [`energy`] — per-network energy breakdowns and relative efficiency
//!   (Tables 2 and 4, Figures 4b and 5).
//!
//! # Example
//!
//! ```
//! use loom_energy::area::core_area_ratio;
//! use loom_sim::{EquivalentConfig, LoomVariant};
//!
//! let ratio = core_area_ratio(LoomVariant::Lm1b, EquivalentConfig::BASELINE_128);
//! assert!(ratio > 1.0 && ratio < 1.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod area;
pub mod constants;
pub mod energy;

pub use area::AreaBreakdown;
pub use energy::{EnergyBreakdown, EnergyModel};
