//! On-chip storage models: the ABin/ABout SRAM buffers and the eDRAM
//! activation (AM) and weight (WM) memories.
//!
//! These are accounting models: they track capacities and access counts (the
//! inputs to the energy model) rather than contents. The paper models the SRAM
//! buffers with CACTI and the eDRAM memories with Destiny; here the capacities
//! and per-access energies are analytical constants in `loom-energy`.

use std::fmt;

/// An on-chip SRAM buffer (ABin or ABout).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramBuffer {
    name: String,
    capacity_bits: u64,
    row_width_bits: u64,
    reads: u64,
    writes: u64,
    bits_read: u64,
    bits_written: u64,
}

impl SramBuffer {
    /// Creates a buffer with the given capacity and row width.
    pub fn new(name: impl Into<String>, capacity_bits: u64, row_width_bits: u64) -> Self {
        SramBuffer {
            name: name.into(),
            capacity_bits,
            row_width_bits,
            reads: 0,
            writes: 0,
            bits_read: 0,
            bits_written: 0,
        }
    }

    /// The buffer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Records reading `bits` bits, split into row-width accesses.
    pub fn read(&mut self, bits: u64) {
        let rows = bits.div_ceil(self.row_width_bits.max(1));
        self.reads += rows;
        self.bits_read += bits;
    }

    /// Records writing `bits` bits, split into row-width accesses.
    pub fn write(&mut self, bits: u64) {
        let rows = bits.div_ceil(self.row_width_bits.max(1));
        self.writes += rows;
        self.bits_written += bits;
    }

    /// Number of row read accesses recorded.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Number of row write accesses recorded.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bits read.
    pub fn bits_read(&self) -> u64 {
        self.bits_read
    }

    /// Total bits written.
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }
}

impl fmt::Display for SramBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {} reads / {} writes",
            self.name,
            self.capacity_bits / 8 / 1024,
            self.reads,
            self.writes
        )
    }
}

/// An on-chip eDRAM memory (the activation memory AM or weight memory WM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdramMemory {
    name: String,
    capacity_bits: u64,
    bits_read: u64,
    bits_written: u64,
    overflow_bits: u64,
}

impl EdramMemory {
    /// Creates a memory with the given capacity in bytes.
    pub fn with_capacity_bytes(name: impl Into<String>, capacity_bytes: u64) -> Self {
        EdramMemory {
            name: name.into(),
            capacity_bits: capacity_bytes * 8,
            bits_read: 0,
            bits_written: 0,
            overflow_bits: 0,
        }
    }

    /// The memory's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bits / 8
    }

    /// Whether a working set of `bits` fits entirely on chip.
    pub fn fits(&self, bits: u64) -> bool {
        bits <= self.capacity_bits
    }

    /// The number of bits of a working set that spill off chip (zero if the
    /// working set fits).
    pub fn spill_bits(&self, bits: u64) -> u64 {
        bits.saturating_sub(self.capacity_bits)
    }

    /// Records reading `bits` bits; any portion beyond capacity is counted as
    /// overflow (off-chip) traffic.
    pub fn read(&mut self, bits: u64) {
        self.bits_read += bits;
    }

    /// Records writing `bits` bits.
    pub fn write(&mut self, bits: u64) {
        self.bits_written += bits;
    }

    /// Records `bits` of traffic that had to go off chip because the working
    /// set exceeded the capacity.
    pub fn record_overflow(&mut self, bits: u64) {
        self.overflow_bits += bits;
    }

    /// Total bits read.
    pub fn bits_read(&self) -> u64 {
        self.bits_read
    }

    /// Total bits written.
    pub fn bits_written(&self) -> u64 {
        self.bits_written
    }

    /// Total overflow (off-chip) bits recorded.
    pub fn overflow_bits(&self) -> u64 {
        self.overflow_bits
    }
}

impl fmt::Display for EdramMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} MB eDRAM",
            self.name,
            self.capacity_bits as f64 / 8.0 / (1024.0 * 1024.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_counts_row_accesses() {
        let mut abin = SramBuffer::new("ABin", 16 * 1024 * 8, 256);
        abin.read(256);
        abin.read(300); // needs 2 rows
        abin.write(100);
        assert_eq!(abin.reads(), 3);
        assert_eq!(abin.writes(), 1);
        assert_eq!(abin.bits_read(), 556);
        assert_eq!(abin.bits_written(), 100);
        assert_eq!(abin.capacity_bits(), 16 * 1024 * 8);
        assert!(abin.to_string().contains("ABin"));
    }

    #[test]
    fn edram_fits_and_spills() {
        let am = EdramMemory::with_capacity_bytes("AM", 2 * 1024 * 1024);
        assert_eq!(am.capacity_bytes(), 2 * 1024 * 1024);
        assert!(am.fits(2 * 1024 * 1024 * 8));
        assert!(!am.fits(2 * 1024 * 1024 * 8 + 1));
        assert_eq!(am.spill_bits(2 * 1024 * 1024 * 8 + 100), 100);
        assert_eq!(am.spill_bits(10), 0);
    }

    #[test]
    fn edram_counters_accumulate() {
        let mut wm = EdramMemory::with_capacity_bytes("WM", 1024);
        wm.read(100);
        wm.write(50);
        wm.record_overflow(30);
        assert_eq!(wm.bits_read(), 100);
        assert_eq!(wm.bits_written(), 50);
        assert_eq!(wm.overflow_bits(), 30);
        assert!(wm.to_string().contains("WM"));
    }
}
