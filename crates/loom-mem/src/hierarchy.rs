//! The complete on-/off-chip memory hierarchy used by the scaling study
//! (Figure 5): an activation memory (AM), a weight memory (WM), the ABin/ABout
//! buffers, and a single off-chip LPDDR4 channel.
//!
//! The hierarchy answers two questions per layer: how many bits must travel
//! off chip (weights are streamed per frame; activations spill when a layer's
//! working set exceeds the AM), and how many accelerator cycles that traffic
//! occupies on the channel.

use crate::dram::DramChannel;
use crate::traffic::{activation_working_set_bits, layer_traffic, LayerTraffic, StoragePrecision};
use loom_model::layer::LayerKind;
use loom_model::network::Network;
use loom_model::Precision;

/// Sizing of the on-chip memories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// Activation memory capacity in bytes.
    pub am_bytes: u64,
    /// Weight memory capacity in bytes.
    pub wm_bytes: u64,
}

impl MemoryConfig {
    /// The baseline DPNN sizing from §4.5: a 2 MB activation memory.
    pub fn dpnn_default() -> Self {
        MemoryConfig {
            am_bytes: 2 * 1024 * 1024,
            wm_bytes: 2 * 1024 * 1024,
        }
    }

    /// The Loom sizing from §4.5: packed activations let a 1 MB AM hold the
    /// same layers the baseline needs 2 MB for.
    pub fn loom_default() -> Self {
        MemoryConfig {
            am_bytes: 1024 * 1024,
            wm_bytes: 2 * 1024 * 1024,
        }
    }
}

/// Per-layer memory behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerMemoryUse {
    /// On-chip traffic for the layer.
    pub traffic: LayerTraffic,
    /// The layer's activation working set in bits.
    pub working_set_bits: u64,
    /// Bits that must cross the off-chip interface for this layer: all weights
    /// (streamed per frame) plus twice the activation spill (written out and
    /// read back).
    pub offchip_bits: u64,
    /// Accelerator cycles the off-chip transfer occupies at peak bandwidth.
    pub offchip_cycles: u64,
}

/// The memory hierarchy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySystem {
    /// On-chip memory sizing.
    pub config: MemoryConfig,
    /// The off-chip channel.
    pub dram: DramChannel,
}

impl MemorySystem {
    /// Creates a hierarchy with the given sizing and an LPDDR4-4267 channel.
    pub fn with_lpddr4(config: MemoryConfig) -> Self {
        MemorySystem {
            config,
            dram: DramChannel::lpddr4_4267(),
        }
    }

    /// Evaluates one layer stored at the given precisions.
    pub fn evaluate_layer(&self, kind: &LayerKind, storage: StoragePrecision) -> LayerMemoryUse {
        let traffic = layer_traffic(kind, storage);
        let working_set = activation_working_set_bits(kind, storage.activation);
        let spill = working_set.saturating_sub(self.config.am_bytes * 8);
        // Spilled activations are written off chip and read back: 2x traffic.
        let offchip_bits = traffic.weight_bits + 2 * spill;
        LayerMemoryUse {
            traffic,
            working_set_bits: working_set,
            offchip_bits,
            offchip_cycles: self.dram.cycles_for_bits(offchip_bits),
        }
    }

    /// Evaluates one layer whose weights stream in the compressed bitplane
    /// format (see [`crate::compress`]): activations behave exactly as in
    /// [`evaluate_layer`](Self::evaluate_layer), but the weight stream costs
    /// `weight_ratio × dense` bits, where `weight_ratio` is the layer's
    /// measured compressed-over-dense ratio.
    pub fn evaluate_layer_compressed(
        &self,
        kind: &LayerKind,
        storage: StoragePrecision,
        weight_ratio: f64,
    ) -> LayerMemoryUse {
        let mut traffic = layer_traffic(kind, storage);
        traffic.weight_bits = (traffic.weight_bits as f64 * weight_ratio).ceil() as u64;
        let working_set = activation_working_set_bits(kind, storage.activation);
        let spill = working_set.saturating_sub(self.config.am_bytes * 8);
        let offchip_bits = traffic.weight_bits + 2 * spill;
        LayerMemoryUse {
            traffic,
            working_set_bits: working_set,
            offchip_bits,
            offchip_cycles: self.dram.cycles_for_bits(offchip_bits),
        }
    }

    /// Total off-chip bits for a whole network, storing every layer's
    /// activations at `activation` bits and its weights at `weight` bits.
    pub fn network_offchip_bits(
        &self,
        network: &Network,
        storage_for_layer: impl Fn(usize, &LayerKind) -> StoragePrecision,
    ) -> u64 {
        network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                self.evaluate_layer(&layer.kind, storage_for_layer(i, &layer.kind))
                    .offchip_bits
            })
            .sum()
    }
}

/// The smallest activation-memory capacity (in bytes) that lets every compute
/// layer of `network` keep its activation working set on chip when activations
/// are stored at `activation` bits. This reproduces the §4.5 sizing argument
/// (2 MB for the baseline, 1 MB for Loom, VGG-19 excepted).
pub fn required_am_bytes(network: &Network, activation: Precision) -> u64 {
    network
        .layers()
        .iter()
        .filter(|l| l.kind.is_compute())
        .map(|l| activation_working_set_bits(&l.kind, activation).div_ceil(8))
        .max()
        .unwrap_or(0)
}

/// Total weight footprint of a network in bytes when each compute layer `i`
/// stores its weights at `weight_bits(i)` bits.
pub fn network_weight_bytes(network: &Network, weight_bits: impl Fn(usize) -> Precision) -> u64 {
    network
        .compute_layers()
        .enumerate()
        .map(|(i, l)| (l.kind.total_weights() * weight_bits(i).bits_u64()).div_ceil(8))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::layer::{ConvSpec, FcSpec};
    use loom_model::zoo;

    #[test]
    fn small_layer_stays_on_chip() {
        let sys = MemorySystem::with_lpddr4(MemoryConfig::dpnn_default());
        let conv = LayerKind::Conv(ConvSpec::simple(3, 32, 32, 16, 3));
        let usage = sys.evaluate_layer(&conv, StoragePrecision::baseline());
        assert_eq!(usage.offchip_bits, usage.traffic.weight_bits);
        assert!(usage.working_set_bits < sys.config.am_bytes * 8);
    }

    #[test]
    fn oversized_working_set_spills() {
        let sys = MemorySystem::with_lpddr4(MemoryConfig {
            am_bytes: 1024,
            wm_bytes: 1024,
        });
        let conv = LayerKind::Conv(ConvSpec::simple(64, 64, 64, 64, 3));
        let usage = sys.evaluate_layer(&conv, StoragePrecision::baseline());
        assert!(usage.offchip_bits > usage.traffic.weight_bits);
        assert!(usage.offchip_cycles > 0);
    }

    #[test]
    fn compressed_weights_cut_offchip_traffic_but_not_spill() {
        let sys = MemorySystem::with_lpddr4(MemoryConfig::dpnn_default());
        let conv = LayerKind::Conv(ConvSpec::simple(3, 32, 32, 16, 3));
        let dense = sys.evaluate_layer(&conv, StoragePrecision::baseline());
        let compressed = sys.evaluate_layer_compressed(&conv, StoragePrecision::baseline(), 0.5);
        assert_eq!(
            compressed.traffic.weight_bits,
            dense.traffic.weight_bits / 2
        );
        assert_eq!(compressed.working_set_bits, dense.working_set_bits);
        assert!(compressed.offchip_bits < dense.offchip_bits);
        // A ratio of 1.0 reproduces the dense evaluation exactly.
        let unity = sys.evaluate_layer_compressed(&conv, StoragePrecision::baseline(), 1.0);
        assert_eq!(unity, dense);
    }

    #[test]
    fn fc_layers_are_weight_traffic_dominated() {
        let sys = MemorySystem::with_lpddr4(MemoryConfig::dpnn_default());
        let fc = LayerKind::FullyConnected(FcSpec::new(25088, 4096));
        let usage = sys.evaluate_layer(&fc, StoragePrecision::baseline());
        assert!(usage.traffic.weight_bits > 100 * usage.traffic.input_activation_bits);
        // At 16b, VGG-19 fc6 weights alone are ~200 MB of traffic -> clearly
        // off-chip bound.
        assert!(usage.offchip_cycles > 1_000_000);
    }

    #[test]
    fn packed_storage_halves_am_requirement() {
        // §4.5: with 16b activations most layers fit in 2 MB; with ~8b packed
        // activations they fit in ~1 MB. VGG-19 is the outlier either way.
        for net in zoo::all() {
            if net.name() == "VGG19" {
                continue;
            }
            let full = required_am_bytes(&net, Precision::FULL);
            let packed = required_am_bytes(&net, Precision::new(8).unwrap());
            assert!(
                full <= 2 * 1024 * 1024 + 512 * 1024,
                "{}: {full}",
                net.name()
            );
            assert!(packed <= full / 2 + 1, "{}", net.name());
        }
        let vgg19_full = required_am_bytes(&zoo::vgg19(), Precision::FULL);
        assert!(
            vgg19_full > 4 * 1024 * 1024,
            "VGG-19 cannot fit on chip at 16b"
        );
    }

    #[test]
    fn weight_footprint_scales_with_precision() {
        let net = zoo::alexnet();
        let full = network_weight_bytes(&net, |_| Precision::FULL);
        let packed = network_weight_bytes(&net, |_| Precision::new(8).unwrap());
        assert!(packed * 2 <= full + net.compute_layers().count() as u64);
    }

    #[test]
    fn network_offchip_accumulates_all_layers() {
        let sys = MemorySystem::with_lpddr4(MemoryConfig::dpnn_default());
        let net = zoo::alexnet();
        let total = sys.network_offchip_bits(&net, |_, _| StoragePrecision::baseline());
        // At minimum all weights cross the interface once.
        let weight_bits: u64 = net.total_weights() * 16;
        assert!(total >= weight_bits);
    }
}
