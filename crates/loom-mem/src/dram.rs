//! Off-chip memory channel model.
//!
//! The paper's final experiment (Figure 5) attaches a single channel of
//! low-power DDR4-4267 to both accelerators. For cycle accounting only the
//! sustained bandwidth matters: the channel delivers a fixed number of bits per
//! accelerator core cycle, and a layer whose off-chip demand exceeds what the
//! compute time can hide becomes memory bound.

/// An off-chip DRAM channel characterised by its peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramChannel {
    /// Peak bandwidth in bits per second.
    pub bits_per_second: f64,
    /// Accelerator core clock in Hz (1 GHz for all evaluated designs).
    pub core_clock_hz: f64,
}

impl DramChannel {
    /// A single channel of LPDDR4-4267: 4267 MT/s over a 16-bit channel
    /// ≈ 68.3 Gbit/s ≈ 8.53 GB/s.
    pub fn lpddr4_4267() -> Self {
        DramChannel {
            bits_per_second: 4267e6 * 16.0,
            core_clock_hz: 1e9,
        }
    }

    /// Creates a channel from a bandwidth in gigabytes per second.
    pub fn from_gb_per_s(gb_per_s: f64, core_clock_hz: f64) -> Self {
        DramChannel {
            bits_per_second: gb_per_s * 8e9,
            core_clock_hz,
        }
    }

    /// Bits delivered per accelerator core cycle.
    pub fn bits_per_cycle(&self) -> f64 {
        self.bits_per_second / self.core_clock_hz
    }

    /// Core cycles needed to transfer `bits` bits at peak bandwidth.
    pub fn cycles_for_bits(&self, bits: u64) -> u64 {
        (bits as f64 / self.bits_per_cycle()).ceil() as u64
    }

    /// Transfer time in seconds for `bits` bits.
    pub fn seconds_for_bits(&self, bits: u64) -> f64 {
        bits as f64 / self.bits_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpddr4_bandwidth_is_about_8_5_gb_per_s() {
        let ch = DramChannel::lpddr4_4267();
        let gbps = ch.bits_per_second / 8e9;
        assert!((8.0..9.0).contains(&gbps), "got {gbps}");
        // ~68 bits per 1 GHz cycle.
        assert!((60.0..75.0).contains(&ch.bits_per_cycle()));
    }

    #[test]
    fn cycles_scale_linearly_with_bits() {
        let ch = DramChannel::from_gb_per_s(8.0, 1e9);
        assert_eq!(ch.bits_per_cycle(), 64.0);
        assert_eq!(ch.cycles_for_bits(64), 1);
        assert_eq!(ch.cycles_for_bits(65), 2);
        assert_eq!(ch.cycles_for_bits(6400), 100);
        assert_eq!(ch.cycles_for_bits(0), 0);
    }

    #[test]
    fn seconds_for_bits_consistent_with_cycles() {
        let ch = DramChannel::from_gb_per_s(8.0, 1e9);
        let bits = 1_000_000u64;
        let secs = ch.seconds_for_bits(bits);
        let cycles = ch.cycles_for_bits(bits);
        assert!((secs * 1e9 - cycles as f64).abs() <= 1.0);
    }
}
