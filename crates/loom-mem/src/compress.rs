//! Sparse compressed bitplane storage for packed weights (§3.2 extended per
//! the MAC-less processor of Liguori, arXiv 2012.06018).
//!
//! A dense 256-lane bitplane block stores all [`MAX_PRECISION`] magnitude
//! planes plus a sign plane, even though per-block magnitude detection means
//! every plane at or above the detected cutoff is either all zeros or pure
//! sign extension, and skewed weight distributions leave low planes empty
//! too. [`CompressedPlanes`] elides both classes: a 16-bit `stored_mask`
//! says which planes are materialised, a 16-bit `sign_ext_mask` marks the
//! planes that equal the sign plane (reconstructed from it for free), and
//! every other plane is implicitly zero. The encoding is lossless —
//! [`CompressedPlanes::to_dense`] reproduces the dense plane array
//! bit-for-bit — and both the modeled DRAM stream footprint
//! ([`compressed_bits`](CompressedPlanes::compressed_bits)) and the resident
//! in-memory footprint ([`resident_bytes`](CompressedPlanes::resident_bytes))
//! are exposed so the traffic/energy models and the bench reports can account
//! the savings.

use loom_model::fixed::MAX_PRECISION;

/// 64-bit words per bitplane (matches the SIMD-wide block of `loom-sim`).
pub const PLANE_WORDS: usize = 4;

/// Lanes per bitplane block (`64 * PLANE_WORDS`).
pub const PLANE_LANES: usize = 64 * PLANE_WORDS;

/// Bitplane count of the dense layout (one per magnitude bit).
pub const PLANE_COUNT: usize = MAX_PRECISION as usize;

/// How one plane of a [`CompressedPlanes`] block resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneRef<'a> {
    /// The plane is materialised: these are its words.
    Stored(&'a [u64; PLANE_WORDS]),
    /// The plane equals the sign plane (pure sign extension above the
    /// block's magnitude cutoff); read [`CompressedPlanes::signs`] instead.
    SignExtended,
    /// The plane is all zeros and was elided entirely.
    Zero,
}

/// A 256-lane bitplane block with all-zero and pure-sign-extension planes
/// elided. Construct with [`from_dense`](Self::from_dense) (from a dense
/// plane array) or [`compress_values`](Self::compress_values) (straight from
/// values, for traffic modeling); recover the dense layout with
/// [`to_dense`](Self::to_dense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedPlanes {
    lanes: usize,
    stored_mask: u16,
    sign_ext_mask: u16,
    signs: [u64; PLANE_WORDS],
    stored: Box<[[u64; PLANE_WORDS]]>,
}

impl CompressedPlanes {
    /// Compresses a dense plane array (16 magnitude planes + sign plane).
    /// Classification is purely content-based, so the round trip through
    /// [`to_dense`](Self::to_dense) is exact for any input.
    ///
    /// # Panics
    ///
    /// Panics if `lanes > PLANE_LANES`.
    pub fn from_dense(
        lanes: usize,
        planes: &[[u64; PLANE_WORDS]; PLANE_COUNT],
        signs: &[u64; PLANE_WORDS],
    ) -> Self {
        assert!(
            lanes <= PLANE_LANES,
            "a compressed block holds at most {PLANE_LANES} lanes, got {lanes}"
        );
        let mut stored_mask = 0u16;
        let mut sign_ext_mask = 0u16;
        let mut stored = Vec::new();
        for (bit, plane) in planes.iter().enumerate() {
            if *plane == [0; PLANE_WORDS] {
                // Elided as implicitly zero — including when the sign plane
                // is also zero, so the cheaper class wins.
            } else if plane == signs {
                sign_ext_mask |= 1 << bit;
            } else {
                stored_mask |= 1 << bit;
                stored.push(*plane);
            }
        }
        CompressedPlanes {
            lanes,
            stored_mask,
            sign_ext_mask,
            signs: *signs,
            stored: stored.into_boxed_slice(),
        }
    }

    /// Compresses up to [`PLANE_LANES`] values (16-bit two's complement)
    /// directly, without building a dense block first — the path the traffic
    /// models use to measure a layer's compressed footprint.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > PLANE_LANES`.
    pub fn compress_values(values: &[i32]) -> Self {
        assert!(
            values.len() <= PLANE_LANES,
            "a compressed block holds at most {PLANE_LANES} lanes, got {}",
            values.len()
        );
        let mut planes = [[0u64; PLANE_WORDS]; PLANE_COUNT];
        let mut signs = [0u64; PLANE_WORDS];
        for (lane, &v) in values.iter().enumerate() {
            let (word, bit) = (lane / 64, lane % 64);
            // Bits above a 16-bit value's magnitude equal its sign in two's
            // complement, so extracting all 16 low bits of `v as u32` yields
            // exactly the dense packer's sign-filled high planes.
            let u = v as u32;
            for (plane, words) in planes.iter_mut().enumerate() {
                words[word] |= u64::from(u >> plane & 1) << bit;
            }
            signs[word] |= u64::from(v < 0) << bit;
        }
        Self::from_dense(values.len(), &planes, &signs)
    }

    /// Reconstructs the dense plane array and sign plane, bit-identical to
    /// what [`from_dense`](Self::from_dense) consumed.
    pub fn to_dense(&self) -> ([[u64; PLANE_WORDS]; PLANE_COUNT], [u64; PLANE_WORDS]) {
        let mut planes = [[0u64; PLANE_WORDS]; PLANE_COUNT];
        let mut next = 0usize;
        for (bit, plane) in planes.iter_mut().enumerate() {
            if self.stored_mask >> bit & 1 == 1 {
                *plane = self.stored[next];
                next += 1;
            } else if self.sign_ext_mask >> bit & 1 == 1 {
                *plane = self.signs;
            }
        }
        (planes, self.signs)
    }

    /// Resolves plane `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= PLANE_COUNT`.
    pub fn plane(&self, bit: u8) -> PlaneRef<'_> {
        let bit = usize::from(bit);
        assert!(bit < PLANE_COUNT, "plane {bit} out of range");
        if self.stored_mask >> bit & 1 == 1 {
            let index = (self.stored_mask & ((1 << bit) - 1)).count_ones() as usize;
            PlaneRef::Stored(&self.stored[index])
        } else if self.sign_ext_mask >> bit & 1 == 1 {
            PlaneRef::SignExtended
        } else {
            PlaneRef::Zero
        }
    }

    /// Number of packed lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Bitmap of materialised planes (bit `b` set ⇒ plane `b` stored).
    pub fn stored_mask(&self) -> u16 {
        self.stored_mask
    }

    /// Bitmap of planes that equal the sign plane.
    pub fn sign_ext_mask(&self) -> u16 {
        self.sign_ext_mask
    }

    /// The sign plane (bit set ⇒ the lane is negative).
    pub fn signs(&self) -> &[u64; PLANE_WORDS] {
        &self.signs
    }

    /// The materialised planes, ascending bit order.
    pub fn stored_planes(&self) -> &[[u64; PLANE_WORDS]] {
        &self.stored
    }

    /// Modeled DRAM stream footprint of this block in bits: the two plane
    /// bitmaps, the sign plane, and each stored plane at `lanes` bits (a
    /// ragged block streams only its populated lanes).
    pub fn compressed_bits(&self) -> u64 {
        let lanes = self.lanes as u64;
        32 + lanes + self.stored.len() as u64 * lanes
    }

    /// The dense baseline the same lanes stream at: 16 bits per value.
    pub fn dense_bits(&self) -> u64 {
        self.lanes as u64 * MAX_PRECISION as u64
    }

    /// Resident in-memory footprint of this block (headers + sign plane +
    /// stored plane words).
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.stored.len() * std::mem::size_of::<[u64; PLANE_WORDS]>()
    }
}

/// Aggregated compression footprint of a weight tensor, accumulated block by
/// block by [`compression_footprint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WeightCompression {
    /// Values covered.
    pub values: u64,
    /// 256-lane blocks covered.
    pub blocks: u64,
    /// Dense stream bits (16 bits per value).
    pub dense_bits: u64,
    /// Compressed stream bits (bitmaps + sign plane + stored planes).
    pub compressed_bits: u64,
}

impl WeightCompression {
    /// Compressed-over-dense stream ratio (1.0 when no bits were counted).
    pub fn ratio(&self) -> f64 {
        if self.dense_bits > 0 {
            self.compressed_bits as f64 / self.dense_bits as f64
        } else {
            1.0
        }
    }

    /// Accumulates another footprint into this one.
    pub fn add(&mut self, other: &WeightCompression) {
        self.values += other.values;
        self.blocks += other.blocks;
        self.dense_bits += other.dense_bits;
        self.compressed_bits += other.compressed_bits;
    }
}

/// Measures the compressed stream footprint of a weight slice, chunked into
/// 256-lane blocks the way the wide datapath packs filters.
pub fn compression_footprint(values: &[i32]) -> WeightCompression {
    let mut total = WeightCompression::default();
    for chunk in values.chunks(PLANE_LANES.max(1)) {
        let block = CompressedPlanes::compress_values(chunk);
        total.values += chunk.len() as u64;
        total.blocks += 1;
        total.dense_bits += block.dense_bits();
        total.compressed_bits += block.compressed_bits();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_of(values: &[i32]) -> ([[u64; PLANE_WORDS]; PLANE_COUNT], [u64; PLANE_WORDS]) {
        let mut planes = [[0u64; PLANE_WORDS]; PLANE_COUNT];
        let mut signs = [0u64; PLANE_WORDS];
        for (lane, &v) in values.iter().enumerate() {
            let (word, bit) = (lane / 64, lane % 64);
            for (plane, words) in planes.iter_mut().enumerate() {
                words[word] |= u64::from((v as u32) >> plane & 1) << bit;
            }
            signs[word] |= u64::from(v < 0) << bit;
        }
        (planes, signs)
    }

    #[test]
    fn round_trip_is_exact_over_ragged_lanes() {
        for lanes in [1usize, 7, 63, 64, 65, 128, 200, 255, 256] {
            let values: Vec<i32> = (0..lanes as i32)
                .map(|i| (i * 977) % 30000 - 15000)
                .collect();
            let (planes, signs) = dense_of(&values);
            let compressed = CompressedPlanes::from_dense(lanes, &planes, &signs);
            assert_eq!(compressed.lanes(), lanes);
            let (back, back_signs) = compressed.to_dense();
            assert_eq!(back, planes, "{lanes} lanes");
            assert_eq!(back_signs, signs);
            // compress_values is the same encoding, without the dense detour.
            assert_eq!(compressed, CompressedPlanes::compress_values(&values));
        }
    }

    #[test]
    fn all_zero_planes_are_elided_not_stored() {
        // Even values: plane 0 is all zeros and must cost nothing.
        let values: Vec<i32> = (0..256).map(|i| (i % 50) * 2).collect();
        let c = CompressedPlanes::compress_values(&values);
        assert_eq!(c.stored_mask() & 1, 0);
        assert_eq!(c.plane(0), PlaneRef::Zero);
        // An all-zero block stores nothing at all.
        let zero = CompressedPlanes::compress_values(&[0; 256]);
        assert_eq!(zero.stored_planes().len(), 0);
        assert_eq!(zero.stored_mask(), 0);
        assert_eq!(zero.sign_ext_mask(), 0);
        assert_eq!(zero.compressed_bits(), 32 + 256);
    }

    #[test]
    fn sign_extension_planes_resolve_to_the_sign_plane() {
        // All -1: every plane equals the sign plane, so nothing is stored.
        let c = CompressedPlanes::compress_values(&[-1; 100]);
        assert_eq!(c.stored_planes().len(), 0);
        assert_eq!(c.sign_ext_mask(), u16::MAX);
        for bit in 0..PLANE_COUNT as u8 {
            assert_eq!(c.plane(bit), PlaneRef::SignExtended);
        }
        let (planes, signs) = c.to_dense();
        assert!(planes.iter().all(|p| *p == signs));
    }

    #[test]
    fn narrow_values_store_only_their_magnitude_planes() {
        // 4-bit signed values: planes 0..3 may be populated, planes 3..16 are
        // pure sign extension — the compressed stream carries ≤ 3 planes.
        let values: Vec<i32> = (0..256).map(|i| (i % 15) - 7).collect();
        let c = CompressedPlanes::compress_values(&values);
        assert!(c.stored_planes().len() <= 3, "{}", c.stored_planes().len());
        assert!(c.compressed_bits() < c.dense_bits());
    }

    #[test]
    fn footprint_accumulates_across_blocks() {
        let values: Vec<i32> = (0..600).map(|i| (i % 13) - 6).collect();
        let f = compression_footprint(&values);
        assert_eq!(f.values, 600);
        assert_eq!(f.blocks, 3);
        assert_eq!(f.dense_bits, 600 * 16);
        assert!(f.ratio() < 1.0);
        let mut doubled = f;
        doubled.add(&f);
        assert_eq!(doubled.dense_bits, 2 * f.dense_bits);
        assert_eq!(compression_footprint(&[]).ratio(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at most 256 lanes")]
    fn oversized_blocks_are_rejected() {
        CompressedPlanes::compress_values(&[0; 257]);
    }
}
