//! Per-layer data traffic accounting.
//!
//! Both accelerators move the same *number* of values; what differs is the
//! number of *bits* per value: the bit-parallel baseline stores and transfers
//! everything at 16 bits, while Loom stores and transfers weights and
//! activations packed at the per-layer profile precisions (§3.2 "Reducing
//! Memory Footprint and Bandwidth"). These counts feed both the energy model
//! and the off-chip bandwidth model.

use loom_model::layer::LayerKind;
use loom_model::Precision;

/// Bits moved for one layer, per inference frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerTraffic {
    /// Weight bits read (each weight is read once per frame).
    pub weight_bits: u64,
    /// Input activation bits read.
    pub input_activation_bits: u64,
    /// Output activation bits written.
    pub output_activation_bits: u64,
}

impl LayerTraffic {
    /// Total bits moved.
    pub fn total_bits(&self) -> u64 {
        self.weight_bits + self.input_activation_bits + self.output_activation_bits
    }

    /// Sums two traffic records.
    pub fn add(&self, other: &LayerTraffic) -> LayerTraffic {
        LayerTraffic {
            weight_bits: self.weight_bits + other.weight_bits,
            input_activation_bits: self.input_activation_bits + other.input_activation_bits,
            output_activation_bits: self.output_activation_bits + other.output_activation_bits,
        }
    }
}

/// Storage precisions a layer's data is kept at. The baseline uses
/// [`StoragePrecision::baseline`]; Loom uses the per-layer profile precisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoragePrecision {
    /// Bits per stored activation.
    pub activation: Precision,
    /// Bits per stored weight.
    pub weight: Precision,
}

impl StoragePrecision {
    /// The bit-parallel baseline: 16 bits for everything.
    pub fn baseline() -> Self {
        StoragePrecision {
            activation: Precision::FULL,
            weight: Precision::FULL,
        }
    }

    /// Packed storage at the given profile precisions.
    pub fn packed(activation: Precision, weight: Precision) -> Self {
        StoragePrecision { activation, weight }
    }
}

/// Computes the per-frame traffic of a layer when its data is stored at the
/// given precisions. Pooling layers move activations but no weights.
pub fn layer_traffic(kind: &LayerKind, storage: StoragePrecision) -> LayerTraffic {
    LayerTraffic {
        weight_bits: kind.total_weights() * storage.weight.bits_u64(),
        input_activation_bits: kind.total_input_activations() * storage.activation.bits_u64(),
        output_activation_bits: kind.total_output_activations() * storage.activation.bits_u64(),
    }
}

/// The on-chip activation working set of a layer (its inputs plus its outputs)
/// in bits, at the given activation storage precision. This is what must fit in
/// the activation memory to avoid off-chip spills.
pub fn activation_working_set_bits(kind: &LayerKind, activation: Precision) -> u64 {
    (kind.total_input_activations() + kind.total_output_activations()) * activation.bits_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use loom_model::layer::{ConvSpec, FcSpec, PoolSpec};

    #[test]
    fn baseline_traffic_uses_16_bits_everywhere() {
        let kind = LayerKind::FullyConnected(FcSpec::new(100, 10));
        let t = layer_traffic(&kind, StoragePrecision::baseline());
        assert_eq!(t.weight_bits, 1000 * 16);
        assert_eq!(t.input_activation_bits, 100 * 16);
        assert_eq!(t.output_activation_bits, 10 * 16);
        assert_eq!(t.total_bits(), (1000 + 110) * 16);
    }

    #[test]
    fn packed_traffic_scales_with_precision() {
        let kind = LayerKind::FullyConnected(FcSpec::new(100, 10));
        let packed =
            StoragePrecision::packed(Precision::new(8).unwrap(), Precision::new(10).unwrap());
        let t = layer_traffic(&kind, packed);
        assert_eq!(t.weight_bits, 1000 * 10);
        assert_eq!(t.input_activation_bits, 100 * 8);
        // Saving matches the paper's (16-P)/16 claim.
        let baseline = layer_traffic(&kind, StoragePrecision::baseline());
        assert!(t.total_bits() < baseline.total_bits());
    }

    #[test]
    fn pooling_moves_no_weights() {
        let kind = LayerKind::MaxPool(PoolSpec::new(4, 8, 8, 2, 2));
        let t = layer_traffic(&kind, StoragePrecision::baseline());
        assert_eq!(t.weight_bits, 0);
        assert!(t.input_activation_bits > 0);
    }

    #[test]
    fn working_set_counts_inputs_and_outputs() {
        let conv = LayerKind::Conv(ConvSpec::simple(2, 8, 8, 4, 3));
        let bits = activation_working_set_bits(&conv, Precision::new(8).unwrap());
        assert_eq!(bits, (2 * 8 * 8 + 4 * 6 * 6) * 8);
    }

    #[test]
    fn traffic_add_accumulates() {
        let a = LayerTraffic {
            weight_bits: 1,
            input_activation_bits: 2,
            output_activation_bits: 3,
        };
        let b = a.add(&a);
        assert_eq!(b.total_bits(), 12);
    }
}
