//! Bit-interleaved packed storage.
//!
//! Because Loom consumes weights and activations bit-serially, it can store
//! them "in a bit-interleaved fashion and using only as many bits as
//! necessary" (§3.2): for a group of values processed in parallel, bit 0 of
//! every value is stored contiguously, then bit 1, and so on up to the group's
//! precision. This both shrinks the memory footprint by `P/16` and makes every
//! memory row directly consumable by the SIP array without any crossbar.

use loom_model::fixed::{bit_of, Precision};
use std::fmt;

/// Error produced when packing parameters are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackingError {
    detail: String,
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "packing error: {}", self.detail)
    }
}

impl std::error::Error for PackingError {}

/// A group of values stored bit-interleaved: `precision` rows of `lanes` bits.
///
/// Row `b` holds bit `b` of every value in the group, one bit per lane, packed
/// into 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedGroup {
    lanes: usize,
    precision: Precision,
    rows: Vec<Vec<u64>>,
}

impl PackedGroup {
    /// Packs `values` (one per lane) at the given precision.
    ///
    /// Values are stored as their low `precision` bits (two's complement for
    /// signed data); callers are responsible for choosing a precision that
    /// losslessly covers the values (see `loom_precision::dynamic`).
    ///
    /// # Errors
    ///
    /// Returns an error if `values` is empty.
    pub fn pack(values: &[i32], precision: Precision) -> Result<Self, PackingError> {
        if values.is_empty() {
            return Err(PackingError {
                detail: "cannot pack an empty group".to_string(),
            });
        }
        let lanes = values.len();
        let words = lanes.div_ceil(64);
        let mut rows = vec![vec![0u64; words]; precision.bits() as usize];
        for (lane, &v) in values.iter().enumerate() {
            for (b, row) in rows.iter_mut().enumerate() {
                if bit_of(v, b as u8) == 1 {
                    row[lane / 64] |= 1u64 << (lane % 64);
                }
            }
        }
        Ok(PackedGroup {
            lanes,
            precision,
            rows,
        })
    }

    /// Number of lanes (values) in the group.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Precision the group was packed at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The bit row for bit position `bit`: one bit per lane.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= precision`.
    pub fn row(&self, bit: u8) -> Vec<u8> {
        let row = &self.rows[bit as usize];
        (0..self.lanes)
            .map(|lane| ((row[lane / 64] >> (lane % 64)) & 1) as u8)
            .collect()
    }

    /// Unpacks the group back into signed values (sign-extending from the
    /// packed precision).
    pub fn unpack_signed(&self) -> Vec<i32> {
        let p = self.precision.bits() as u32;
        (0..self.lanes)
            .map(|lane| {
                let mut raw = 0u32;
                for (b, row) in self.rows.iter().enumerate() {
                    raw |= (((row[lane / 64] >> (lane % 64)) & 1) as u32) << b;
                }
                // Sign-extend from `p` bits.
                let shifted = raw << (32 - p);
                (shifted as i32) >> (32 - p)
            })
            .collect()
    }

    /// Unpacks the group back into unsigned (non-negative) values.
    pub fn unpack_unsigned(&self) -> Vec<i32> {
        (0..self.lanes)
            .map(|lane| {
                let mut raw = 0u32;
                for (b, row) in self.rows.iter().enumerate() {
                    raw |= (((row[lane / 64] >> (lane % 64)) & 1) as u32) << b;
                }
                raw as i32
            })
            .collect()
    }

    /// Total storage the packed group occupies, in bits (`lanes × precision`).
    pub fn storage_bits(&self) -> u64 {
        self.lanes as u64 * self.precision.bits_u64()
    }
}

/// Storage footprint in bits of `count` values stored bit-packed at
/// `precision`, versus the 16 bits per value the bit-parallel baseline uses.
///
/// # Examples
///
/// ```
/// use loom_mem::packing::{packed_footprint_bits, baseline_footprint_bits};
/// use loom_model::Precision;
/// let p = Precision::new(13).unwrap();
/// assert_eq!(packed_footprint_bits(2048, p), 2048 * 13);
/// assert_eq!(baseline_footprint_bits(2048), 2048 * 16);
/// ```
pub fn packed_footprint_bits(count: u64, precision: Precision) -> u64 {
    count * precision.bits_u64()
}

/// Storage footprint in bits of `count` values at the baseline 16-bit width.
pub fn baseline_footprint_bits(count: u64) -> u64 {
    count * 16
}

/// The fraction of baseline storage/bandwidth saved by packing at `precision`:
/// the paper's `(16 - P) / 16` reduction.
pub fn footprint_saving(precision: Precision) -> f64 {
    f64::from(16 - precision.bits()) / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip_signed() {
        let values = vec![-4096, 4095, 0, -1, 123, -77, 2048];
        let p = Precision::new(13).unwrap();
        let packed = PackedGroup::pack(&values, p).unwrap();
        assert_eq!(packed.unpack_signed(), values);
        assert_eq!(packed.lanes(), 7);
        assert_eq!(packed.storage_bits(), 7 * 13);
    }

    #[test]
    fn pack_unpack_roundtrip_unsigned() {
        let values = vec![0, 1, 255, 128, 31];
        let p = Precision::new(8).unwrap();
        let packed = PackedGroup::pack(&values, p).unwrap();
        assert_eq!(packed.unpack_unsigned(), values);
    }

    #[test]
    fn rows_hold_one_bit_position_across_lanes() {
        let values = vec![0b01, 0b10, 0b11];
        let p = Precision::new(2).unwrap();
        let packed = PackedGroup::pack(&values, p).unwrap();
        assert_eq!(packed.row(0), vec![1, 0, 1]);
        assert_eq!(packed.row(1), vec![0, 1, 1]);
    }

    #[test]
    fn wide_groups_span_multiple_words() {
        let values: Vec<i32> = (0..130).map(|i| i % 2).collect();
        let p = Precision::new(1).unwrap();
        let packed = PackedGroup::pack(&values, p).unwrap();
        assert_eq!(packed.unpack_unsigned(), values);
        assert_eq!(packed.row(0).len(), 130);
    }

    #[test]
    fn empty_group_is_rejected() {
        assert!(PackedGroup::pack(&[], Precision::FULL).is_err());
    }

    #[test]
    fn footprint_matches_paper_formula() {
        let p = Precision::new(10).unwrap();
        assert_eq!(packed_footprint_bits(1000, p), 10_000);
        assert_eq!(baseline_footprint_bits(1000), 16_000);
        assert!((footprint_saving(p) - 6.0 / 16.0).abs() < 1e-12);
        assert_eq!(footprint_saving(Precision::FULL), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use loom_model::fixed::required_precision;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Packing at the detected precision round-trips exactly and uses
        /// exactly `lanes × precision` bits of storage.
        #[test]
        fn pack_roundtrip(values in prop::collection::vec(-32768i32..=32767, 1..300)) {
            let p = required_precision(&values);
            let packed = PackedGroup::pack(&values, p).unwrap();
            prop_assert_eq!(packed.unpack_signed(), values.clone());
            prop_assert_eq!(packed.storage_bits(), values.len() as u64 * u64::from(p.bits()));
        }

        /// Every bit row reproduces the corresponding bit of every lane.
        #[test]
        fn rows_match_bit_extraction(values in prop::collection::vec(0i32..=65535, 1..100)) {
            let p = Precision::FULL;
            let packed = PackedGroup::pack(&values, p).unwrap();
            for bit in 0..p.bits() {
                let row = packed.row(bit);
                for (lane, &v) in values.iter().enumerate() {
                    prop_assert_eq!(row[lane], loom_model::fixed::bit_of(v, bit));
                }
            }
        }
    }
}
