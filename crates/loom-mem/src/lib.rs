//! # loom-mem
//!
//! Memory hierarchy substrate for the Loom accelerator reproduction:
//!
//! * [`packing`] — bit-interleaved packed storage of weights and activations
//!   at the per-layer profile precisions (§3.2), with exact round-trip
//!   semantics and footprint arithmetic.
//! * [`transposer`] — the output-activation transposer that rotates
//!   bit-parallel SIP outputs into bit-interleaved storage.
//! * [`compress`] — sparse compressed bitplane weight storage: all-zero and
//!   pure-sign-extension planes elided behind per-block plane bitmaps, with
//!   lossless round trips and modeled stream/resident footprints.
//! * [`buffers`] — the ABin/ABout SRAM buffers and the AM/WM eDRAM memories as
//!   capacity/access-count models.
//! * [`dram`] — the single-channel LPDDR4-4267 off-chip memory of §4.5.
//! * [`traffic`] — per-layer bit traffic at a given storage precision.
//! * [`hierarchy`] — the assembled memory system: spill detection, off-chip
//!   traffic and memory-bound cycle counts per layer.
//!
//! # Example
//!
//! ```
//! use loom_mem::packing::PackedGroup;
//! use loom_model::Precision;
//!
//! let weights = vec![-300, 5, 17, -1];
//! let packed = PackedGroup::pack(&weights, Precision::new(10).unwrap())?;
//! assert_eq!(packed.unpack_signed(), weights);
//! assert_eq!(packed.storage_bits(), 40);
//! # Ok::<(), loom_mem::packing::PackingError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffers;
pub mod compress;
pub mod dram;
pub mod hierarchy;
pub mod packing;
pub mod traffic;
pub mod transposer;

pub use compress::{compression_footprint, CompressedPlanes, PlaneRef, WeightCompression};
pub use dram::DramChannel;
pub use hierarchy::{MemoryConfig, MemorySystem};
pub use traffic::{LayerTraffic, StoragePrecision};
