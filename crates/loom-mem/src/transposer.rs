//! The output-activation transposer.
//!
//! Loom's SIPs produce output activations bit-parallel (each OR register holds
//! a complete value), but the activation memory stores data bit-interleaved so
//! that it can be fed back bit-serially to the next layer. "A transposer can
//! rotate the output activations prior to writing them to AM from ABout. Since
//! each output activation entails inner-products with tens to hundreds of
//! inputs, the transposer demand will be low." (§3.2)

use crate::packing::PackedGroup;
use loom_model::fixed::Precision;

/// A functional model of the transposer with utilisation accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Transposer {
    blocks_transposed: u64,
    values_transposed: u64,
}

impl Transposer {
    /// Creates an idle transposer.
    pub fn new() -> Self {
        Transposer::default()
    }

    /// Transposes a block of output activations into bit-interleaved form at
    /// the given storage precision, recording the work performed.
    ///
    /// # Errors
    ///
    /// Returns the underlying packing error for an empty block.
    pub fn transpose(
        &mut self,
        values: &[i32],
        precision: Precision,
    ) -> Result<PackedGroup, crate::packing::PackingError> {
        let packed = PackedGroup::pack(values, precision)?;
        self.blocks_transposed += 1;
        self.values_transposed += values.len() as u64;
        Ok(packed)
    }

    /// Number of blocks transposed so far.
    pub fn blocks_transposed(&self) -> u64 {
        self.blocks_transposed
    }

    /// Number of values transposed so far.
    pub fn values_transposed(&self) -> u64 {
        self.values_transposed
    }

    /// The paper's utilisation argument: each output activation takes on the
    /// order of `inner_product_length` accumulation cycles to produce, while
    /// the transposer rotates a block of `block_size` finished outputs in a
    /// single pass of `block_size` cycles. The fraction of time the transposer
    /// is busy is therefore `block_size / inner_product_length`, which is far
    /// below one for realistic layers ("the transposer demand will be low").
    pub fn utilisation(block_size: usize, inner_product_length: usize) -> f64 {
        if inner_product_length == 0 {
            return 1.0;
        }
        (block_size as f64 / inner_product_length as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transpose_roundtrips_and_counts() {
        let mut t = Transposer::new();
        let values = vec![100, -50, 0, 7];
        let packed = t.transpose(&values, Precision::new(9).unwrap()).unwrap();
        assert_eq!(packed.unpack_signed(), values);
        assert_eq!(t.blocks_transposed(), 1);
        assert_eq!(t.values_transposed(), 4);
        t.transpose(&values, Precision::new(9).unwrap()).unwrap();
        assert_eq!(t.blocks_transposed(), 2);
        assert_eq!(t.values_transposed(), 8);
    }

    #[test]
    fn utilisation_is_low_for_long_inner_products() {
        // A conv layer with 2304-long inner products keeps the transposer
        // nearly idle, as the paper argues.
        let u = Transposer::utilisation(256, 2304);
        assert!(u < 0.2, "got {u}");
        // Degenerate short inner products saturate at 1.
        assert_eq!(Transposer::utilisation(16, 0), 1.0);
    }

    #[test]
    fn empty_block_is_rejected() {
        let mut t = Transposer::new();
        assert!(t.transpose(&[], Precision::FULL).is_err());
        assert_eq!(t.blocks_transposed(), 0);
    }
}
