//! A minimal blocking HTTP/1.1 client for the loopback suites and the load
//! generator: one keep-alive connection, fixed-length bodies, no TLS, no
//! redirects — just enough to drive [`crate::server::Server`] and read back
//! status + body.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a server.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A response: status code and body bytes (the serving protocol's bodies are
/// always UTF-8 JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl Client {
    /// Connects with the given socket timeout applied to reads and writes.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request and reads the response on the keep-alive
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and malformed responses as `io::Error`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<Response> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: loopback\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience wrapper: `POST /v1/infer` with a JSON body.
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn infer(&mut self, body: &str) -> io::Result<Response> {
        self.request("POST", "/v1/infer", body)
    }

    /// Sends raw bytes as-is — the adversarial suites use this to speak
    /// broken HTTP on purpose.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, raw: &[u8]) -> io::Result<()> {
        self.stream.write_all(raw)?;
        self.stream.flush()
    }

    /// Reads one response off the wire (status line, headers,
    /// `Content-Length` body).
    ///
    /// # Errors
    ///
    /// `io::Error` on socket failure, timeout, or a response this minimal
    /// client cannot parse.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let mut parts = line.trim_end().splitn(3, ' ');
        if parts.next() != Some("HTTP/1.1") {
            return Err(bad("not an HTTP/1.1 response"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("unparsable status code"))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("unparsable content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
        Ok(Response { status, body })
    }

    /// Half-closes the write side (the mid-response-disconnect tests use
    /// this to abandon a request).
    ///
    /// # Errors
    ///
    /// Propagates the shutdown failure.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
