//! The HTTP front end: a blocking acceptor plus one thread per connection,
//! with a hard connection cap (503 at accept), per-connection read/write
//! timeouts (slow-loris connections are dropped without a response), strict
//! request validation (400/404/413), and queue-full admission control
//! surfaced as 429. Inference itself happens on the micro-batcher's
//! dispatcher thread — connection threads only parse, validate, enqueue and
//! wait, so a slow client never holds the worker pool hostage.

use crate::batch::{BatchConfig, MicroBatcher, Overloaded, Tier};
use crate::http::{read_request, write_response, ReadError, Request};
use crate::json::Json;
use crate::metrics::Counters;
use crate::model::{ModelCatalog, ServedModel};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything the server needs to start.
pub struct ServerConfig {
    /// Port to bind on 127.0.0.1 (0 picks an ephemeral port — the loopback
    /// suites use this).
    pub port: u16,
    /// Batching knobs (window, max batch, queue cap, worker threads).
    pub batch: BatchConfig,
    /// Concurrent-connection cap; further connections get an immediate 503.
    pub max_connections: usize,
    /// Per-connection socket read timeout (slow-loris cutoff).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Request-body cap in bytes (HTTP 413 beyond it).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            batch: BatchConfig::default(),
            max_connections: 64,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

struct Inner {
    catalog: ModelCatalog,
    batcher: MicroBatcher,
    counters: Counters,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    max_connections: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_body_bytes: usize,
}

/// A running server. Dropping it (or calling [`Server::stop`]) shuts the
/// acceptor down and drains the batcher.
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `127.0.0.1:port` and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, permissions).
    pub fn start(catalog: ModelCatalog, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            catalog,
            batcher: MicroBatcher::start(config.batch),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            max_connections: config.max_connections,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_body_bytes: config.max_body_bytes,
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("loom-serve-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &inner))
                .expect("spawning the acceptor thread")
        };
        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serving counters, for assertions and stats.
    pub fn counters(&self) -> &Counters {
        &self.inner.counters
    }

    /// Stops accepting, waits for the acceptor to exit, and drains the
    /// batcher. In-flight connection threads finish their current request.
    pub fn stop(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Blocks until the acceptor exits (the foreground-binary mode).
    pub fn join(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if inner.active_connections.load(Ordering::SeqCst) >= inner.max_connections {
            Counters::bump(&inner.counters.refused_connections);
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(inner.write_timeout));
            let _ = write_response(
                &mut stream,
                503,
                "Service Unavailable",
                "application/json",
                error_body("server is at its connection limit").as_bytes(),
                false,
            );
            continue;
        }
        inner.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("loom-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_inner);
                conn_inner.active_connections.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            inner.active_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) {
    if stream.set_read_timeout(Some(inner.read_timeout)).is_err()
        || stream.set_write_timeout(Some(inner.write_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }
    let mut reader = match stream.try_clone() {
        Ok(clone) => io::BufReader::new(clone),
        Err(_) => return,
    };
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader, inner.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::TimedOut) => {
                // Slow-loris posture: no parsable request arrived in time.
                // Drop the connection without spending a response on it.
                Counters::bump(&inner.counters.timeouts);
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            Err(ReadError::BodyTooLarge { limit }) => {
                Counters::bump(&inner.counters.rejected);
                let body = error_body(&format!("request body exceeds {limit} bytes"));
                let _ = write_response(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(ReadError::HeadersTooLarge) | Err(ReadError::Malformed(_)) => {
                Counters::bump(&inner.counters.rejected);
                let _ = write_response(
                    &mut stream,
                    400,
                    "Bad Request",
                    "application/json",
                    error_body("malformed HTTP request").as_bytes(),
                    false,
                );
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        Counters::bump(&inner.counters.requests);
        let keep_alive = request.keep_alive();
        let (status, reason, body) = route(&request, inner);
        match &status {
            200 => Counters::bump(&inner.counters.ok),
            429 => Counters::bump(&inner.counters.overloaded),
            _ => Counters::bump(&inner.counters.rejected),
        }
        if write_response(
            &mut stream,
            status,
            reason,
            "application/json",
            body.as_bytes(),
            keep_alive,
        )
        .is_err()
        {
            // Mid-response disconnects (or write-timeout expiry) just end
            // this connection; the server carries on.
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

fn route(request: &Request, inner: &Inner) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => (200, "OK", r#"{"status":"ok"}"#.to_string()),
        ("GET", "/v1/models") => (200, "OK", models_body(inner)),
        ("GET", "/v1/stats") => (200, "OK", stats_body(inner)),
        ("GET", "/metrics") => (200, "OK", metrics_body(inner)),
        ("POST", "/v1/infer") => infer(request, inner),
        ("POST", _) | ("GET", _) => (
            404,
            "Not Found",
            error_body(&format!("no such endpoint: {}", request.target)),
        ),
        _ => (
            405,
            "Method Not Allowed",
            error_body(&format!("unsupported method: {}", request.method)),
        ),
    }
}

fn infer(request: &Request, inner: &Inner) -> (u16, &'static str, String) {
    let started = Instant::now();
    let parsed = match parse_infer(request, inner) {
        Ok(parsed) => parsed,
        Err((status, reason, message)) => return (status, reason, error_body(&message)),
    };
    let (model, tier, inputs) = parsed;
    let items = inputs.len();
    let receiver = match inner.batcher.submit(Arc::clone(&model), tier, inputs) {
        Ok(receiver) => receiver,
        Err(Overloaded) => {
            return (
                429,
                "Too Many Requests",
                error_body("inference queue is full, retry later"),
            )
        }
    };
    // The dispatcher always answers exactly once, even on shutdown drain.
    let reply = match receiver.recv() {
        Ok(Ok(reply)) => reply,
        Ok(Err(message)) => return (500, "Internal Server Error", error_body(&message)),
        Err(_) => {
            return (
                500,
                "Internal Server Error",
                error_body("batcher exited before answering"),
            )
        }
    };
    debug_assert_eq!(reply.outputs.len(), items);
    let outputs = Json::Array(
        reply
            .outputs
            .iter()
            .map(|o| Json::Array(o.iter().map(|&v| Json::from(v as i64)).collect()))
            .collect(),
    );
    let cycles = Json::Array(reply.cycles.iter().map(|&c| Json::from(c as i64)).collect());
    let body = Json::Object(vec![
        ("model".to_string(), Json::from(model.name)),
        ("tier".to_string(), Json::from(tier.name())),
        ("outputs".to_string(), outputs),
        ("cycles".to_string(), cycles),
        (
            "batch_items".to_string(),
            Json::from(reply.batch_items as i64),
        ),
        (
            "queue_depth".to_string(),
            Json::from(reply.queue_depth as i64),
        ),
        (
            "latency_us".to_string(),
            Json::from(started.elapsed().as_micros() as i64),
        ),
    ]);
    (200, "OK", body.to_string())
}

type InferParts = (
    Arc<ServedModel>,
    Tier,
    Vec<loom_core::loom_model::tensor::Tensor3>,
);

fn parse_infer(
    request: &Request,
    inner: &Inner,
) -> Result<InferParts, (u16, &'static str, String)> {
    let bad = |m: String| (400, "Bad Request", m);
    let text =
        std::str::from_utf8(&request.body).map_err(|_| bad("body is not UTF-8".to_string()))?;
    let json = Json::parse(text).map_err(|e| bad(e.to_string()))?;
    let name = json
        .get("model")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field 'model'".to_string()))?;
    let model = inner.catalog.find(name).ok_or((
        404,
        "Not Found",
        format!("unknown model '{name}' (see GET /v1/models)"),
    ))?;
    let tier = match json.get("tier") {
        None => Tier::Dynamic,
        Some(value) => value
            .as_str()
            .and_then(Tier::parse)
            .ok_or_else(|| bad("field 'tier' must be \"dynamic\" or \"static\"".to_string()))?,
    };
    let raw_inputs = json
        .get("inputs")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("missing array field 'inputs'".to_string()))?;
    if raw_inputs.is_empty() {
        return Err(bad("'inputs' must hold at least one tensor".to_string()));
    }
    let max_batch = inner.batcher.config().max_batch;
    if raw_inputs.len() > max_batch {
        return Err((
            413,
            "Payload Too Large",
            format!(
                "request carries {} tensors, the per-request limit is {max_batch}",
                raw_inputs.len()
            ),
        ));
    }
    let mut inputs = Vec::with_capacity(raw_inputs.len());
    for (index, tensor) in raw_inputs.iter().enumerate() {
        let values = tensor
            .as_array()
            .ok_or_else(|| bad(format!("inputs[{index}] is not an array")))?;
        if values.len() != model.input_len {
            return Err(bad(format!(
                "inputs[{index}] holds {} values, {} expects {}",
                values.len(),
                model.name,
                model.input_len
            )));
        }
        let mut flat = Vec::with_capacity(values.len());
        for (vi, value) in values.iter().enumerate() {
            let v = value
                .as_i64()
                .filter(|v| i32::try_from(*v).is_ok())
                .ok_or_else(|| bad(format!("inputs[{index}][{vi}] is not a 32-bit integer")))?;
            flat.push(v as i32);
        }
        inputs.push(model.input_tensor(flat));
    }
    Ok((model, tier, inputs))
}

fn models_body(inner: &Inner) -> String {
    let models = Json::Array(
        inner
            .catalog
            .models()
            .iter()
            .map(|m| {
                Json::Object(vec![
                    ("name".to_string(), Json::from(m.name)),
                    ("input_len".to_string(), Json::from(m.input_len as i64)),
                    (
                        "packed_layers".to_string(),
                        Json::from(m.cache.packed_layers() as i64),
                    ),
                    (
                        "cache_bytes".to_string(),
                        Json::from(m.cache.approx_bytes() as i64),
                    ),
                ])
            })
            .collect(),
    );
    Json::Object(vec![("models".to_string(), models)]).to_string()
}

/// Weight-cache observability: per-model prepack cost, resident compressed
/// footprint, layers that exceeded the FC prepack cap (and therefore stream
/// their row transpose on every request), plus the process-wide weight-store
/// counters the catalogs share.
fn metrics_body(inner: &Inner) -> String {
    let store = loom_core::loom_sim::loom::weight_store_stats();
    let models = Json::Array(
        inner
            .catalog
            .models()
            .iter()
            .map(|m| {
                let pack = m.cache.pack_stats();
                let unpacked = Json::Array(
                    m.cache
                        .unpacked_fc_layers()
                        .iter()
                        .map(|name| Json::from(name.as_str()))
                        .collect(),
                );
                Json::Object(vec![
                    ("name".to_string(), Json::from(m.name)),
                    (
                        "prepack_seconds".to_string(),
                        Json::Number(m.prepack_seconds),
                    ),
                    (
                        "packed_layers".to_string(),
                        Json::from(m.cache.packed_layers() as i64),
                    ),
                    ("unpacked_fc_layers".to_string(), unpacked),
                    (
                        "cache_bytes".to_string(),
                        Json::from(m.cache.approx_bytes() as i64),
                    ),
                    (
                        "dense_bytes".to_string(),
                        Json::from(pack.dense_bytes as i64),
                    ),
                    (
                        "compressed_bytes".to_string(),
                        Json::from(pack.compressed_bytes as i64),
                    ),
                    ("compression_ratio".to_string(), Json::Number(pack.ratio())),
                ])
            })
            .collect(),
    );
    Json::Object(vec![
        (
            "weight_store".to_string(),
            Json::Object(vec![
                ("packs".to_string(), Json::from(store.packs() as i64)),
                ("hits".to_string(), Json::from(store.hits() as i64)),
                ("evictions".to_string(), Json::from(store.evictions as i64)),
                ("entries".to_string(), Json::from(store.entries as i64)),
                (
                    "resident_bytes".to_string(),
                    Json::from(store.resident_bytes as i64),
                ),
                (
                    "pack_seconds".to_string(),
                    Json::Number(store.pack.pack_nanos as f64 / 1e9),
                ),
                (
                    "compression_ratio".to_string(),
                    Json::Number(store.pack.ratio()),
                ),
            ]),
        ),
        ("models".to_string(), models),
    ])
    .to_string()
}

fn stats_body(inner: &Inner) -> String {
    let c = &inner.counters;
    Json::Object(vec![
        (
            "requests".to_string(),
            Json::from(Counters::read(&c.requests) as i64),
        ),
        ("ok".to_string(), Json::from(Counters::read(&c.ok) as i64)),
        (
            "overloaded".to_string(),
            Json::from(Counters::read(&c.overloaded) as i64),
        ),
        (
            "rejected".to_string(),
            Json::from(Counters::read(&c.rejected) as i64),
        ),
        (
            "timeouts".to_string(),
            Json::from(Counters::read(&c.timeouts) as i64),
        ),
        (
            "refused_connections".to_string(),
            Json::from(Counters::read(&c.refused_connections) as i64),
        ),
    ])
    .to_string()
}

fn error_body(message: &str) -> String {
    Json::Object(vec![("error".to_string(), Json::from(message))]).to_string()
}
