//! A minimal, dependency-free JSON value type with a recursive-descent parser
//! and serializer — exactly the subset the serving protocol needs.
//!
//! Numbers are held as `f64`, which represents every `i32` (and every cycle
//! count this repository produces) exactly; [`Json::as_i64`] refuses
//! non-integral values so tensor payloads cannot silently truncate. Object
//! keys keep insertion order (responses serialize deterministically), and the
//! parser enforces a nesting-depth cap so adversarial bodies cannot blow the
//! connection thread's stack.

use std::fmt;

/// Maximum nesting depth the parser accepts. The protocol needs three levels
/// (object → array of tensors → array of values); 32 leaves headroom without
/// letting `[[[[…` recurse unboundedly.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, keys in insertion order.
    Object(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first malformed byte, an
    /// over-deep nesting, or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number as an exact integer; `None` for non-numbers, non-integral
    /// values, or magnitudes beyond `f64`'s exact-integer range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) => {
                const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
                (n.fract() == 0.0 && n.abs() < EXACT).then_some(*n as i64)
            }
            _ => None,
        }
    }

    /// Serializes the value to compact JSON.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(*n, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Number(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

/// Integral numbers print without a fractional part (`12`, not `12.0`), so
/// tensor values and counters round-trip textually.
fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.bytes.get(p.pos), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("malformed number"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("malformed number"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("malformed number"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are rejected rather than paired: the
                            // protocol's strings are model names and tier
                            // labels, all ASCII.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Multi-byte UTF-8 is passed through whole.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"model":"MiniMLP","inputs":[[1,-2,3],[0,0,0]],"tier":"static"}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("model").and_then(Json::as_str), Some("MiniMLP"));
        let inputs = value.get("inputs").and_then(Json::as_array).unwrap();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].as_array().unwrap()[1].as_i64(), Some(-2));
        assert_eq!(value.to_string(), text);
    }

    #[test]
    fn integers_round_trip_exactly() {
        for v in [0i64, 1, -1, i32::MAX as i64, i32::MIN as i64] {
            let text = Json::from(v).to_string();
            assert_eq!(Json::parse(&text).unwrap().as_i64(), Some(v));
        }
        // Non-integral and huge values refuse as_i64 rather than truncating.
        assert_eq!(Json::parse("1.5").unwrap().as_i64(), None);
        assert_eq!(Json::parse("1e60").unwrap().as_i64(), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let value = Json::String("a\"b\\c\nd\u{1}é".to_string());
        let text = value.to_string();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001é\"");
        assert_eq!(Json::parse(&text).unwrap(), value);
        assert_eq!(
            Json::parse("\"\\u0041\\t\"").unwrap(),
            Json::String("A\t".to_string())
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01e",
            "nul",
            "\"abc",
            "[1] x",
            "{\"a\":1,}",
            "\"\\q\"",
            "tru",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err(), "over-deep nesting should fail");
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok(), "at-limit nesting should parse");
    }
}
