//! A deliberately small HTTP/1.1 reader/writer over blocking [`std::net`]
//! streams: request-line + header parsing with hard size caps, exact
//! `Content-Length` bodies, keep-alive negotiation, and fixed-length
//! responses. No chunked encoding, no pipelining guarantees beyond
//! read-one/write-one — the serving protocol never needs them, and every
//! omitted feature is a parser surface that cannot be attacked.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on the request line plus all headers. 16 KiB is an order of magnitude
/// above anything the protocol sends; beyond it the connection is treated as
/// hostile.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (`/v1/infer`), as sent.
    pub target: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open: HTTP/1.1
    /// defaults to keep-alive unless `Connection: close` is sent.
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a full request. Clean
    /// end of a keep-alive connection when no bytes arrived at all.
    Closed,
    /// The socket's read timeout elapsed mid-request (slow-loris posture:
    /// the caller drops the connection without a response).
    TimedOut,
    /// The bytes on the wire are not HTTP the server understands.
    Malformed(&'static str),
    /// Headers exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge,
    /// `Content-Length` exceeded the caller's body cap (HTTP 413).
    BodyTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// Any other socket error.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
            io::ErrorKind::UnexpectedEof => ReadError::Closed,
            _ => ReadError::Io(e),
        }
    }
}

/// Reads one request from the stream. `max_body` caps `Content-Length`.
///
/// # Errors
///
/// See [`ReadError`]; `Closed` on a cleanly closed idle connection.
pub fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    let mut line = String::new();

    // Request line. An immediate EOF here is the clean keep-alive close.
    read_line(reader, &mut line, &mut head)?;
    if line.is_empty() {
        return Err(ReadError::Closed);
    }
    let mut parts = line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or(ReadError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("request line lacks a target"))?;
    let version = parts
        .next()
        .ok_or(ReadError::Malformed("request line lacks a version"))?;
    if parts.next().is_some() {
        return Err(ReadError::Malformed("request line has extra fields"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ReadError::Malformed("unsupported HTTP version"));
    }
    let (method, target) = (method.to_string(), target.to_string());

    let mut headers = Vec::new();
    loop {
        line.clear();
        read_line(reader, &mut line, &mut head)?;
        if line.is_empty() {
            break; // blank line: end of headers
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header lacks ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ReadError::Malformed("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let body_len = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("unparsable Content-Length"))?,
    };
    if body_len > max_body {
        return Err(ReadError::BodyTooLarge { limit: max_body });
    }
    let mut body = vec![0u8; body_len];
    reader.read_exact(&mut body)?;
    Ok(Request { body, ..request })
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing the cumulative
/// header cap via `head` (the running byte count across request line and
/// headers).
fn read_line(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    head: &mut Vec<u8>,
) -> Result<(), ReadError> {
    let mut raw = Vec::new();
    let budget = MAX_HEADER_BYTES.saturating_sub(head.len()) + 1;
    let read = reader
        .by_ref()
        .take(budget as u64)
        .read_until(b'\n', &mut raw)
        .map_err(ReadError::from)?;
    if read == 0 {
        // EOF: an empty first line means Closed (handled by the caller); EOF
        // mid-headers is a truncated request.
        if head.is_empty() {
            line.clear();
            return Ok(());
        }
        return Err(ReadError::Malformed("connection closed mid-headers"));
    }
    head.extend_from_slice(&raw);
    if head.len() > MAX_HEADER_BYTES {
        return Err(ReadError::HeadersTooLarge);
    }
    if raw.last() != Some(&b'\n') {
        return Err(ReadError::Malformed("header line lacks a terminator"));
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *line = String::from_utf8(raw).map_err(|_| ReadError::Malformed("non-UTF-8 header"))?;
    Ok(())
}

/// Writes a fixed-length response. `keep_alive` controls the `Connection`
/// header; the caller closes the stream when it is `false`.
///
/// # Errors
///
/// Propagates socket write errors (including write-timeout expiry).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Runs `read_request` against raw client bytes over a real loopback
    /// socket pair.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            // Half-close so the reader sees EOF after our bytes.
            s.shutdown(std::net::Shutdown::Write).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let result = read_request(&mut reader, max_body);
        client.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/infer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/infer");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n", 0).unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET / HTTP/3.0\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET / HTTP/1.1\r\ntruncated",
        ] {
            assert!(matches!(parse(raw, 16), Err(ReadError::Malformed(_))));
        }
    }

    #[test]
    fn size_caps_trip() {
        let huge = format!(
            "GET / HTTP/1.1\r\nx: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes(), 16),
            Err(ReadError::HeadersTooLarge)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10),
            Err(ReadError::BodyTooLarge { limit: 10 })
        ));
    }

    #[test]
    fn clean_close_and_truncated_body_are_distinct() {
        assert!(matches!(parse(b"", 16), Err(ReadError::Closed)));
        // Promised 10 body bytes, sent 2, then closed.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab", 16),
            Err(ReadError::Closed)
        ));
    }
}
