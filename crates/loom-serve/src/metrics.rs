//! Serving observability: lock-free counters for the request paths plus a
//! small sample store with percentile extraction, shared by the server's
//! `/v1/stats` endpoint and the load generator's report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotonic counters covering every way a request can leave the server.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests fully parsed off the wire.
    pub requests: AtomicU64,
    /// 200 responses.
    pub ok: AtomicU64,
    /// 429 responses (queue at capacity).
    pub overloaded: AtomicU64,
    /// 4xx protocol rejections other than 429.
    pub rejected: AtomicU64,
    /// Connections dropped for exceeding the read timeout (slow-loris).
    pub timeouts: AtomicU64,
    /// Connections refused at accept time (connection cap).
    pub refused_connections: AtomicU64,
}

impl Counters {
    /// Increment one counter cell.
    pub fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Read one counter cell.
    pub fn read(cell: &AtomicU64) -> u64 {
        cell.load(Ordering::Relaxed)
    }
}

/// An unbounded store of `u64` samples (latencies, queue depths, batch
/// sizes) with percentile extraction. Writers push concurrently; readers
/// snapshot.
#[derive(Debug, Default)]
pub struct Samples {
    values: Mutex<Vec<u64>>,
}

impl Samples {
    /// Records one sample.
    pub fn push(&self, value: u64) {
        self.values.lock().expect("samples lock").push(value);
    }

    /// Sorted copy of every sample so far.
    pub fn sorted(&self) -> Vec<u64> {
        let mut values = self.values.lock().expect("samples lock").clone();
        values.sort_unstable();
        values
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.values.lock().expect("samples lock").len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The `p`-th percentile (0–100) of a sorted slice using nearest-rank;
/// 0 for an empty slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn samples_sort_on_read() {
        let samples = Samples::default();
        for v in [5u64, 1, 9, 3] {
            samples.push(v);
        }
        assert_eq!(samples.sorted(), vec![1, 3, 5, 9]);
        assert_eq!(samples.len(), 4);
    }
}
