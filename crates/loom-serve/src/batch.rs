//! The dynamic micro-batcher: requests for the same `(model, tier)` that
//! arrive within one batching window coalesce into a single lock-step
//! [`NetworkEngine::run_batch_cached`] dispatch on the shared worker pool.
//!
//! One dispatcher thread owns the queue. When a job arrives at the head, the
//! dispatcher waits until either the head's window elapses or enough matching
//! work has queued to fill `max_batch` input items, then drains every
//! matching job (preserving queue order for the rest) and runs them as one
//! batch. Because the engine's lock-step batches are bit-identical to
//! serial runs at any thread count, coalescing is *invisible* in the
//! response values — only latency and throughput change. That invariant is
//! what the loopback and property suites pin down.

use crate::model::{serving_geometry, ServedModel};
use loom_core::loom_model::inference::InferenceOptions;
use loom_core::loom_model::tensor::Tensor3;
use loom_core::loom_sim::loom::network::NetworkEngine;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Precision tier a request runs under. Both tiers produce bit-identical
/// output values (the conformance suites guarantee it); they differ only in
/// the cycle counts the bit-serial datapath reports, so the tier is part of
/// the batch key rather than a correctness concern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Runtime per-group activation-precision detection (the Loom default).
    Dynamic,
    /// Static profiled precisions only (`without_dynamic_precision`).
    Static,
}

impl Tier {
    /// Parses a request's `tier` field.
    pub fn parse(text: &str) -> Option<Tier> {
        match text {
            "dynamic" => Some(Tier::Dynamic),
            "static" => Some(Tier::Static),
            _ => None,
        }
    }

    /// The wire name (`dynamic` / `static`).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Dynamic => "dynamic",
            Tier::Static => "static",
        }
    }
}

/// Batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// How long the head-of-queue job waits for companions before its batch
    /// dispatches.
    pub window: Duration,
    /// Maximum input items per dispatch (and per request).
    pub max_batch: usize,
    /// Maximum queued input items before new submissions are refused
    /// (admission control; the server maps refusal to HTTP 429).
    pub max_queue: usize,
    /// Worker threads the engine fans each dispatch across.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            window: Duration::from_millis(2),
            max_batch: 8,
            max_queue: 64,
            threads: 1,
        }
    }
}

/// What a completed job returns to its submitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Final-layer prediction vector per submitted input, request order.
    pub outputs: Vec<Vec<i32>>,
    /// Bit-serial datapath cycles per submitted input.
    pub cycles: Vec<u64>,
    /// Queued input items (including this job's) when the dispatch started.
    pub queue_depth: usize,
    /// Input items in the dispatch this job rode in.
    pub batch_items: usize,
}

/// Submission failure: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

struct Job {
    model: Arc<ServedModel>,
    tier: Tier,
    inputs: Vec<Tensor3>,
    enqueued_at: Instant,
    respond: mpsc::SyncSender<Result<BatchReply, String>>,
}

struct State {
    queue: VecDeque<Job>,
    queued_items: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    arrived: Condvar,
}

/// The micro-batcher: submit jobs, a dispatcher thread coalesces and runs
/// them. Dropping the batcher shuts the dispatcher down after it drains the
/// queue, so no submitter is left waiting forever.
pub struct MicroBatcher {
    shared: Arc<Shared>,
    config: BatchConfig,
    dispatcher: Option<JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the dispatcher thread.
    pub fn start(config: BatchConfig) -> MicroBatcher {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                queued_items: 0,
                shutdown: false,
            }),
            arrived: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("loom-serve-batcher".to_string())
                .spawn(move || dispatch_loop(&shared, config))
                .expect("spawning the dispatcher thread")
        };
        MicroBatcher {
            shared,
            config,
            dispatcher: Some(dispatcher),
        }
    }

    /// The batching knobs this batcher runs with.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Enqueues one request's inputs. Returns the channel the reply arrives
    /// on; the dispatcher always sends exactly one message per job, so a
    /// blocking `recv()` terminates.
    ///
    /// # Errors
    ///
    /// [`Overloaded`] when the queue already holds `max_queue` input items —
    /// the admission-control path the server maps to HTTP 429.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or exceeds `max_batch` items — the server
    /// validates both before submitting.
    pub fn submit(
        &self,
        model: Arc<ServedModel>,
        tier: Tier,
        inputs: Vec<Tensor3>,
    ) -> Result<mpsc::Receiver<Result<BatchReply, String>>, Overloaded> {
        assert!(
            !inputs.is_empty() && inputs.len() <= self.config.max_batch,
            "the server validates request batch sizes before submitting"
        );
        let (respond, receive) = mpsc::sync_channel(1);
        let mut state = self.shared.state.lock().expect("batcher lock");
        if state.queued_items + inputs.len() > self.config.max_queue {
            return Err(Overloaded);
        }
        state.queued_items += inputs.len();
        state.queue.push_back(Job {
            model,
            tier,
            inputs,
            enqueued_at: Instant::now(),
            respond,
        });
        drop(state);
        self.shared.arrived.notify_all();
        Ok(receive)
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("batcher lock");
            state.shutdown = true;
        }
        self.shared.arrived.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

fn dispatch_loop(shared: &Shared, config: BatchConfig) {
    let engines = Engines::new(config.threads);
    loop {
        let (batch, queue_depth) = {
            let mut state = shared.state.lock().expect("batcher lock");
            // Sleep until work arrives (or shutdown with an empty queue).
            loop {
                if !state.queue.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared.arrived.wait(state).expect("batcher lock");
            }
            // The head job anchors the batch: wait out the remainder of its
            // window unless matching work already fills max_batch (or the
            // batcher is draining for shutdown).
            let deadline = state.queue.front().expect("non-empty").enqueued_at + config.window;
            loop {
                let head_key = {
                    let head = state.queue.front().expect("non-empty");
                    (Arc::as_ptr(&head.model), head.tier)
                };
                let matching: usize = state
                    .queue
                    .iter()
                    .filter(|j| (Arc::as_ptr(&j.model), j.tier) == head_key)
                    .map(|j| j.inputs.len())
                    .sum();
                if matching >= config.max_batch || state.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, timeout) = shared
                    .arrived
                    .wait_timeout(state, deadline - now)
                    .expect("batcher lock");
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
            // Drain every job matching the head's key, in order, up to
            // max_batch items; later-keyed jobs keep their queue positions.
            let head = state.queue.front().expect("non-empty");
            let key = (Arc::as_ptr(&head.model), head.tier);
            let queue_depth = state.queued_items;
            let mut batch: Vec<Job> = Vec::new();
            let mut items = 0usize;
            let mut index = 0;
            while index < state.queue.len() {
                let job = &state.queue[index];
                let job_key = (Arc::as_ptr(&job.model), job.tier);
                if job_key == key
                    && (items + job.inputs.len() <= config.max_batch || batch.is_empty())
                {
                    items += job.inputs.len();
                    let job = state.queue.remove(index).expect("index in bounds");
                    batch.push(job);
                    if items >= config.max_batch {
                        break;
                    }
                } else {
                    index += 1;
                }
            }
            state.queued_items -= items;
            (batch, queue_depth)
        };
        // Lock released: run the batch while new submissions queue freely.
        run_batch(&engines, batch, queue_depth);
    }
}

/// One engine per tier, both sharing the process-global worker pool.
struct Engines {
    dynamic: NetworkEngine,
    fixed: NetworkEngine,
}

impl Engines {
    fn new(threads: usize) -> Engines {
        let base = NetworkEngine::new(serving_geometry()).with_threads(threads);
        Engines {
            dynamic: base,
            fixed: base.without_dynamic_precision(),
        }
    }

    fn for_tier(&self, tier: Tier) -> &NetworkEngine {
        match tier {
            Tier::Dynamic => &self.dynamic,
            Tier::Static => &self.fixed,
        }
    }
}

fn run_batch(engines: &Engines, batch: Vec<Job>, queue_depth: usize) {
    let model = Arc::clone(&batch[0].model);
    let tier = batch[0].tier;
    let batch_items: usize = batch.iter().map(|j| j.inputs.len()).sum();
    let inputs: Vec<Tensor3> = batch
        .iter()
        .flat_map(|j| j.inputs.iter().cloned())
        .collect();
    let result = engines.for_tier(tier).run_batch_cached(
        &model.graph,
        &model.params,
        &inputs,
        InferenceOptions::default(),
        Some(&model.cache),
    );
    match result {
        Ok(runs) => {
            let mut runs = runs.into_iter();
            for job in batch {
                let job_runs: Vec<_> = runs.by_ref().take(job.inputs.len()).collect();
                let reply = BatchReply {
                    outputs: job_runs
                        .iter()
                        .map(|r| r.trace.final_outputs().to_vec())
                        .collect(),
                    cycles: job_runs.iter().map(|r| r.cycles).collect(),
                    queue_depth,
                    batch_items,
                };
                // A submitter that gave up (dropped the receiver) is fine.
                let _ = job.respond.send(Ok(reply));
            }
        }
        Err(e) => {
            // Inputs are validated before submission, so this is unreachable
            // in practice — but a dispatcher must never die with jobs queued.
            for job in batch {
                let _ = job.respond.send(Err(format!("inference failed: {e:?}")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelCatalog;

    #[test]
    fn tier_names_round_trip() {
        for tier in [Tier::Dynamic, Tier::Static] {
            assert_eq!(Tier::parse(tier.name()), Some(tier));
        }
        assert_eq!(Tier::parse("turbo"), None);
    }

    #[test]
    fn single_job_matches_direct_engine() {
        let catalog = ModelCatalog::from_names(["MiniMLP"]);
        let model = catalog.find("MiniMLP").unwrap();
        let input = model.synthetic_input(1);
        let batcher = MicroBatcher::start(BatchConfig {
            window: Duration::from_millis(1),
            ..BatchConfig::default()
        });
        let reply = batcher
            .submit(Arc::clone(&model), Tier::Dynamic, vec![input.clone()])
            .unwrap()
            .recv()
            .unwrap()
            .unwrap();
        let direct = NetworkEngine::new(serving_geometry())
            .run(
                &model.graph,
                &model.params,
                &input,
                InferenceOptions::default(),
            )
            .unwrap();
        assert_eq!(reply.outputs, vec![direct.trace.final_outputs().to_vec()]);
        assert_eq!(reply.cycles, vec![direct.cycles]);
        assert_eq!(reply.batch_items, 1);
    }

    #[test]
    fn admission_control_refuses_past_max_queue() {
        let catalog = ModelCatalog::from_names(["MiniMLP"]);
        let model = catalog.find("MiniMLP").unwrap();
        // A long window and a batch larger than the queue: nothing can
        // dispatch before the refusal is observed, so the test is
        // deterministic. Shutdown (drop) then drains the queue early.
        let batcher = MicroBatcher::start(BatchConfig {
            window: Duration::from_secs(30),
            max_batch: 8,
            max_queue: 2,
            threads: 1,
        });
        let input = model.synthetic_input(7);
        let receivers: Vec<_> = (0..2)
            .map(|_| {
                batcher
                    .submit(Arc::clone(&model), Tier::Dynamic, vec![input.clone()])
                    .unwrap()
            })
            .collect();
        assert_eq!(
            batcher
                .submit(Arc::clone(&model), Tier::Dynamic, vec![input.clone()])
                .unwrap_err(),
            Overloaded
        );
        drop(batcher); // drains: every accepted job still gets a reply
        for r in receivers {
            let reply = r.recv().unwrap().unwrap();
            assert_eq!(reply.batch_items, 2, "both queued jobs ride one batch");
        }
    }
}
