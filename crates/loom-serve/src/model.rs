//! The served-model catalog: each entry pairs a zoo graph with deterministic
//! synthetic weights and a [`PackedModel`] weight cache built once at startup
//! and shared read-only by every request ([`NetworkEngine::run_batch_cached`]
//! skips the per-dispatch filter-plane packing, FC row transposes and
//! precision scans).

use loom_core::loom_model::graph::LayerGraph;
use loom_core::loom_model::inference::NetworkParams;
use loom_core::loom_model::tensor::{Shape3, Tensor3};
use loom_core::loom_model::zoo::graphs;
use loom_core::loom_model::Precision;
use loom_core::loom_sim::config::LoomGeometry;
use loom_core::loom_sim::loom::network::{NetworkEngine, PackedModel};
use std::sync::Arc;

/// Seed for the catalog's synthetic weights: the paper's publication year,
/// fixed so every server process (and the loopback test suites) serves
/// bit-identical models.
pub const CATALOG_SEED: u64 = 2018;

/// The geometry every served engine uses — the same tile as the functional
/// benchmark, so serving numbers compare directly against `BENCH_functional`.
pub fn serving_geometry() -> LoomGeometry {
    LoomGeometry {
        filter_rows: 16,
        window_columns: 8,
        sip_lanes: 16,
        act_bits_per_cycle: 1,
    }
}

/// One servable model: graph, weights, input geometry and the shared packed
/// cache.
pub struct ServedModel {
    /// Canonical zoo name (the request's `model` field, case-insensitive).
    pub name: &'static str,
    /// The layer graph.
    pub graph: LayerGraph,
    /// Deterministic synthetic weights ([`CATALOG_SEED`]).
    pub params: NetworkParams,
    /// Flat input length a request tensor must match.
    pub input_len: usize,
    /// Shape input tensors are bound to (`1×1×n` for FC-first graphs).
    pub input_shape: Shape3,
    /// Weights pre-packed for the wide datapath, shared across requests.
    pub cache: PackedModel,
    /// Wall-clock seconds this model's `prepack` took at catalog build —
    /// near zero when the process-wide weight store already held the layers
    /// (e.g. a catalog rebuilt in the same process).
    pub prepack_seconds: f64,
}

impl ServedModel {
    fn build(name: &'static str, engine: &NetworkEngine) -> ServedModel {
        let graph = graphs::lookup(name).expect("catalog names come from the zoo registry");
        let params = NetworkParams::synthetic_for_graph(
            &graph,
            &[Precision::new(7).expect("7 is a valid precision")],
            CATALOG_SEED,
        );
        let input_shape = graph.input_shape().unwrap_or_else(|| {
            let len = graph
                .input_len()
                .expect("every zoo graph has a derivable input length");
            Shape3::new(1, 1, len)
        });
        let started = std::time::Instant::now();
        let cache = engine.prepack(&graph, &params);
        let prepack_seconds = started.elapsed().as_secs_f64();
        ServedModel {
            name,
            input_len: input_shape.len(),
            input_shape,
            cache,
            prepack_seconds,
            graph,
            params,
        }
    }

    /// Wraps a request's flat values in this model's input shape.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.input_len` — the server validates
    /// lengths before building tensors.
    pub fn input_tensor(&self, values: Vec<i32>) -> Tensor3 {
        Tensor3::from_vec(self.input_shape, values).expect("length was validated against input_len")
    }

    /// A deterministic synthetic input for this model: the same `variant`
    /// always yields the same tensor, so load generators and loopback suites
    /// can precompute expected outputs.
    pub fn synthetic_input(&self, variant: u64) -> Tensor3 {
        use loom_core::loom_model::synthetic::{synthetic_activations, ValueDistribution};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(CATALOG_SEED ^ (variant.wrapping_mul(0x9E37_79B9)));
        let values = synthetic_activations(
            &mut rng,
            self.input_len,
            Precision::new(8).expect("8 is a valid precision"),
            ValueDistribution::activations(),
        );
        self.input_tensor(values)
    }
}

/// The set of models a server instance serves, resolved by name.
pub struct ModelCatalog {
    models: Vec<Arc<ServedModel>>,
}

impl ModelCatalog {
    /// The serving default: every reduced validation network plus the MLP
    /// heads — models small enough that a loopback soak covers thousands of
    /// requests, while still spanning conv-heavy and FC-heavy behaviour.
    pub fn reduced() -> ModelCatalog {
        let names = graphs::REDUCED_NAMES
            .iter()
            .chain(graphs::MLP_NAMES.iter())
            .copied();
        Self::from_names(names)
    }

    /// A catalog of exactly the given zoo names.
    ///
    /// # Panics
    ///
    /// Panics if a name is not in the zoo registry
    /// ([`graphs::registered_names`]).
    pub fn from_names(names: impl IntoIterator<Item = &'static str>) -> ModelCatalog {
        // Prepacking is geometry-independent in layout but the engine carries
        // the geometry; a bare single-thread engine is enough to build caches.
        let engine = NetworkEngine::new(serving_geometry());
        ModelCatalog {
            models: names
                .into_iter()
                .map(|name| Arc::new(ServedModel::build(name, &engine)))
                .collect(),
        }
    }

    /// Looks a model up by case-insensitive name.
    pub fn find(&self, name: &str) -> Option<Arc<ServedModel>> {
        self.models
            .iter()
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .cloned()
    }

    /// All models, catalog order.
    pub fn models(&self) -> &[Arc<ServedModel>] {
        &self.models
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_catalog_serves_conv_and_fc_models() {
        let catalog = ModelCatalog::reduced();
        assert_eq!(catalog.models().len(), 6);
        let mlp = catalog.find("minimlp").expect("case-insensitive lookup");
        assert_eq!(mlp.name, "MiniMLP");
        assert_eq!(mlp.input_len, 784);
        assert_eq!(mlp.input_shape, Shape3::new(1, 1, 784));
        assert!(mlp.cache.packed_layers() > 0);
        let conv = catalog.find("MiniAlexNet").unwrap();
        assert_eq!(conv.input_len, conv.input_shape.len());
        assert!(conv.cache.approx_bytes() > 0);
        assert!(catalog.find("NoSuchNet").is_none());
    }

    #[test]
    fn catalogs_are_deterministic_across_builds() {
        let a = ModelCatalog::reduced();
        let b = ModelCatalog::reduced();
        for (ma, mb) in a.models().iter().zip(b.models()) {
            assert_eq!(ma.name, mb.name);
            assert_eq!(ma.params, mb.params, "{} weights must be stable", ma.name);
        }
    }
}
