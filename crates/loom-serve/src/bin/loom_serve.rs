//! The `loom-serve` binary: stands up the inference HTTP front end on the
//! reduced serving catalog and blocks until killed.
//!
//! ```text
//! loom-serve [--port N] [--threads N] [--batch-window-ms N] [--max-batch N]
//!            [--max-queue N] [--max-connections N] [--models a,b,c]
//! ```
//!
//! `--threads` resolves through the shared policy (`--threads` beats
//! `LOOM_THREADS` beats available parallelism). `--models` restricts the
//! catalog to a comma-separated subset of registered zoo names (default: the
//! reduced networks plus the MLP heads). The wire protocol is documented in
//! `docs/SERVING.md`.

use loom_serve::batch::BatchConfig;
use loom_serve::model::ModelCatalog;
use loom_serve::server::{Server, ServerConfig};
use std::time::Duration;

fn usize_flag(name: &str) -> Option<usize> {
    let reject = |value: &str| -> ! {
        eprintln!("ERROR: --{name} needs a positive integer, got {value:?}");
        std::process::exit(2);
    };
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args.next().unwrap_or_default();
            return Some(value.parse().unwrap_or_else(|_| reject(&value)));
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.parse().unwrap_or_else(|_| reject(value)));
        }
    }
    None
}

fn string_flag(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
    }
    None
}

fn main() {
    let threads = loom_core::threads::resolve(usize_flag("threads"));
    let port = usize_flag("port").unwrap_or(7070) as u16;
    let window = Duration::from_millis(usize_flag("batch-window-ms").unwrap_or(2) as u64);
    let max_batch = usize_flag("max-batch").unwrap_or(8);
    let max_queue = usize_flag("max-queue").unwrap_or(64);
    let max_connections = usize_flag("max-connections").unwrap_or(64);

    let catalog = match string_flag("models") {
        None => ModelCatalog::reduced(),
        Some(list) => {
            let registered = loom_core::loom_model::zoo::graphs::registered_names();
            let names: Vec<&'static str> = list
                .split(',')
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .map(|n| {
                    *registered
                        .iter()
                        .find(|r| r.eq_ignore_ascii_case(n))
                        .unwrap_or_else(|| {
                            eprintln!(
                                "ERROR: unknown model {n:?}; registered: {}",
                                registered.join(", ")
                            );
                            std::process::exit(2);
                        })
                })
                .collect();
            if names.is_empty() {
                eprintln!("ERROR: --models lists no names");
                std::process::exit(2);
            }
            ModelCatalog::from_names(names)
        }
    };

    let model_names: Vec<&'static str> = catalog.models().iter().map(|m| m.name).collect();
    let config = ServerConfig {
        port,
        batch: BatchConfig {
            window,
            max_batch,
            max_queue,
            threads,
        },
        max_connections,
        ..ServerConfig::default()
    };
    let server = match Server::start(catalog, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ERROR: could not bind 127.0.0.1:{port}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "loom-serve listening on http://{} ({} worker threads, window {:?}, max batch {max_batch}, queue {max_queue})",
        server.addr(),
        threads,
        window,
    );
    println!("  models: {}", model_names.join(", "));
    server.join();
}
