//! Synthetic load generator and soak gate for the serving front end.
//!
//! Three phases, all over the same deterministic mixed-zoo workload
//! (reduced conv networks + MLP heads, mostly-dynamic with a static-tier
//! minority):
//!
//! 1. **Expected outputs** — every `(model, variant, tier)` the workload can
//!    emit is run through the direct, uncached [`NetworkEngine`] once;
//!    outputs *and* cycle counts become the bit-exactness reference.
//! 2. **Serial baseline** — a prefix of the workload executed one request at
//!    a time on the direct engine (same thread budget as the server, no
//!    packed-weight cache, no coalescing): the cost of serving each request
//!    individually.
//! 3. **Served soak** — an in-process server on an ephemeral port, hammered
//!    by closed-loop keep-alive clients. Every response is verified
//!    bit-identical to the reference; client-side latency, queue depth and
//!    batch size are sampled per request.
//!
//! The report lands in `BENCH_serving.json` (schema documented in
//! `docs/SERVING.md`). The process exits non-zero on any response
//! divergence, or when `--min-batch-speedup` is given and served throughput
//! does not beat the serial baseline by that factor — the CI soak gate.

use loom_core::loom_model::inference::InferenceOptions;
use loom_core::loom_sim::loom::network::NetworkEngine;
use loom_serve::batch::{BatchConfig, Tier};
use loom_serve::client::Client;
use loom_serve::json::Json;
use loom_serve::metrics::{percentile, Counters, Samples};
use loom_serve::model::{serving_geometry, ModelCatalog, ServedModel};
use loom_serve::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request slots repeat over this model mix: a serving-weighted profile
/// where the cheap classifier heads take most of the traffic (the high-QPS
/// regime micro-batching exists for) and every reduced conv network still
/// appears each cycle.
const MIX: [&str; 10] = [
    "MiniMLP",
    "MLP",
    "MiniMLP",
    "MiniAlexNet",
    "MiniMLP",
    "MLP",
    "MiniNiN",
    "MiniMLP",
    "MiniVGG",
    "MiniGoogLeNet",
];

/// Distinct synthetic inputs per model.
const VARIANTS: u64 = 8;

/// One workload slot: which model, which input, which tier.
#[derive(Clone, Copy)]
struct Slot {
    model: usize,
    variant: u64,
    tier: Tier,
}

/// The deterministic request stream: slot `i` is always the same triple, so
/// every phase (and every run) sees identical traffic.
fn slot(i: usize, model_count: usize) -> Slot {
    let name = MIX[i % MIX.len()];
    let model = CATALOG_ORDER[..model_count]
        .iter()
        .position(|n| *n == name)
        .expect("mix names are in the catalog");
    Slot {
        model,
        variant: ((i / MIX.len()) as u64).wrapping_mul(7).wrapping_add(3) % VARIANTS,
        tier: if i % 5 == 4 {
            Tier::Static
        } else {
            Tier::Dynamic
        },
    }
}

/// Catalog order (must match [`ModelCatalog::reduced`]).
const CATALOG_ORDER: [&str; 6] = [
    "MiniAlexNet",
    "MiniNiN",
    "MiniVGG",
    "MiniGoogLeNet",
    "MiniMLP",
    "MLP",
];

fn usize_flag(name: &str) -> Option<usize> {
    let reject = |value: &str| -> ! {
        eprintln!("ERROR: --{name} needs a positive integer, got {value:?}");
        std::process::exit(2);
    };
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args.next().unwrap_or_default();
            return Some(value.parse().unwrap_or_else(|_| reject(&value)));
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.parse().unwrap_or_else(|_| reject(value)));
        }
    }
    None
}

fn float_flag(name: &str) -> Option<f64> {
    let reject = |value: &str| -> ! {
        eprintln!("ERROR: --{name} needs a numeric value, got {value:?}");
        std::process::exit(2);
    };
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            let value = args.next().unwrap_or_default();
            return Some(value.parse().unwrap_or_else(|_| reject(&value)));
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.parse().unwrap_or_else(|_| reject(value)));
        }
    }
    None
}

fn string_flag(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return args.next();
        } else if let Some(value) = arg.strip_prefix(&prefix) {
            return Some(value.to_string());
        }
    }
    None
}

/// The reference answer for one `(model, variant, tier)`.
struct Expected {
    outputs: Vec<i32>,
    cycles: u64,
}

fn main() {
    let requests = usize_flag("requests").unwrap_or(2000);
    let threads = loom_core::threads::resolve(usize_flag("threads"));
    let clients = usize_flag("clients").unwrap_or(8).max(1);
    let window = Duration::from_millis(usize_flag("batch-window-ms").unwrap_or(2) as u64);
    let max_batch = usize_flag("max-batch").unwrap_or(8);
    let max_queue = usize_flag("max-queue").unwrap_or(256);
    let serial_requests = usize_flag("serial-requests")
        .unwrap_or_else(|| (requests / 10).max(2 * MIX.len()))
        .min(requests.max(1));
    let floor = float_flag("min-batch-speedup");
    let require_repack_avoidance = std::env::args().any(|a| a == "--require-repack-avoidance");
    let out_path = string_flag("out").unwrap_or_else(|| "BENCH_serving.json".to_string());

    println!(
        "serve_bench: {requests} requests, {clients} clients, {threads} worker threads \
         (available {}), window {window:?}, max batch {max_batch}",
        loom_core::threads::available()
    );

    // Cold catalog build: every model's weights packed for the first time in
    // this process (the per-model prepack cost serving pays at startup).
    let build_start = Instant::now();
    let catalog = ModelCatalog::reduced();
    let cold_build_seconds = build_start.elapsed().as_secs_f64();
    assert_eq!(
        catalog.models().iter().map(|m| m.name).collect::<Vec<_>>(),
        CATALOG_ORDER,
        "the workload table assumes the reduced catalog order"
    );
    let models: Vec<Arc<ServedModel>> = catalog.models().to_vec();
    println!("catalog: cold build {:.1} ms", cold_build_seconds * 1e3);
    for m in &models {
        let pack = m.cache.pack_stats();
        let unpacked = m.cache.unpacked_fc_layers();
        println!(
            "  {:<14} prepack {:>7.2} ms, packed {:>7.1} -> {:>7.1} KB resident \
             (stream ratio {:.2}){}",
            m.name,
            m.prepack_seconds * 1e3,
            pack.dense_bytes as f64 / 1024.0,
            pack.compressed_bytes as f64 / 1024.0,
            pack.ratio(),
            if unpacked.is_empty() {
                String::new()
            } else {
                format!(", unpacked FC layers: {}", unpacked.join(", "))
            },
        );
    }

    // Phase 1: reference outputs + cycles from the direct, uncached engine.
    println!("phase 1: computing reference outputs (direct engine, uncached)");
    let dynamic_engine = NetworkEngine::new(serving_geometry()).with_threads(threads);
    let static_engine = dynamic_engine.without_dynamic_precision();
    let mut expected: HashMap<(usize, u64, Tier), Expected> = HashMap::new();
    for (mi, model) in models.iter().enumerate() {
        let inputs: Vec<_> = (0..VARIANTS).map(|v| model.synthetic_input(v)).collect();
        for (tier, engine) in [
            (Tier::Dynamic, &dynamic_engine),
            (Tier::Static, &static_engine),
        ] {
            let runs = engine
                .run_batch(
                    &model.graph,
                    &model.params,
                    &inputs,
                    InferenceOptions::default(),
                )
                .expect("catalog inputs always fit their graphs");
            for (v, run) in runs.iter().enumerate() {
                expected.insert(
                    (mi, v as u64, tier),
                    Expected {
                        outputs: run.trace.final_outputs().to_vec(),
                        cycles: run.cycles,
                    },
                );
            }
        }
    }

    // Phase 2: per-request serial baseline — same thread budget, no cache,
    // no coalescing, one request at a time.
    println!("phase 2: serial baseline over {serial_requests} requests");
    let serial_start = Instant::now();
    for i in 0..serial_requests {
        let s = slot(i, models.len());
        let model = &models[s.model];
        let engine = match s.tier {
            Tier::Dynamic => &dynamic_engine,
            Tier::Static => &static_engine,
        };
        let run = engine
            .run(
                &model.graph,
                &model.params,
                &model.synthetic_input(s.variant),
                InferenceOptions::default(),
            )
            .expect("catalog inputs always fit their graphs");
        let want = &expected[&(s.model, s.variant, s.tier)];
        assert_eq!(run.trace.final_outputs(), want.outputs.as_slice());
        assert_eq!(run.cycles, want.cycles);
    }
    let serial_wall = serial_start.elapsed();
    let serial_rps = serial_requests as f64 / serial_wall.as_secs_f64();
    println!(
        "  serial: {serial_requests} requests in {:.2}s -> {serial_rps:.1} req/s",
        serial_wall.as_secs_f64()
    );

    // Pre-render every request body the workload can send.
    let bodies: HashMap<(usize, u64, Tier), String> = expected
        .keys()
        .map(|&(mi, v, tier)| {
            let model = &models[mi];
            let input = model.synthetic_input(v);
            let values = Json::Array(
                input
                    .as_slice()
                    .iter()
                    .map(|&x| Json::from(x as i64))
                    .collect(),
            );
            let body = Json::Object(vec![
                ("model".to_string(), Json::from(model.name)),
                ("tier".to_string(), Json::from(tier.name())),
                ("inputs".to_string(), Json::Array(vec![values])),
            ])
            .to_string();
            ((mi, v, tier), body)
        })
        .collect();

    // Phase 3: the served soak. The server gets its own catalog build — warm
    // this time: every layer must come out of the process-wide weight store
    // instead of being repacked (the CI pack-once gate).
    println!("phase 3: served soak ({clients} closed-loop clients)");
    let store_before_warm = loom_core::loom_sim::loom::weight_store_stats();
    let warm_start = Instant::now();
    let warm_catalog = ModelCatalog::reduced();
    let warm_build_seconds = warm_start.elapsed().as_secs_f64();
    let store_after_warm = loom_core::loom_sim::loom::weight_store_stats();
    let repack_avoided = store_after_warm.packs() == store_before_warm.packs()
        && store_after_warm.hits() > store_before_warm.hits();
    println!(
        "  warm catalog rebuild {:.1} ms (cold was {:.1} ms); repack avoided: {repack_avoided}",
        warm_build_seconds * 1e3,
        cold_build_seconds * 1e3
    );
    let mut server = Server::start(
        warm_catalog,
        ServerConfig {
            port: 0,
            batch: BatchConfig {
                window,
                max_batch,
                max_queue,
                threads,
            },
            max_connections: clients + 8,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    )
    .expect("binding an ephemeral loopback port");
    let addr = server.addr();

    let next = Arc::new(AtomicUsize::new(0));
    let divergences = Arc::new(AtomicU64::new(0));
    let retried_429 = Arc::new(AtomicU64::new(0));
    let latency_us = Arc::new(Samples::default());
    let queue_depth = Arc::new(Samples::default());
    let batch_items = Arc::new(Samples::default());
    let expected = Arc::new(expected);
    let bodies = Arc::new(bodies);
    let model_count = models.len();

    let served_start = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let next = Arc::clone(&next);
            let divergences = Arc::clone(&divergences);
            let retried_429 = Arc::clone(&retried_429);
            let latency_us = Arc::clone(&latency_us);
            let queue_depth = Arc::clone(&queue_depth);
            let batch_items = Arc::clone(&batch_items);
            let expected = Arc::clone(&expected);
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(60))
                    .expect("connecting to the loopback server");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        return;
                    }
                    let s = slot(i, model_count);
                    let key = (s.model, s.variant, s.tier);
                    let body = &bodies[&key];
                    let sent = Instant::now();
                    let response = loop {
                        match client.infer(body) {
                            Ok(r) if r.status == 429 => {
                                // Backpressure: retry after a beat.
                                retried_429.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Ok(r) => break r,
                            Err(e) => panic!("client request failed: {e}"),
                        }
                    };
                    latency_us.push(sent.elapsed().as_micros() as u64);
                    if response.status != 200 {
                        eprintln!("DIVERGENCE: slot {i} got HTTP {}", response.status);
                        divergences.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let want = &expected[&key];
                    if !verify(&response.body, want, &queue_depth, &batch_items) {
                        eprintln!("DIVERGENCE: slot {i} response mismatch");
                        divergences.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client threads never panic");
    }
    let served_wall = served_start.elapsed();
    let served_rps = requests as f64 / served_wall.as_secs_f64();
    let divergences = divergences.load(Ordering::Relaxed);
    let retried_429 = retried_429.load(Ordering::Relaxed);
    let speedup = served_rps / serial_rps;

    let lat = latency_us.sorted();
    let qd = queue_depth.sorted();
    let bs = batch_items.sorted();
    let mean_batch = if bs.is_empty() {
        0.0
    } else {
        bs.iter().sum::<u64>() as f64 / bs.len() as f64
    };
    println!(
        "  served: {requests} requests in {:.2}s -> {served_rps:.1} req/s \
         ({speedup:.2}x serial), latency p50 {}us p99 {}us, mean batch {mean_batch:.2}, \
         {divergences} divergences, {retried_429} retried 429s",
        served_wall.as_secs_f64(),
        percentile(&lat, 50.0),
        percentile(&lat, 99.0),
    );

    let counters = server.counters();
    let report = Json::Object(vec![
        ("schema".to_string(), Json::from("loom-serve-bench-v1")),
        ("requests".to_string(), Json::from(requests as i64)),
        ("clients".to_string(), Json::from(clients as i64)),
        ("threads".to_string(), Json::from(threads as i64)),
        (
            "available_parallelism".to_string(),
            Json::from(loom_core::threads::available() as i64),
        ),
        (
            "window_ms".to_string(),
            Json::from(window.as_millis() as i64),
        ),
        ("max_batch".to_string(), Json::from(max_batch as i64)),
        (
            "mix".to_string(),
            Json::Array(MIX.iter().map(|&m| Json::from(m)).collect()),
        ),
        (
            "serial".to_string(),
            Json::Object(vec![
                ("requests".to_string(), Json::from(serial_requests as i64)),
                (
                    "wall_ms".to_string(),
                    Json::Number(serial_wall.as_secs_f64() * 1e3),
                ),
                ("rps".to_string(), Json::Number(serial_rps)),
            ]),
        ),
        (
            "served".to_string(),
            Json::Object(vec![
                ("requests".to_string(), Json::from(requests as i64)),
                (
                    "wall_ms".to_string(),
                    Json::Number(served_wall.as_secs_f64() * 1e3),
                ),
                ("rps".to_string(), Json::Number(served_rps)),
                ("latency_us".to_string(), dist(&lat)),
                ("queue_depth".to_string(), dist(&qd)),
                (
                    "batch_items".to_string(),
                    Json::Object(vec![
                        ("p50".to_string(), Json::from(percentile(&bs, 50.0) as i64)),
                        ("p90".to_string(), Json::from(percentile(&bs, 90.0) as i64)),
                        (
                            "max".to_string(),
                            Json::from(bs.last().copied().unwrap_or(0) as i64),
                        ),
                        ("mean".to_string(), Json::Number(mean_batch)),
                    ]),
                ),
                ("retried_429".to_string(), Json::from(retried_429 as i64)),
            ]),
        ),
        ("speedup".to_string(), Json::Number(speedup)),
        ("divergences".to_string(), Json::from(divergences as i64)),
        (
            "prepack".to_string(),
            Json::Object(vec![
                (
                    "cold_build_ms".to_string(),
                    Json::Number(cold_build_seconds * 1e3),
                ),
                (
                    "warm_build_ms".to_string(),
                    Json::Number(warm_build_seconds * 1e3),
                ),
                ("repack_avoided".to_string(), Json::Bool(repack_avoided)),
                (
                    "models".to_string(),
                    Json::Array(
                        models
                            .iter()
                            .map(|m| {
                                let pack = m.cache.pack_stats();
                                Json::Object(vec![
                                    ("name".to_string(), Json::from(m.name)),
                                    (
                                        "prepack_ms".to_string(),
                                        Json::Number(m.prepack_seconds * 1e3),
                                    ),
                                    (
                                        "cache_bytes".to_string(),
                                        Json::from(m.cache.approx_bytes() as i64),
                                    ),
                                    (
                                        "dense_bytes".to_string(),
                                        Json::from(pack.dense_bytes as i64),
                                    ),
                                    (
                                        "compressed_bytes".to_string(),
                                        Json::from(pack.compressed_bytes as i64),
                                    ),
                                    ("compression_ratio".to_string(), Json::Number(pack.ratio())),
                                    (
                                        "unpacked_fc_layers".to_string(),
                                        Json::Array(
                                            m.cache
                                                .unpacked_fc_layers()
                                                .iter()
                                                .map(|n| Json::from(n.as_str()))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "server_counters".to_string(),
            Json::Object(vec![
                (
                    "requests".to_string(),
                    Json::from(Counters::read(&counters.requests) as i64),
                ),
                (
                    "ok".to_string(),
                    Json::from(Counters::read(&counters.ok) as i64),
                ),
                (
                    "overloaded".to_string(),
                    Json::from(Counters::read(&counters.overloaded) as i64),
                ),
                (
                    "rejected".to_string(),
                    Json::from(Counters::read(&counters.rejected) as i64),
                ),
            ]),
        ),
    ]);
    std::fs::write(&out_path, report.to_string() + "\n").expect("writing the bench report");
    println!("wrote {out_path}");
    server.stop();

    if divergences > 0 {
        eprintln!("FAIL: {divergences} served responses diverged from the direct engine");
        std::process::exit(1);
    }
    if require_repack_avoidance && !repack_avoided {
        eprintln!(
            "FAIL: the warm catalog rebuild repacked weights instead of hitting \
             the process-wide store"
        );
        std::process::exit(1);
    }
    if let Some(floor) = floor {
        if speedup < floor {
            eprintln!(
                "FAIL: micro-batched throughput {speedup:.2}x serial is below the {floor:.2}x floor"
            );
            std::process::exit(1);
        }
        println!("PASS: {speedup:.2}x serial beats the {floor:.2}x floor, zero divergences");
    }
}

/// Percentile summary of a sorted sample set.
fn dist(sorted: &[u64]) -> Json {
    Json::Object(vec![
        (
            "p50".to_string(),
            Json::from(percentile(sorted, 50.0) as i64),
        ),
        (
            "p90".to_string(),
            Json::from(percentile(sorted, 90.0) as i64),
        ),
        (
            "p99".to_string(),
            Json::from(percentile(sorted, 99.0) as i64),
        ),
        (
            "max".to_string(),
            Json::from(sorted.last().copied().unwrap_or(0) as i64),
        ),
    ])
}

/// Checks one 200 response against the reference; records queue-depth and
/// batch-size samples from the response envelope.
fn verify(body: &str, want: &Expected, queue_depth: &Samples, batch_items: &Samples) -> bool {
    let Ok(json) = Json::parse(body) else {
        return false;
    };
    if let Some(d) = json.get("queue_depth").and_then(Json::as_i64) {
        queue_depth.push(d as u64);
    }
    if let Some(b) = json.get("batch_items").and_then(Json::as_i64) {
        batch_items.push(b as u64);
    }
    let outputs: Option<Vec<i64>> = json
        .get("outputs")
        .and_then(Json::as_array)
        .and_then(|tensors| tensors.first())
        .and_then(Json::as_array)
        .map(|vals| vals.iter().filter_map(Json::as_i64).collect());
    let cycles = json
        .get("cycles")
        .and_then(Json::as_array)
        .and_then(|c| c.first())
        .and_then(Json::as_i64);
    outputs.is_some_and(|o| {
        o.len() == want.outputs.len()
            && o.iter()
                .zip(&want.outputs)
                .all(|(&got, &exp)| got == exp as i64)
    }) && cycles == Some(want.cycles as i64)
}
