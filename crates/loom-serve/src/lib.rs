//! # loom-serve
//!
//! Inference-as-a-service front end for the Loom reproduction: a hand-rolled
//! [`std::net`] HTTP/1.1 server that turns the batched functional engine
//! ([`loom_core::loom_sim::loom::network::NetworkEngine`]) into a network
//! service without adding a single external dependency.
//!
//! * [`json`] — the minimal JSON value type the wire protocol uses.
//! * [`http`] — request/response framing with hard size caps and timeouts.
//! * [`model`] — the served-model catalog: zoo graphs + deterministic
//!   synthetic weights + per-model packed-weight caches built once at
//!   startup.
//! * [`batch`] — the dynamic micro-batcher: requests for the same
//!   `(model, tier)` arriving within one batching window coalesce into a
//!   single lock-step batch dispatch on the shared worker pool.
//! * [`server`] — the acceptor/connection layer: admission control (429 on a
//!   full queue, 503 at the connection cap), slow-loris read timeouts, and
//!   strict protocol validation (400/404/413).
//! * [`client`] — a loopback HTTP client for the integration suites and the
//!   `serve_bench` load generator.
//! * [`metrics`] — counters and percentile extraction.
//!
//! The load generator (`serve_bench`) and the serving binary (`loom-serve`)
//! live in `src/bin/`; `docs/SERVING.md` documents the wire protocol and
//! batching semantics.
//!
//! # Determinism contract
//!
//! Serving is a *view* over the deterministic engine, never a fork of it:
//! every response's `outputs` are bit-identical to a direct
//! `NetworkEngine::run_batch` call on the same inputs, regardless of how
//! requests coalesce into micro-batches, how many worker threads run, or
//! which precision tier is selected. The loopback suites
//! (`tests/serving_http.rs`, `tests/serving_batcher.rs`) and the soak gate
//! in CI pin that contract down.
//!
//! # Quick start
//!
//! ```
//! use loom_serve::client::Client;
//! use loom_serve::model::ModelCatalog;
//! use loom_serve::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::start(
//!     ModelCatalog::from_names(["MiniMLP"]),
//!     ServerConfig::default(), // port 0: ephemeral
//! )
//! .unwrap();
//! let mut client = Client::connect(server.addr(), Duration::from_secs(10)).unwrap();
//! let health = client.request("GET", "/healthz", "").unwrap();
//! assert_eq!(health.status, 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod model;
pub mod server;

pub use batch::{BatchConfig, MicroBatcher, Tier};
pub use client::Client;
pub use model::{ModelCatalog, ServedModel};
pub use server::{Server, ServerConfig};
