//! Criterion benchmarks of whole-network simulation: AlexNet and GoogLeNet on
//! DPNN and Loom-1b, i.e. one cell of Table 2 each, plus the full Figure 4
//! evaluation of a single network.

use criterion::{criterion_group, criterion_main, Criterion};
use loom_core::experiment::{build_assignment, evaluate_network, ExperimentSettings};
use loom_core::loom_model::zoo;
use loom_core::loom_sim::engine::{AcceleratorKind, Simulator};
use loom_core::loom_sim::LoomVariant;
use std::hint::black_box;

fn bench_networks(c: &mut Criterion) {
    let settings = ExperimentSettings::default();
    let alexnet = zoo::alexnet();
    let googlenet = zoo::googlenet();
    let assignment_a = build_assignment(&alexnet, &settings);
    let assignment_g = build_assignment(&googlenet, &settings);
    let sim = Simulator::baseline_128();

    c.bench_function("simulate_alexnet_dpnn", |b| {
        b.iter(|| sim.simulate(AcceleratorKind::Dpnn, black_box(&alexnet), &assignment_a))
    });
    c.bench_function("simulate_alexnet_loom1b", |b| {
        b.iter(|| {
            sim.simulate(
                AcceleratorKind::Loom(LoomVariant::Lm1b),
                black_box(&alexnet),
                &assignment_a,
            )
        })
    });
    c.bench_function("simulate_googlenet_loom1b", |b| {
        b.iter(|| {
            sim.simulate(
                AcceleratorKind::Loom(LoomVariant::Lm1b),
                black_box(&googlenet),
                &assignment_g,
            )
        })
    });
    c.bench_function("evaluate_alexnet_all_accelerators", |b| {
        b.iter(|| evaluate_network(black_box(&alexnet), &settings))
    });
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
